//! The Figure 10 experiment in miniature: how the best page size depends
//! on the memory constraint (paper §5.7), on one workload.
//!
//! ```text
//! cargo run --release --example page_size_study
//! ```

use cmcp::{PageSize, PolicyKind, SchemeChoice, SimulationBuilder, Workload, WorkloadClass};

fn main() {
    let workload = Workload::Lu(WorkloadClass::C);
    let cores = 24;
    let trace = workload.trace(cores);
    println!("{workload} on {cores} cores, PSPT + FIFO\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12}   winner",
        "memory", "4kB (ms)", "64kB (ms)", "2MB (ms)"
    );

    for ratio in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let mut times = Vec::new();
        for size in PageSize::ALL {
            let report = SimulationBuilder::trace(trace.clone())
                .scheme(SchemeChoice::Pspt)
                .policy(PolicyKind::Fifo)
                .page_size(size)
                .memory_ratio(ratio)
                .run();
            times.push(report.runtime_secs * 1e3);
        }
        let winner = PageSize::ALL[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()];
        println!(
            "{:>7.0}% {:>12.2} {:>12.2} {:>12.2}   {winner}",
            ratio * 100.0,
            times[0],
            times[1],
            times[2]
        );
    }

    println!("\nExpected shape (paper Figure 10): 2MB wins with ample memory");
    println!("(fewest TLB misses); under pressure the cost of moving 2MB per");
    println!("fault dominates and the smaller sizes take over.");
}
