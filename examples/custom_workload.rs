//! Build a custom workload with the trace logger — including the
//! adversarial anti-CMCP pattern the paper concedes is constructible
//! (§3: "one could intentionally construct memory access patterns for
//! which this heuristic wouldn't work well").
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cmcp::workloads::synthetic;
use cmcp::{PolicyKind, SimulationBuilder, Trace};

fn compare(name: &str, trace: &Trace, ratio: f64) {
    println!(
        "{name} ({} cores, {:.0}% memory):",
        trace.cores.len(),
        ratio * 100.0
    );
    let mut fifo_cycles = 0;
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Cmcp { p: 0.75 },
        PolicyKind::Lru,
    ] {
        let report = SimulationBuilder::trace(trace.clone())
            .policy(policy)
            .memory_ratio(ratio)
            .run();
        if policy == PolicyKind::Fifo {
            fifo_cycles = report.runtime_cycles;
        }
        println!(
            "  {:<14} {:>10.2} ms   {:>6.0} faults/core   {:+.1}% vs FIFO",
            policy.label(),
            report.runtime_secs * 1e3,
            report.avg_page_faults(),
            (fifo_cycles as f64 / report.runtime_cycles as f64 - 1.0) * 100.0,
        );
    }
    println!();
}

fn main() {
    let cores = 16;

    // A friendly pattern: a hot region shared by everyone plus private
    // cold streams — CMCP's sweet spot (protect the shared region).
    // Memory well below one round's working set: FIFO cycles the hot
    // shared region out between rounds, CMCP pins it.
    let friendly = synthetic::shared_hot(cores, 128, 256, 6);
    compare("shared-hot (CMCP-friendly)", &friendly, 0.15);

    // The paper's conceded adversary: widely shared pages that are dead
    // on arrival, and private pages that are reused every round. The
    // core-map-count heuristic pins exactly the wrong pages.
    // Memory just covers the hot set plus one dead batch — the regime
    // where pinning dead shared pages displaces useful private ones.
    let adversarial = synthetic::adversarial_cmcp(cores, 128, 256, 6);
    compare("adversarial (anti-CMCP)", &adversarial, 0.95);

    println!("Expected: CMCP ahead of FIFO on the friendly pattern, behind FIFO");
    println!("on the adversarial one — matching the paper's own caveat in §3.");
}
