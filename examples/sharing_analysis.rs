//! Figure 6 in miniature: the page-sharing histogram PSPT maintains for
//! free, which is CMCP's priority signal.
//!
//! ```text
//! cargo run --release --example sharing_analysis [cores]
//! ```

use cmcp::{SimulationBuilder, Workload, WorkloadClass};

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    println!("page-sharing profile at {cores} cores (from PSPT core-map counts)\n");
    for workload in Workload::all(WorkloadClass::B) {
        // Unconstrained run: the whole footprint stays mapped, so the
        // histogram covers every page the application touches.
        let report = SimulationBuilder::workload(workload).cores(cores).run();
        let hist = report
            .sharing_histogram
            .expect("PSPT maintains the histogram");
        let total: usize = hist.iter().sum();
        println!("{} — {} pages:", workload.label(), total);
        let mut cumulative = 0.0;
        for (k, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let pct = 100.0 * count as f64 / total as f64;
            cumulative += pct;
            if pct >= 0.5 {
                let bar = "#".repeat((pct / 2.0).ceil() as usize);
                println!("  {:>3} core(s): {:>5.1}%  {bar}", k + 1, pct);
            }
        }
        let few: usize = hist.iter().take(3).sum();
        println!(
            "  -> {:.0}% of pages are mapped by at most 3 cores (cumulative printed: {:.0}%)\n",
            100.0 * few as f64 / total as f64,
            cumulative
        );
    }
    println!("This is the paper's key observation: remapping a page under PSPT");
    println!("only needs TLB shootdowns on the few mapping cores, and the");
    println!("mapping count itself ranks pages for CMCP.");
}
