//! Quickstart: run one of the paper's workloads under three replacement
//! policies and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder, Workload, WorkloadClass};

fn main() {
    let workload = Workload::Cg(WorkloadClass::B);
    let cores = 16;
    // The paper's CG constraint: 37 % of the declared memory requirement.
    let memory = 0.37;

    println!(
        "workload: {workload}, {cores} cores, {:.0}% memory\n",
        memory * 100.0
    );

    // Baseline: enough device RAM that no data movement ever happens.
    let baseline = SimulationBuilder::workload(workload).cores(cores).run();
    println!(
        "no data movement: {:8.2} ms  ({} faults/core, all cold)",
        baseline.runtime_secs * 1e3,
        baseline.avg_page_faults() as u64
    );

    for (name, policy) in [
        ("PSPT + FIFO", PolicyKind::Fifo),
        ("PSPT + LRU ", PolicyKind::Lru),
        ("PSPT + CMCP", PolicyKind::Cmcp { p: 0.75 }),
    ] {
        let report = SimulationBuilder::workload(workload)
            .cores(cores)
            .scheme(SchemeChoice::Pspt)
            .policy(policy)
            .memory_ratio(memory)
            .run();
        println!(
            "{name}: {:8.2} ms  ({:.0}% of baseline, {} faults/core, {} remote TLB invalidations/core)",
            report.runtime_secs * 1e3,
            100.0 * baseline.runtime_cycles as f64 / report.runtime_cycles as f64,
            report.avg_page_faults() as u64,
            report.avg_remote_invalidations() as u64,
        );
    }

    println!("\nThe CMCP row should show the fewest remote TLB invalidations and");
    println!("the best constrained runtime — the paper's headline result.");
}
