//! Compare every replacement policy on every paper workload, printing a
//! Table-1-style summary at a chosen core count.
//!
//! ```text
//! cargo run --release --example policy_comparison [cores]
//! ```

use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder, Workload, WorkloadClass};

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    println!("policy comparison at {cores} cores (4 kB pages, PSPT)\n");
    println!(
        "{:<12} {:<14} {:>10} {:>12} {:>12} {:>12}",
        "workload", "policy", "rel perf", "faults/core", "inv/core", "dTLB/core"
    );

    for workload in Workload::all(WorkloadClass::B) {
        let trace = workload.trace(cores);
        let ratio = workload.paper_constraint();
        let baseline = SimulationBuilder::trace(trace.clone()).run();
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Random,
            PolicyKind::Cmcp { p: 0.75 },
            PolicyKind::AdaptiveCmcp,
        ] {
            let report = SimulationBuilder::trace(trace.clone())
                .scheme(SchemeChoice::Pspt)
                .policy(policy)
                .memory_ratio(ratio)
                .run();
            println!(
                "{:<12} {:<14} {:>9.2}x {:>12.0} {:>12.0} {:>12.0}",
                workload.label(),
                policy.label(),
                baseline.runtime_cycles as f64 / report.runtime_cycles as f64,
                report.avg_page_faults(),
                report.avg_remote_invalidations(),
                report.avg_dtlb_misses(),
            );
        }
        println!();
    }
}
