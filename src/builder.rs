//! The high-level simulation builder: one experiment, one call chain.

use cmcp_arch::{CostModel, FaultPlan, NumaConfig, PageSize, TierConfig};
use cmcp_core::PolicyKind;
use cmcp_kernel::{KernelConfig, SchemeChoice, Vmm};
use cmcp_sim::{HostScaling, RunReport, Trace};
use cmcp_trace::{Event, Recorder, RingTracer};
use cmcp_workloads::Workload;

/// Default per-core event-ring capacity for traced runs: large enough
/// that the tier-1 workloads complete without wraparound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Builds and runs one simulation.
///
/// Memory can be constrained either as a fraction of the workload's
/// measured footprint ([`SimulationBuilder::memory_ratio`], how the paper
/// states it) or as an absolute block count
/// ([`SimulationBuilder::device_blocks`]). The default is 1.0 — the
/// paper's *no data movement* configuration.
pub struct SimulationBuilder {
    source: TraceSource,
    cores: usize,
    scheme: SchemeChoice,
    policy: PolicyKind,
    page_size: PageSize,
    memory: MemorySpec,
    cost: CostModel,
    threads: usize,
    scan_budget: usize,
    pspt_rebuild_period: u64,
    trace_capacity: usize,
    fault_plan: Option<FaultPlan>,
    adaptive: bool,
}

/// A traced run: the usual report (with its validated breakdown) plus
/// the raw event stream for export.
pub struct TracedRun {
    /// The ordinary run report; `report.breakdown` is `Some`.
    pub report: RunReport,
    /// Every captured event, sorted by (timestamp, core, kind).
    pub events: Vec<Event>,
    /// Events lost to ring wraparound (0 unless the capacity was too small).
    pub dropped: u64,
}

enum TraceSource {
    Workload(Workload),
    Explicit(Trace),
}

#[derive(Clone, Copy)]
enum MemorySpec {
    Ratio(f64),
    Blocks(usize),
}

impl SimulationBuilder {
    /// Starts from one of the paper's workloads.
    pub fn workload(w: Workload) -> SimulationBuilder {
        SimulationBuilder::from_source(TraceSource::Workload(w))
    }

    /// Starts from a caller-built trace (see `cmcp_workloads::synthetic`
    /// and `cmcp_workloads::TraceLogger`). The core count is taken from
    /// the trace.
    pub fn trace(t: Trace) -> SimulationBuilder {
        let cores = t.cores.len();
        let mut b = SimulationBuilder::from_source(TraceSource::Explicit(t));
        b.cores = cores;
        b
    }

    fn from_source(source: TraceSource) -> SimulationBuilder {
        SimulationBuilder {
            source,
            cores: 8,
            scheme: SchemeChoice::Pspt,
            policy: PolicyKind::Fifo,
            page_size: PageSize::K4,
            memory: MemorySpec::Ratio(1.0),
            cost: CostModel::default(),
            threads: 1,
            scan_budget: 0,
            pspt_rebuild_period: 0,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            fault_plan: None,
            adaptive: false,
        }
    }

    /// Number of application cores (ignored for explicit traces, which
    /// carry their own core count).
    pub fn cores(mut self, n: usize) -> Self {
        if matches!(self.source, TraceSource::Workload(_)) {
            self.cores = n;
        }
        self
    }

    /// Page-table scheme (default: PSPT).
    pub fn scheme(mut self, s: SchemeChoice) -> Self {
        self.scheme = s;
        self
    }

    /// Replacement policy (default: FIFO).
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    /// Mapping granularity (default: 4 kB).
    pub fn page_size(mut self, s: PageSize) -> Self {
        self.page_size = s;
        self
    }

    /// Online pressure-adaptive page sizes: fresh 2 MB regions map at
    /// the granularity the current memory pressure suggests (2 MB when
    /// RAM is plentiful, down to 4 kB when it is nearly full), and
    /// oversized eviction victims are split in place instead of evicted
    /// whole. Overrides [`SimulationBuilder::page_size`].
    pub fn adaptive_page_size(mut self) -> Self {
        self.adaptive = true;
        self.page_size = PageSize::M2;
        self
    }

    /// Backing-store tier hierarchy (default: the flat zero-penalty host
    /// store). See [`TierConfig::parse`] for the spec language and the
    /// `"2tier"`/`"4tier"` presets.
    pub fn tiers(mut self, t: TierConfig) -> Self {
        self.cost.tiers = t;
        self
    }

    /// NUMA topology (default: the single zero-cost node, byte-identical
    /// to the pre-NUMA kernel). See [`NumaConfig::parse`] for the spec
    /// language and the `"2node"`/`"4node"` presets.
    pub fn numa(mut self, n: NumaConfig) -> Self {
        self.cost.numa = n;
        self
    }

    /// Toggles page-table replication on the configured NUMA topology
    /// (default: on). With replication off, every minor fault from a
    /// non-home node walks the home node's master table remotely — the
    /// recurring cost the `numa_sweep` bench measures.
    pub fn numa_replication(mut self, on: bool) -> Self {
        self.cost.numa.replicate = on;
        self
    }

    /// Device RAM as a fraction of the workload footprint (the paper's
    /// "memory provided" percentage). 1.0 = no data movement.
    pub fn memory_ratio(mut self, r: f64) -> Self {
        assert!(r > 0.0, "memory ratio must be positive");
        self.memory = MemorySpec::Ratio(r);
        self
    }

    /// Device RAM as an absolute number of blocks.
    pub fn device_blocks(mut self, blocks: usize) -> Self {
        assert!(blocks > 0);
        self.memory = MemorySpec::Blocks(blocks);
        self
    }

    /// Overrides the cycle cost table (for sensitivity ablations).
    pub fn cost_model(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Number of host worker threads the engine distributes simulated
    /// cores over (default: 1). The report is byte-identical for every
    /// value — thread count is a wall-clock knob, not a semantic one.
    /// `0` selects the available parallelism.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Use one engine worker per available host CPU — shorthand for
    /// `.threads(0)`. The resolved count is reported by
    /// [`SimulationBuilder::resolved_threads`] (and the CLI run header).
    pub fn threads_auto(mut self) -> Self {
        self.threads = 0;
        self
    }

    /// The worker count this builder will actually run with: the
    /// requested count, or the host's available parallelism when
    /// auto-detection was selected.
    pub fn resolved_threads(&self) -> usize {
        cmcp_sim::resolve_threads(self.threads)
    }

    /// Overrides the scan-tick budget (blocks per tick; 0 = auto).
    pub fn scan_budget(mut self, b: usize) -> Self {
        self.scan_budget = b;
        self
    }

    /// Enables periodic PSPT rebuilding every `period` cycles of virtual
    /// time (paper §5.6 future work; 0 = off).
    pub fn pspt_rebuild_period(mut self, period: u64) -> Self {
        self.pspt_rebuild_period = period;
        self
    }

    /// Arms the seeded fault-injection layer with `plan` (default: no
    /// faults). See `cmcp_arch::FaultPlan` for the rule language.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Per-core event-ring capacity used by [`SimulationBuilder::run_traced`]
    /// (default [`DEFAULT_TRACE_CAPACITY`]). Smaller rings drop the oldest
    /// events on wraparound, which disables breakdown validation.
    pub fn trace_capacity(mut self, events_per_core: usize) -> Self {
        assert!(events_per_core > 0, "trace capacity must be positive");
        self.trace_capacity = events_per_core;
        self
    }

    fn materialize(&self) -> (Trace, KernelConfig) {
        let trace = match &self.source {
            TraceSource::Workload(w) => w.trace(self.cores),
            TraceSource::Explicit(t) => t.clone(),
        };
        // The paper's "memory provided" percentages are relative to the
        // application's declared requirement (what it allocates), which
        // for CG and SCALE exceeds the per-iteration touched set — the
        // source of their flat Figure 8 curves.
        let footprint = trace.declared_blocks(self.page_size);
        let device_blocks = match self.memory {
            MemorySpec::Ratio(r) => ((footprint as f64 * r).ceil() as usize).max(1),
            MemorySpec::Blocks(b) => b,
        };
        let cfg = KernelConfig {
            cores: trace.cores.len(),
            block_size: self.page_size,
            device_blocks,
            scheme: self.scheme,
            policy: self.policy,
            cost: self.cost.clone(),
            scan_budget: self.scan_budget,
            pspt_rebuild_period: self.pspt_rebuild_period,
            fault_plan: self.fault_plan.clone(),
            adaptive: self.adaptive,
        };
        (trace, cfg)
    }

    fn dispatch<R: Recorder>(&self, vmm: &Vmm<R>, trace: &Trace) -> RunReport {
        cmcp_sim::run_parallel(vmm, trace, self.threads)
    }

    /// Generates the trace, sizes the memory, runs the simulation.
    pub fn run(self) -> RunReport {
        let (trace, cfg) = self.materialize();
        let vmm = Vmm::new(cfg);
        self.dispatch(&vmm, &trace)
    }

    /// Like [`SimulationBuilder::run`], additionally returning the
    /// host-side scaling counters (barrier wait tiers, concurrent
    /// commit rounds). Those are machine- and thread-count-dependent,
    /// which is why they ride alongside the byte-stable report instead
    /// of inside it.
    pub fn run_with_host_stats(self) -> (RunReport, HostScaling) {
        let (trace, cfg) = self.materialize();
        let vmm = Vmm::new(cfg);
        let threads = cmcp_sim::resolve_threads(self.threads);
        cmcp_sim::run_with_host_stats(&vmm, &trace, threads)
    }

    /// Like [`SimulationBuilder::run`], but records the fault-path event
    /// stream into per-core rings and returns it alongside the report.
    /// `report.breakdown` is populated and — when no events were dropped —
    /// validated against the kernel counters.
    pub fn run_traced(self) -> TracedRun {
        let (trace, cfg) = self.materialize();
        let cores = cfg.cores;
        let vmm = Vmm::with_tracer(cfg, RingTracer::new(cores, self.trace_capacity));
        let report = self.dispatch(&vmm, &trace);
        TracedRun {
            report,
            events: vmm.tracer().events(),
            dropped: vmm.tracer().dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcp_workloads::synthetic;

    #[test]
    fn builder_runs_a_synthetic_trace() {
        let t = synthetic::private_stream(2, 8, 2);
        let r = SimulationBuilder::trace(t).memory_ratio(0.5).run();
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.per_core.len(), 2);
        assert!(r.global.evictions > 0, "constrained run must evict");
    }

    #[test]
    fn ratio_one_means_no_evictions() {
        let t = synthetic::private_stream(2, 8, 3);
        let r = SimulationBuilder::trace(t).run();
        assert_eq!(r.global.evictions, 0);
    }

    #[test]
    fn explicit_blocks_override_ratio() {
        let t = synthetic::private_stream(1, 16, 2);
        let r = SimulationBuilder::trace(t).device_blocks(4).run();
        assert!(
            r.global.evictions >= 12,
            "16-page sweep into 4 blocks thrashes"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_rejected() {
        let t = synthetic::private_stream(1, 4, 1);
        SimulationBuilder::trace(t).memory_ratio(0.0);
    }
}
