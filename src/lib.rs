//! # cmcp — CMCP page replacement for many-core hierarchical memory
//!
//! A full reproduction of *"CMCP: A Novel Page Replacement Policy for
//! System Level Hierarchical Memory Management on Many-cores"* (Gerofi,
//! Shimada, Hori, Takagi, Ishikawa — HPDC 2014), built as a deterministic
//! many-core memory-management simulator since the Xeon Phi hardware the
//! paper ran on is discontinued.
//!
//! ## Quick start
//!
//! ```
//! use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder, Workload, WorkloadClass};
//!
//! // cg.B on 8 cores, PSPT + CMCP, memory constrained to 37 % of the
//! // application footprint (the paper's §5.4 setting for CG):
//! let report = SimulationBuilder::workload(Workload::Cg(WorkloadClass::B))
//!     .cores(8)
//!     .scheme(SchemeChoice::Pspt)
//!     .policy(PolicyKind::Cmcp { p: 0.25 })
//!     .memory_ratio(0.37)
//!     .run();
//! assert!(report.runtime_cycles > 0);
//! println!("runtime: {:.1} ms, page faults/core: {:.0}",
//!          report.runtime_secs * 1e3, report.avg_page_faults());
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | architecture | [`arch`] | TLBs, ring/IPI model, DMA model, cost table |
//! | page tables | [`pagetable`] | 4-level tables, 64 kB PTE format, regular vs PSPT |
//! | policies | [`policies`] | CMCP, FIFO, two-list LRU, CLOCK, LFU, adaptive CMCP |
//! | kernel | [`kernel`] | fault path, eviction, shootdowns, scan timer |
//! | engine | [`sim`] | unified sharded engine, deterministic at any thread count |
//! | workloads | [`workloads`] | CG/LU/BT/SCALE trace generators + real numerics |
//!
//! See `DESIGN.md` for the paper-to-module mapping and `EXPERIMENTS.md`
//! for reproduced-vs-paper results of every figure and table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;

pub use builder::{SimulationBuilder, TracedRun, DEFAULT_TRACE_CAPACITY};

pub use cmcp_arch as arch;
pub use cmcp_core as policies;
pub use cmcp_kernel as kernel;
pub use cmcp_pagetable as pagetable;
pub use cmcp_sim as sim;
pub use cmcp_trace as trace;
pub use cmcp_workloads as workloads;

pub use cmcp_arch::{
    CostModel, FaultPlan, FaultRule, FaultSite, NodeSpec, NumaConfig, PageSize, TierConfig,
    TierSpec,
};
pub use cmcp_core::{CmcpConfig, CmcpPolicy, PolicyKind};
pub use cmcp_kernel::{KernelConfig, SchemeChoice, TierCounters, Vmm};
pub use cmcp_sim::{EngineScaling, HostScaling, NumaReport, RunReport, TierReport, Trace};
pub use cmcp_trace::{Breakdown, Event, EventKind, NullTracer, Recorder, RingTracer};
pub use cmcp_workloads::{Workload, WorkloadClass};
