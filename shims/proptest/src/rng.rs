//! Deterministic generator backing the shim strategies.

/// splitmix64 generator; seeded from (test name, case index) so every
/// property test is reproducible across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Rng for one case of one named property.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("t", 4);
        assert_ne!(a[0], other.next_u64());
    }
}
