//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// `Vec<T>` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// `BTreeSet<T>` targeting a size drawn from `len` (attempt-capped, so
/// small element domains yield smaller sets instead of looping forever).
pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, len }
}

/// `HashSet<T>` targeting a size drawn from `len` (attempt-capped).
pub fn hash_set<S: Strategy>(element: S, len: Range<usize>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, len }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = draw_len(&self.len, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = draw_len(&self.len, rng);
        let mut set = BTreeSet::new();
        for _ in 0..target * 8 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Strategy returned by [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = draw_len(&self.len, rng);
        let mut set = HashSet::new();
        for _ in 0..target * 8 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

fn draw_len(len: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(len.start < len.end, "empty length range");
    len.start + (rng.next_u64() as usize) % (len.end - len.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_len_in_range() {
        let strat = vec(0u64..100, 3..7);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sets_are_capped_by_small_domains() {
        // Only 2 distinct bools exist; target sizes above 2 must not hang.
        let strat = hash_set(any::<bool>(), 1..10);
        let mut rng = TestRng::for_case("hs", 0);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 2);
        }
        let strat = btree_set(0u16..4, 1..10);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 4);
        }
    }
}
