//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the strategy/`proptest!` surface this workspace uses with a
//! deterministic splitmix64 generator seeded from the test name, so runs
//! are reproducible. No shrinking: a failing case reports its inputs via
//! the `Debug` formatting embedded in the failure message instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// `prop::collection::*` and friends, mirroring the real crate's paths.
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`, `hash_set`).
    pub mod collection {
        pub use crate::collection::{btree_set, hash_set, vec};
    }
}

pub mod collection;

mod rng;
pub use rng::TestRng;

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case; carries the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike the real crate there is no shrinking tree; `generate` yields
/// the final value directly.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Macro plumbing: erases a strategy's concrete type while pinning its
/// `Value` projection, so `prop_oneof!` elements unify by inference.
#[doc(hidden)]
pub fn boxed<S: Strategy + 'static>(strat: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strat)
}

/// Uniform choice among strategies, like the real `prop_oneof!` without
/// weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($strat)),+])
    };
}

// ---- Range strategies ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.next_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---- Tuple strategies ----

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4)
);

// ---- any::<T>() ----

/// Strategy over a type's full value domain; built by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T` (`bool`, `usize`, and the fixed-width
/// integers are supported).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- The proptest! macro and assertions ----

/// Declares property tests. Supports the workspace's usage:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    &$cfg,
                    |__rng| {
                        $(let $arg = $crate::generate_one(&($strat), __rng);)+
                        // Rendered before the body can move the bindings.
                        let __inputs = ::std::format!(
                            ::std::concat!($(::std::stringify!($arg), " = {:?}, "),+),
                            $(&$arg),+
                        );
                        let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case().map_err(|e| (e, __inputs))
                    },
                );
            }
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} != {:?}: {}",
                    l, r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Macro plumbing: draws one value from a strategy. A `Sized` generic
/// (rather than UFCS on the trait) so type inference is never tempted by
/// an unsizing coercion to `dyn Strategy`.
#[doc(hidden)]
pub fn generate_one<S: Strategy>(strat: &S, rng: &mut TestRng) -> S::Value {
    strat.generate(rng)
}

/// Macro runtime: runs `case` for `cfg.cases` deterministic seeds and
/// panics with inputs + message on the first failure.
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    for i in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, i as u64);
        if let Err((TestCaseError(msg), inputs)) = case(&mut rng) {
            panic!("property `{name}` failed on case {i}:\n  inputs: {inputs}\n  {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let s = (-8i32..9).generate(&mut rng);
            assert!((-8..9).contains(&s));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2),];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => saw_just = true,
                v if (20..40).contains(&v) && v % 2 == 0 => saw_mapped = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_just && saw_mapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_args(
            x in 0u64..100,
            flag in any::<bool>(),
            v in prop::collection::vec((0u64..8, any::<bool>()), 1..10),
        ) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert_eq!(flag, flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
