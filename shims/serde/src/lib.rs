//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Instead of serde's visitor architecture, this shim serializes through
//! an owned [`Value`] tree (the same design as `serde_json::Value`, which
//! is the only serializer the workspace uses). `#[derive(Serialize,
//! Deserialize)]` works on structs with named fields via the companion
//! `serde_derive` shim.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on [`Value::Object`]; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// A struct field was absent from the serialized object.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }

    /// A value had the wrong shape for the target type.
    pub fn wrong_type(expected: &str, got: &Value) -> Error {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

// ---- Deserialize impls ----

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::wrong_type("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(format!("{n} out of range")))?,
                    Value::I64(n) => n,
                    _ => return Err(Error::wrong_type("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::wrong_type("number", v))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::wrong_type("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::wrong_type("string", v)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::wrong_type("array", v)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::wrong_type("2-element array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn integers_accept_cross_signed_values() {
        // A hand-built non-negative I64 still deserializes as unsigned.
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-7)).is_err());
        assert_eq!(i32::from_value(&Value::U64(9)).unwrap(), 9);
    }
}
