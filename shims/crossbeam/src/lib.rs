//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Only `crossbeam::scope` is consumed by this workspace (the parallel
//! simulation engine). It is implemented on `std::thread::scope`, which
//! provides the same structured-concurrency guarantee. One semantic
//! difference: if a worker panics, the panic propagates when the scope
//! exits instead of surfacing as `Err` — callers here immediately
//! `.expect()` the result anyway, so the observable behaviour (abort with
//! the worker's panic message) is equivalent.

#![forbid(unsafe_code)]

use std::any::Any;

/// Handle for spawning threads inside a [`scope`] call.
///
/// Passed *by value* to every spawned closure (crossbeam passes `&Scope`;
/// every call site in this workspace ignores the argument, so the shim
/// uses the simpler `Copy` handle).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a [`Scope`] so nested
    /// spawns work, mirroring crossbeam's signature shape.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
