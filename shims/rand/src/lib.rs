//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the `rand 0.8` API subset this workspace consumes:
//! `StdRng::seed_from_u64`, `Rng::gen_bool`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen` for a few primitives. The generator is
//! splitmix64 — not cryptographic, but statistically fine for workload
//! synthesis and tests, and fully deterministic per seed (which is all the
//! workspace relies on: same seed ⇒ same trace).
//!
//! The stream differs from upstream `StdRng` (ChaCha12), so synthesized
//! workloads are not bit-identical to ones generated with the real crate;
//! every test in this repo asserts *properties* or *self-consistency*, not
//! upstream-exact values.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be uniformly sampled from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                // 2^53 + 1 equally spaced points including both endpoints.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types [`Rng::gen`] can produce (the `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush when
            // used as a stream like this.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.15)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.15).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn float_range_covers_span() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = r.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
