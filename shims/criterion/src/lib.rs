//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Benchmarks run a brief warmup then a fixed number of timed samples and
//! print the per-iteration mean. `cargo bench -- --test` (the CI smoke
//! mode) runs each benchmark body exactly once, matching real criterion's
//! behavior. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the binary was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run each benchmark once to check it works (`--test`, or executed
    /// by the test harness rather than `cargo bench`).
    Test,
    /// Time the benchmark and report the mean.
    Bench,
}

fn mode_from_args() -> Mode {
    let mut bench = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => return Mode::Test,
            "--bench" => bench = true,
            // Filters, --save-baseline, etc. are accepted and ignored.
            _ => {}
        }
    }
    if bench {
        Mode::Bench
    } else {
        Mode::Test
    }
}

/// Benchmark registry and runner; the `c` in `fn bench(c: &mut Criterion)`.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.mode, self.sample_size, name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.mode, samples, &name, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the benchmarked parameter alone.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new<P: Display>(function: &str, param: P) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Total time and iteration count accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value live via `black_box`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Test {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Calibrate: run until ~10ms elapses to pick an iteration count.
        let start = Instant::now();
        let mut calib = 0u64;
        while start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib += 1;
        }
        let t = Instant::now();
        for _ in 0..calib {
            black_box(routine());
        }
        self.elapsed += t.elapsed();
        self.iters += calib;
    }
}

fn run_one(mode: Mode, samples: usize, name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    match mode {
        Mode::Test => {
            f(&mut b);
            println!("test {name} ... ok");
        }
        Mode::Bench => {
            for _ in 0..samples {
                f(&mut b);
            }
            let per_iter = if b.iters == 0 {
                Duration::ZERO
            } else {
                b.elapsed / u32::try_from(b.iters.min(u32::MAX as u64)).unwrap_or(u32::MAX)
            };
            println!("{name}: {per_iter:?}/iter ({} iters)", b.iters);
        }
    }
}

/// Collects benchmark functions into a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut count = 0u64;
        let mut b = Bencher {
            mode: Mode::Test,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("fill", 8).0, "fill/8");
    }
}
