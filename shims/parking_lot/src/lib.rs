//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in sandboxes with no registry access, so the
//! handful of external crates it uses are replaced by in-repo shims that
//! expose the *exact API subset* the workspace consumes (see
//! `shims/README.md`). Like the real crate, locks here are not poisoned
//! by panics: a panicking holder simply unlocks during unwind.
//!
//! Implementation: test-and-test-and-set spin locks with a yielding
//! backoff, not wrappers around `std::sync`. The simulator's fault hot
//! path crosses roughly a dozen uncontended lock pairs per fault
//! (page-table `RwLock`s, residency stripes, policy and batch mutexes),
//! and the `std` futex path's stronger orderings plus poison checks made
//! those pairs the single largest cost on the path. Critical sections in
//! this codebase are tens of nanoseconds, held with no blocking calls
//! inside, so spinning (briefly, then yielding to stay fair on
//! oversubscribed runners) is the right trade — the same one the real
//! `parking_lot` makes with its userspace fast path.
//!
//! This is the only shim that needs `unsafe`: a lock hands out `&mut T`
//! from `&self`, which fundamentally requires `UnsafeCell`. The unsafe
//! surface is confined to the guard `Deref` impls and the `Send`/`Sync`
//! bounds, each annotated with its invariant.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{
    AtomicBool, AtomicU32,
    Ordering::{Acquire, Relaxed, Release},
};

/// Spins this many times with a pause hint before starting to yield the
/// timeslice. Uncontended acquires never reach the backoff at all; short
/// contention resolves within the pause window; anything longer means
/// the holder was preempted, and yielding lets it run.
const SPINS_BEFORE_YIELD: u32 = 64;

#[inline]
fn backoff(spins: &mut u32) {
    if *spins < SPINS_BEFORE_YIELD {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Marker making guards `!Send`, like the `std` and `parking_lot`
/// guards: a guard unlocks on the thread that acquired it.
type NotSend = PhantomData<*const ()>;

/// A mutual-exclusion spin lock that is not poisoned by panics.
pub struct Mutex<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock protocol guarantees at most one thread observes the
// inner value at a time (guards borrow the lock, `lock` hands out one
// guard per acquire), so sharing the lock across threads only requires
// that the value itself may move between threads: `T: Send`.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking (spinning, then yielding) until it is
    /// available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange(false, true, Acquire, Relaxed)
            .is_err()
        {
            self.lock_slow();
        }
        MutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    #[cold]
    fn lock_slow(&self) {
        let mut spins = 0;
        loop {
            // Test-and-test-and-set: spin on a plain load so waiters do
            // not bounce the cache line with failed RMWs.
            while self.locked.load(Relaxed) {
                backoff(&mut spins);
            }
            if self
                .locked
                .compare_exchange(false, true, Acquire, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Acquire, Relaxed)
            .is_ok()
        {
            Some(MutexGuard {
                lock: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    _not_send: NotSend,
}

// SAFETY: a shared guard only hands out `&T`, so sharing it across
// threads requires exactly `T: Sync` (same bound as the std guard).
unsafe impl<T: Sync> Sync for MutexGuard<'_, T> {}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the lock is held, which
        // excludes every other reference to the value.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` makes this the only path
        // to the value even through this guard.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Writer-held bit of the [`RwLock`] state word; the low bits count
/// active readers.
const WRITER: u32 = 1 << 31;

/// A reader-writer spin lock that is not poisoned by panics.
pub struct RwLock<T> {
    /// `WRITER` when write-locked, otherwise the number of readers.
    state: AtomicU32,
    value: UnsafeCell<T>,
}

// SAFETY: concurrent readers on distinct threads observe `&T`
// (requires `T: Sync`); the value is handed between threads through
// write guards (requires `T: Send`). Same bounds as `std::sync::RwLock`.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            state: AtomicU32::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut spins = 0;
        loop {
            let s = self.state.load(Relaxed);
            if s & WRITER == 0 {
                debug_assert!(s < WRITER - 1, "reader count overflow");
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Acquire, Relaxed)
                    .is_ok()
                {
                    return RwLockReadGuard {
                        lock: self,
                        _not_send: PhantomData,
                    };
                }
            } else {
                backoff(&mut spins);
            }
        }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if self
            .state
            .compare_exchange(0, WRITER, Acquire, Relaxed)
            .is_err()
        {
            self.write_slow();
        }
        RwLockWriteGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    #[cold]
    fn write_slow(&self) {
        let mut spins = 0;
        loop {
            while self.state.load(Relaxed) != 0 {
                backoff(&mut spins);
            }
            if self
                .state
                .compare_exchange(0, WRITER, Acquire, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.state.load(Relaxed) & WRITER == 0 {
            let g = self.read();
            f.debug_struct("RwLock").field("data", &*g).finish()
        } else {
            f.debug_struct("RwLock").field("data", &"<locked>").finish()
        }
    }
}

/// RAII guard for [`RwLock::read`]; releases the reader count on drop.
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    _not_send: NotSend,
}

// SAFETY: the guard only exposes `&T`; see `MutexGuard`.
unsafe impl<T: Sync> Sync for RwLockReadGuard<'_, T> {}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: a nonzero reader count excludes writers, and readers
        // only ever take shared references.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// RAII guard for [`RwLock::write`]; unlocks on drop.
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    _not_send: NotSend,
}

// SAFETY: the guard only exposes `&T` through a shared reference; see
// `MutexGuard`.
unsafe impl<T: Sync> Sync for RwLockWriteGuard<'_, T> {}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the WRITER bit excludes all other guards.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` — this is the only live
        // reference to the value.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.store(0, Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_respects_holder() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner().len(), 3);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }

    #[test]
    fn mutex_excludes_concurrent_increments() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn rwlock_excludes_writers_from_readers() {
        use std::sync::Arc;
        // Writers append pairs; readers must never observe a torn pair.
        let l = Arc::new(RwLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = l.write();
                        g.0 += 1;
                        g.1 += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let g = l.read();
                        assert_eq!(g.0, g.1, "torn read under writer");
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        let g = l.read();
        assert_eq!((g.0, g.1), (20_000, 20_000));
    }
}
