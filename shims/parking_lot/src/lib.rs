//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in sandboxes with no registry access, so the
//! handful of external crates it uses are replaced by in-repo shims that
//! expose the *exact API subset* the workspace consumes (see
//! `shims/README.md`). This one wraps `std::sync` primitives and ignores
//! poisoning, which matches `parking_lot` semantics: a panicked holder
//! does not poison the lock.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock that is not poisoned by panics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that is not poisoned by panics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
