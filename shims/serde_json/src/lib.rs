//! Offline stand-in for the `serde_json` crate (see `shims/README.md`).
//!
//! Provides `to_string`, `to_string_pretty`, `from_str`, the [`json!`]
//! macro, and re-exports the shim-`serde` [`Value`] — the full surface
//! this workspace consumes.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] in place.
///
/// Supports `null`, `[elem, ...]` arrays, `{"key": expr, ...}` objects
/// with literal string keys, and arbitrary serializable expressions as
/// values — the subset the workspace uses. (The real macro additionally
/// allows computed keys and deep inline nesting.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- writer ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                // JSON has no NaN/Infinity; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        break_line(out, indent, depth + 1);
                    }
                    write_value(item, out, indent, depth + 1);
                }
            });
        }
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.is_empty(), '{', '}', |out| {
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        break_line(out, indent, depth + 1);
                    }
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, depth + 1);
                }
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if !empty {
        break_line(out, indent, depth + 1);
        body(out);
        break_line(out, indent, depth);
    }
    out.push(close);
}

fn break_line(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom("expected ',' or '}' in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them loudly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unpaired surrogate"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({
            "name": "run",
            "cycles": 12345u64,
            "ratio": 0.5,
            "neg": -3i64,
            "flag": true,
            "opt": Option::<u64>::None,
            "list": vec![1u64, 2, 3],
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(compact.contains("\"cycles\":12345"));
        assert!(pretty.contains("  \"cycles\": 12345"));
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        let s = to_string(&v).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn numbers_parse_into_best_variant() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::I64(-42));
        assert_eq!(from_str::<Value>("4.5").unwrap(), Value::F64(4.5));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
