//! Model-checked threads mirroring `std::thread`.

use crate::exec;

/// Handle to a model thread; `join` blocks the calling model thread
/// (never the OS scheduler) until the target finishes.
pub struct JoinHandle<T>(exec::JoinHandle<T>);

/// Spawns a model thread. At most `8` threads per model (vector clocks
/// are fixed-width).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    JoinHandle(exec::spawn(f))
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. A panic
    /// in the target aborts the whole execution and resurfaces from
    /// `loom::model`, so — unlike std — the `Err` arm is never taken.
    pub fn join(self) -> std::thread::Result<T> {
        Ok(self.0.join_impl())
    }
}

/// A pure scheduling point: lets the model switch threads here.
pub fn yield_now() {
    exec::yield_point();
}
