//! Model-checked atomic types mirroring `std::sync::atomic`.
//!
//! Every operation is a scheduling point and a weak-memory event in the
//! engine (`exec`). Values are stored as `u64` bit patterns; the typed
//! wrappers convert at the boundary. `Ordering` is re-exported from
//! `std` so `cfg(loom)` code swaps imports without touching call sites.

pub use std::sync::atomic::Ordering;

use crate::exec;

macro_rules! atomic_int {
    ($name:ident, $ty:ty, $to:expr, $from:expr) => {
        /// Model-checked stand-in for the std atomic of the same name.
        #[derive(Debug)]
        pub struct $name {
            id: usize,
        }

        impl $name {
            /// Creates the atomic, registering it with the current
            /// model execution.
            #[allow(clippy::redundant_closure_call)]
            pub fn new(v: $ty) -> $name {
                $name {
                    id: exec::new_location(($to)(v)),
                }
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn load(&self, ord: Ordering) -> $ty {
                ($from)(exec::atomic_op(|st, me| exec::load(st, me, self.id, ord)))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn store(&self, v: $ty, ord: Ordering) {
                exec::atomic_op(|st, me| exec::store(st, me, self.id, ($to)(v), ord))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(exec::atomic_op(|st, me| {
                    exec::rmw(st, me, self.id, ord, |_| ($to)(v))
                }))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(exec::atomic_op(|st, me| {
                    exec::rmw(st, me, self.id, ord, |old| {
                        ($to)(($from)(old).wrapping_add(v))
                    })
                }))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(exec::atomic_op(|st, me| {
                    exec::rmw(st, me, self.id, ord, |old| {
                        ($to)(($from)(old).wrapping_sub(v))
                    })
                }))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(exec::atomic_op(|st, me| {
                    exec::rmw(st, me, self.id, ord, |old| ($to)(($from)(old).max(v)))
                }))
            }

            #[allow(clippy::redundant_closure_call)]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                exec::atomic_op(|st, me| {
                    exec::compare_exchange(
                        st,
                        me,
                        self.id,
                        ($to)(current),
                        ($to)(new),
                        success,
                        failure,
                    )
                })
                .map($from)
                .map_err($from)
            }

            /// Never fails spuriously in the shim (documented deviation;
            /// retry loops treat spurious and genuine failures alike).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(Default::default())
            }
        }
    };
}

atomic_int!(AtomicU64, u64, |v: u64| v, |v: u64| v);
atomic_int!(AtomicU32, u32, |v: u32| v as u64, |v: u64| v as u32);
atomic_int!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
atomic_int!(AtomicIsize, isize, |v: isize| v as u64, |v: u64| v as isize);

/// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    id: usize,
}

impl AtomicBool {
    /// Creates the atomic, registering it with the current execution.
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool {
            id: exec::new_location(v as u64),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        exec::atomic_op(|st, me| exec::load(st, me, self.id, ord)) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        exec::atomic_op(|st, me| exec::store(st, me, self.id, v as u64, ord))
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        exec::atomic_op(|st, me| exec::rmw(st, me, self.id, ord, |_| v as u64)) != 0
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}
