//! # loom (offline stand-in)
//!
//! Bounded model checking for the workspace's lock-free code, mirroring
//! the API subset of the real [`loom`](https://docs.rs/loom) crate that
//! this repository consumes: `loom::model`, `loom::thread`, and
//! `loom::sync::atomic`. Code under test swaps `std::sync::atomic`
//! imports for `loom::sync::atomic` behind `--cfg loom` and runs each
//! scenario inside [`model`], which exhaustively explores bounded
//! thread interleavings *and* weak-memory read choices (release/acquire
//! vector clocks with release-sequence inheritance through RMWs). See
//! `src/exec.rs` for the engine and shims/README.md for the documented
//! deviations from real loom.
//!
//! Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 2) bounds context
//! switches away from a runnable thread per execution;
//! `LOOM_MAX_ITERATIONS` (default 100 000) bounds explored executions.

mod atomic;
mod exec;
pub mod thread;

pub use exec::model;

/// Mirrors `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Mirrors `loom::sync::atomic`.
    pub mod atomic {
        pub use crate::atomic::{
            AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Mirrors `loom::hint`.
pub mod hint {
    /// A scheduling point inside spin loops.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The canonical publish race: a relaxed flag store gives the
    /// reader no happens-before edge, so the checker must find an
    /// execution where the flag is visible but the payload is not.
    #[test]
    fn finds_relaxed_publish_race() {
        let failed = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let t = super::thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Relaxed); // BUG: should be Release
                });
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
                }
                t.join().unwrap();
            });
        }));
        assert!(failed.is_err(), "the relaxed publish race must be caught");
    }

    /// The correct release/acquire publish never fails.
    #[test]
    fn release_acquire_publish_passes() {
        super::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    /// A relaxed RMW continues the release sequence: an acquire load
    /// that reads the RMW still synchronizes with the earlier release
    /// store. The frame-pool hand-off proof relies on this.
    #[test]
    fn release_sequence_survives_relaxed_rmw() {
        super::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t1 = super::thread::spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            let f3 = Arc::clone(&flag);
            let t2 = super::thread::spawn(move || {
                f3.fetch_add(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 2 {
                // Both the release store and the relaxed RMW happened;
                // reading the RMW must still acquire the release.
                assert_eq!(data.load(Ordering::Relaxed), 7);
            }
            t1.join().unwrap();
            t2.join().unwrap();
        });
    }

    /// The scheduler really interleaves: a load/store (non-RMW)
    /// increment pair must lose an update in some execution.
    #[test]
    fn finds_lost_update_interleaving() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let finals: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let sink = Arc::clone(&finals);
        super::model(move || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = super::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            sink.lock().unwrap().insert(c.load(Ordering::SeqCst));
        });
        let seen = finals.lock().unwrap();
        assert!(seen.contains(&1), "lost-update interleaving not explored");
        assert!(seen.contains(&2), "serial interleaving not explored");
    }

    /// Contended CAS loops terminate and conserve: a two-thread Treiber
    /// push pair leaves both values on the stack in every execution.
    #[test]
    fn cas_push_pair_conserves() {
        super::model(|| {
            let head = Arc::new(AtomicU64::new(0));
            let next = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);
            let push = |head: &AtomicU64, next: &[AtomicU64; 3], slot: u64| {
                let mut observed = head.load(Ordering::Acquire);
                loop {
                    next[slot as usize].store(observed, Ordering::Relaxed);
                    match head.compare_exchange_weak(
                        observed,
                        slot,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return,
                        Err(actual) => observed = actual,
                    }
                }
            };
            let (h2, n2) = (Arc::clone(&head), Arc::clone(&next));
            let t = super::thread::spawn(move || push(&h2, &n2, 1));
            push(&head, &next, 2);
            t.join().unwrap();
            // Walk the stack: exactly {1, 2} present, terminated by 0.
            let top = head.load(Ordering::Acquire);
            let below = next[top as usize].load(Ordering::Acquire);
            let bottom = next[below as usize].load(Ordering::Acquire);
            let mut seen = [top, below];
            seen.sort_unstable();
            assert_eq!(seen, [1, 2]);
            assert_eq!(bottom, 0);
        });
    }
}
