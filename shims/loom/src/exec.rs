//! The model-checking engine: a depth-first exploration of bounded
//! thread interleavings *and* weak-memory read choices.
//!
//! One `model()` call runs the closure many times. Each run (an
//! *execution*) is driven by a prefix of decisions replayed from the
//! previous run; at every decision point past the prefix the engine
//! takes choice 0 and records it. When an execution ends, the deepest
//! decision with an untried alternative is bumped and everything below
//! it is discarded — classic DFS over the decision tree. Exploration is
//! complete when no decision has an untried alternative.
//!
//! Decisions come in two flavours:
//!
//! * **Scheduling** — before every atomic operation the engine may
//!   switch to any runnable thread. Switching away from a thread that
//!   could still run costs one *preemption*; executions are bounded to
//!   `LOOM_MAX_PREEMPTIONS` (default 2), which is known to catch the
//!   overwhelming majority of concurrency bugs while keeping the tree
//!   tractable (CHESS-style context bounding).
//! * **Read choice** — a load may observe any store to the location
//!   that is not excluded by coherence or happens-before. This is what
//!   models *weak memory*: a `Relaxed` store with no release edge stays
//!   invisible-or-visible nondeterministically, exactly the class of
//!   bug `SeqCst`-only interleaving search can never find.
//!
//! The memory model implemented is the C++11 release/acquire fragment
//! over vector clocks:
//!
//! * every store records its writer's clock; a store is readable iff it
//!   is not older (in modification order) than some store already known
//!   to happen-before the reader (write coherence) nor older than a
//!   store the reader already read (read coherence);
//! * `Release` stores carry the writer's vector clock; `Acquire` loads
//!   that read them join it;
//! * read-modify-writes always read the latest store (atomicity) and
//!   **continue release sequences**: an RMW inherits the release set of
//!   the store it read, whatever its own ordering, so an acquire load
//!   that reads the last of a chain of CASes synchronizes with every
//!   release in the chain. The Treiber-stack hand-off proof in
//!   `cmcp-kernel::frames` leans on this.
//!
//! Deliberate simplifications (documented in shims/README.md): no
//! seq-cst total order (`SeqCst` is treated as `AcqRel`), modification
//! order equals scheduler order of the stores, `compare_exchange_weak`
//! never fails spuriously, and there are no fences.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on virtual threads per execution (vector clocks are fixed
/// arrays of this width).
pub(crate) const MAX_THREADS: usize = 8;

/// Per-execution cap on decision points: a fixed schedule that fails to
/// terminate within this budget is livelocked (e.g. a spin loop with no
/// partner progress scheduled), which the engine reports instead of
/// hanging.
const MAX_OPS_PER_EXECUTION: usize = 100_000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A vector clock over virtual thread ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock([u64; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// One store in a location's modification order.
#[derive(Clone, Debug)]
struct Store {
    val: u64,
    writer: usize,
    /// The writer's own clock component at store time; store S
    /// happens-before thread T iff `T.vc[S.writer] >= S.writer_stamp`.
    writer_stamp: u64,
    /// The release set: the union of the vector clocks of every release
    /// store in this store's release sequence. `None` for a relaxed
    /// store outside any sequence.
    release: Option<VClock>,
}

#[derive(Default)]
struct Location {
    stores: Vec<Store>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the given thread to finish.
    Joining(usize),
    Finished,
}

struct ThreadState {
    vc: VClock,
    status: Status,
    /// Per-location index of the newest store this thread has read or
    /// written — the read-coherence floor.
    last_read: HashMap<usize, usize>,
    /// Final clock, published at thread exit for the joiner to inherit.
    final_vc: VClock,
}

impl ThreadState {
    fn new(vc: VClock) -> ThreadState {
        ThreadState {
            vc,
            status: Status::Runnable,
            last_read: HashMap::new(),
            final_vc: VClock::default(),
        }
    }
}

/// A decision point: `chosen` out of `options` alternatives.
#[derive(Clone, Copy, Debug)]
struct Decision {
    options: usize,
    chosen: usize,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    locations: Vec<Location>,
    current: usize,
    schedule: Vec<Decision>,
    prefix: Vec<usize>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    aborted: bool,
    done: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// OS handles of every spawned virtual thread (drained by the
    /// driver after each execution).
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Inner {
    pub(crate) state: Mutex<ExecState>,
    cv: Condvar,
}

/// Sentinel panic payload used to unwind threads of an aborted
/// execution; never surfaced to the user.
struct AbortSentinel;

thread_local! {
    static CTX: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Inner>, usize) -> R) -> R {
    CTX.with(|c| {
        let ctx = c.borrow();
        let (inner, tid) = ctx
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        f(inner, *tid)
    })
}

fn lock(inner: &Inner) -> MutexGuard<'_, ExecState> {
    // A panicking model thread is routine (that is how failures
    // surface); ignore std mutex poisoning.
    inner
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Inner {
    fn new(prefix: Vec<usize>, max_preemptions: usize) -> Inner {
        Inner {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState::new(VClock::default())],
                locations: Vec::new(),
                current: 0,
                schedule: Vec::new(),
                prefix,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                aborted: false,
                done: false,
                panic_payload: None,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }
}

/// Takes the next decision. Replays the prefix, then defaults to 0.
fn decide(st: &mut ExecState, options: usize) -> usize {
    debug_assert!(options >= 1);
    let chosen = if st.cursor < st.prefix.len() {
        st.prefix[st.cursor]
    } else {
        0
    };
    debug_assert!(chosen < options, "nondeterministic replay");
    st.schedule.push(Decision { options, chosen });
    st.cursor += 1;
    chosen
}

fn runnable_after(st: &ExecState, me: usize) -> Vec<usize> {
    // `me` first (choice 0 = keep running, no preemption), then the
    // rest in tid order — deterministic across replays.
    let mut out = Vec::new();
    if st.threads[me].status == Status::Runnable {
        out.push(me);
    }
    out.extend(
        (0..st.threads.len()).filter(|&t| t != me && st.threads[t].status == Status::Runnable),
    );
    out
}

fn abort(inner: &Inner, st: &mut ExecState, payload: Box<dyn Any + Send>) {
    st.aborted = true;
    if st.panic_payload.is_none() {
        st.panic_payload = Some(payload);
    }
    inner.cv.notify_all();
}

/// Parks the calling thread until it is scheduled again (or the
/// execution aborts, in which case it unwinds with the sentinel).
fn wait_for_baton<'a>(
    inner: &'a Inner,
    mut st: MutexGuard<'a, ExecState>,
    me: usize,
) -> MutexGuard<'a, ExecState> {
    while st.current != me && !st.aborted {
        st = inner
            .cv
            .wait(st)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
    if st.aborted {
        drop(st);
        std::panic::panic_any(AbortSentinel);
    }
    st
}

/// The scheduling point run before every visible operation: maybe
/// switch to another runnable thread (bounded preemptions), then return
/// with the baton held and the lock re-acquired.
fn sched_point<'a>(
    inner: &'a Inner,
    mut st: MutexGuard<'a, ExecState>,
    me: usize,
) -> MutexGuard<'a, ExecState> {
    if st.aborted {
        drop(st);
        std::panic::panic_any(AbortSentinel);
    }
    if st.schedule.len() >= MAX_OPS_PER_EXECUTION {
        abort(
            inner,
            &mut st,
            Box::new(format!(
                "loom: execution exceeded {MAX_OPS_PER_EXECUTION} operations — livelock under \
                 the current schedule?"
            )),
        );
        drop(st);
        std::panic::panic_any(AbortSentinel);
    }
    let candidates = runnable_after(&st, me);
    debug_assert_eq!(candidates.first(), Some(&me), "caller must be runnable");
    let candidates = if st.preemptions >= st.max_preemptions {
        vec![me]
    } else {
        candidates
    };
    if candidates.len() > 1 {
        let c = decide(&mut st, candidates.len());
        let target = candidates[c];
        if target != me {
            st.preemptions += 1;
            st.current = target;
            inner.cv.notify_all();
            st = wait_for_baton(inner, st, me);
        }
    }
    st
}

/// Runs `f` under the execution lock after a scheduling point. The
/// closure performs one atomic operation's worth of state mutation.
pub(crate) fn atomic_op<R>(f: impl FnOnce(&mut ExecState, usize) -> R) -> R {
    with_ctx(|inner, me| {
        let st = lock(inner);
        let mut st = sched_point(inner, st, me);
        f(&mut st, me)
    })
}

/// A bare scheduling point with no memory effect (`yield_now`).
pub(crate) fn yield_point() {
    atomic_op(|_, _| ());
}

fn ord_acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------
// Memory operations (called by the atomic wrappers with the lock held).
// ---------------------------------------------------------------------

/// Registers a new atomic location; returns its id. Not a scheduling
/// point — creation is invisible to other threads until published.
pub(crate) fn new_location(init: u64) -> usize {
    with_ctx(|inner, me| {
        let mut st = lock(inner);
        let id = st.locations.len();
        let stamp = {
            let vc = &mut st.threads[me].vc;
            vc.0[me] += 1;
            vc.0[me]
        };
        st.locations.push(Location {
            stores: vec![Store {
                val: init,
                writer: me,
                writer_stamp: stamp,
                release: None,
            }],
        });
        st.threads[me].last_read.insert(id, 0);
        id
    })
}

/// The read-coherence floor: the newest store the thread must not read
/// behind (already-read stores and stores known via happens-before).
fn floor_of(st: &ExecState, me: usize, id: usize) -> usize {
    let loc = &st.locations[id];
    let vc = &st.threads[me].vc;
    let hb_floor = loc
        .stores
        .iter()
        .rposition(|s| s.writer_stamp <= vc.0[s.writer])
        .unwrap_or(0);
    let read_floor = st.threads[me].last_read.get(&id).copied().unwrap_or(0);
    hb_floor.max(read_floor)
}

pub(crate) fn load(st: &mut ExecState, me: usize, id: usize, ord: Ordering) -> u64 {
    let floor = floor_of(st, me, id);
    let n = st.locations[id].stores.len() - floor;
    let choice = if n > 1 { decide(st, n) } else { 0 };
    let idx = floor + choice;
    st.threads[me].last_read.insert(id, idx);
    let (val, release) = {
        let s = &st.locations[id].stores[idx];
        (s.val, s.release)
    };
    if ord_acquires(ord) {
        if let Some(rel) = &release {
            st.threads[me].vc.join(rel);
        }
    }
    val
}

pub(crate) fn store(st: &mut ExecState, me: usize, id: usize, val: u64, ord: Ordering) {
    let stamp = {
        let vc = &mut st.threads[me].vc;
        vc.0[me] += 1;
        vc.0[me]
    };
    let release = ord_releases(ord).then(|| st.threads[me].vc);
    let idx = st.locations[id].stores.len();
    st.locations[id].stores.push(Store {
        val,
        writer: me,
        writer_stamp: stamp,
        release,
    });
    st.threads[me].last_read.insert(id, idx);
}

/// Read-modify-write: reads the newest store (atomicity), applies `f`,
/// appends the result, and continues the release sequence.
pub(crate) fn rmw(
    st: &mut ExecState,
    me: usize,
    id: usize,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let (old, inherited) = {
        let s = st.locations[id].stores.last().expect("initialized");
        (s.val, s.release)
    };
    if ord_acquires(ord) {
        if let Some(rel) = &inherited {
            st.threads[me].vc.join(rel);
        }
    }
    let stamp = {
        let vc = &mut st.threads[me].vc;
        vc.0[me] += 1;
        vc.0[me]
    };
    // Release sequence: the new store carries the read store's release
    // set even when this RMW is relaxed; a releasing RMW adds its own
    // clock on top.
    let release = match (ord_releases(ord), inherited) {
        (true, Some(mut r)) => {
            r.join(&st.threads[me].vc);
            Some(r)
        }
        (true, None) => Some(st.threads[me].vc),
        (false, inh) => inh,
    };
    let idx = st.locations[id].stores.len();
    st.locations[id].stores.push(Store {
        val: f(old),
        writer: me,
        writer_stamp: stamp,
        release,
    });
    st.threads[me].last_read.insert(id, idx);
    old
}

/// Compare-exchange: success path is an RMW with `success` ordering,
/// failure path a load of the newest store with `failure` ordering.
pub(crate) fn compare_exchange(
    st: &mut ExecState,
    me: usize,
    id: usize,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (cur, release) = {
        let s = st.locations[id].stores.last().expect("initialized");
        (s.val, s.release)
    };
    if cur == expected {
        Ok(rmw(st, me, id, success, |_| new))
    } else {
        if ord_acquires(failure) {
            if let Some(rel) = &release {
                st.threads[me].vc.join(rel);
            }
        }
        let idx = st.locations[id].stores.len() - 1;
        st.threads[me].last_read.insert(id, idx);
        Err(cur)
    }
}

// ---------------------------------------------------------------------
// Threads.
// ---------------------------------------------------------------------

pub(crate) struct JoinHandle<T> {
    target: usize,
    result: Arc<Mutex<Option<T>>>,
    inner: Arc<Inner>,
}

pub(crate) fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_ctx(|inner, me| {
        let mut st = lock(inner);
        let child = st.threads.len();
        assert!(
            child < MAX_THREADS,
            "loom shim supports at most {MAX_THREADS} threads per model"
        );
        // Spawn edge: everything the parent did happens-before the
        // child's first operation.
        let mut vc = st.threads[me].vc;
        vc.0[me] += 1;
        st.threads[me].vc = vc;
        st.threads.push(ThreadState::new(vc));
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let inner2 = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{child}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner2), child)));
                // Wait to be scheduled for the first time.
                let outcome = {
                    let st = lock(&inner2);
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let st = wait_for_baton(&inner2, st, child);
                        drop(st);
                        f()
                    }));
                    r
                };
                match outcome {
                    Ok(v) => {
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                        thread_done(&inner2, child, None);
                    }
                    Err(p) if p.is::<AbortSentinel>() => thread_done(&inner2, child, None),
                    Err(p) => thread_done(&inner2, child, Some(p)),
                }
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn loom worker");
        st.handles.push(handle);
        JoinHandle {
            target: child,
            result,
            inner: Arc::clone(inner),
        }
    })
}

/// Marks `me` finished, wakes joiners, and hands the baton on (or ends
/// the execution). `payload` carries a user panic, which aborts the
/// whole execution and becomes the model's failure.
pub(crate) fn thread_done(inner: &Inner, me: usize, payload: Option<Box<dyn Any + Send>>) {
    let mut st = lock(inner);
    st.threads[me].final_vc = st.threads[me].vc;
    st.threads[me].status = Status::Finished;
    if let Some(p) = payload {
        abort(inner, &mut st, p);
        return;
    }
    if st.aborted {
        inner.cv.notify_all();
        return;
    }
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::Joining(me) {
            st.threads[t].status = Status::Runnable;
        }
    }
    let runnable = runnable_after(&st, me); // me is Finished, so excluded
    if !runnable.is_empty() {
        let c = if runnable.len() > 1 {
            decide(&mut st, runnable.len())
        } else {
            0
        };
        st.current = runnable[c];
        inner.cv.notify_all();
    } else if st.threads.iter().all(|t| t.status == Status::Finished) {
        st.done = true;
        inner.cv.notify_all();
    } else {
        abort(
            inner,
            &mut st,
            Box::new("loom: deadlock — every live thread is blocked".to_string()),
        );
    }
}

impl<T> JoinHandle<T> {
    pub(crate) fn join_impl(self) -> T {
        let me = with_ctx(|_, tid| tid);
        let inner = Arc::clone(&self.inner);
        let mut st = lock(&inner);
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortSentinel);
            }
            if st.threads[self.target].status == Status::Finished {
                let final_vc = st.threads[self.target].final_vc;
                st.threads[me].vc.join(&final_vc);
                drop(st);
                break;
            }
            // Block until the target exits; the switch is forced, so it
            // costs no preemption.
            st.threads[me].status = Status::Joining(self.target);
            let runnable = runnable_after(&st, me);
            if runnable.is_empty() {
                abort(
                    &inner,
                    &mut st,
                    Box::new("loom: deadlock — join with no runnable thread".to_string()),
                );
                drop(st);
                std::panic::panic_any(AbortSentinel);
            }
            let c = if runnable.len() > 1 {
                decide(&mut st, runnable.len())
            } else {
                0
            };
            st.current = runnable[c];
            inner.cv.notify_all();
            st = wait_for_baton(&inner, st, me);
        }
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("joined thread left no result")
    }
}

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

/// Explores all executions of `f` within the preemption bound. Panics
/// (re-raising the model thread's panic) if any execution fails.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let f = Arc::new(f);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 100_000);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} executions without exhausting the schedule \
             space; shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        let inner = Arc::new(Inner::new(std::mem::take(&mut prefix), max_preemptions));
        let f0 = Arc::clone(&f);
        let inner0 = Arc::clone(&inner);
        let main = std::thread::Builder::new()
            .name("loom-0".into())
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner0), 0)));
                let outcome = catch_unwind(AssertUnwindSafe(|| f0()));
                match outcome {
                    Ok(()) => thread_done(&inner0, 0, None),
                    Err(p) if p.is::<AbortSentinel>() => thread_done(&inner0, 0, None),
                    Err(p) => thread_done(&inner0, 0, Some(p)),
                }
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn loom main");
        main.join().expect("loom main wrapper never panics");
        // Drain the spawned workers; after abort or completion they all
        // exit promptly (parked threads unwind via the sentinel).
        loop {
            let handle = {
                let mut st = lock(&inner);
                st.handles.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let mut st = lock(&inner);
        if let Some(p) = st.panic_payload.take() {
            let depth = st.schedule.len();
            drop(st);
            eprintln!(
                "loom: model failed on execution {iterations} ({depth} decision points); \
                 decision path: see LOOM_MAX_PREEMPTIONS / LOOM_MAX_ITERATIONS to widen or \
                 narrow the search"
            );
            resume_unwind(p);
        }
        // Backtrack: bump the deepest decision with an untried branch.
        let mut schedule = std::mem::take(&mut st.schedule);
        drop(st);
        while let Some(last) = schedule.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                break;
            }
            schedule.pop();
        }
        if schedule.is_empty() {
            return; // exploration complete
        }
        prefix = schedule.iter().map(|d| d.chosen).collect();
    }
}
