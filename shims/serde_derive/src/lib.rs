//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Derives the shim-`serde` `Serialize`/`Deserialize` traits for structs
//! with named fields — the only shape this workspace derives on. Parsing
//! is done directly over the `proc_macro` token stream (no `syn`/`quote`,
//! which the offline sandbox cannot fetch); generated code is emitted as
//! source text and re-parsed, the simplest correct pipeline at this scale.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parses `[attrs] [vis] struct Name { [attrs] [vis] field: Type, ... }`.
///
/// Panics (a compile error at the derive site) on enums, tuple structs,
/// and generic structs: the workspace never derives on those, and a loud
/// failure beats silently wrong codegen.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility, find `struct`.
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(_)) => {} // `pub`, `crate`, ...
            Some(TokenTree::Group(_)) => {} // `pub(crate)`'s parens
            other => panic!("serde_derive shim: unexpected token before `struct`: {other:?}"),
        }
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct name, got {other:?}"),
    };

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic structs are not supported (struct {name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive shim: tuple/unit structs are not supported (struct {name})")
            }
            Some(_) => {}
            None => panic!("serde_derive shim: struct {name} has no braced field list"),
        }
    };

    // Fields: `[attrs] [vis] name : Type ,` — the type is skipped by
    // consuming tokens until a comma at angle-bracket depth 0 (commas
    // inside parenthesized/bracketed types are hidden inside groups).
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match toks.next() {
                None => break None,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next(); // pub(crate)
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                other => panic!("serde_derive shim: unexpected field token {other:?}"),
            }
        };
        let Some(field) = field else { break };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{field}`, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }

    StructShape { name, fields }
}

/// `#[derive(Serialize)]` for named-field structs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let entries: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` for named-field structs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let fields: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     v.get(\"{f}\")\
                      .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?\
                 )?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
