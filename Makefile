# Convenience targets mirroring .github/workflows/ci.yml.
# Everything runs offline: external crates are in-repo shims (shims/README.md).

.PHONY: verify fmt lint test test-serial test-faults test-loom test-miri test-tsan stress determinism test-tiers test-numa bench-smoke bench-parallel bench-parallel-save bench-tiers-save bench-numa-save goldens goldens-check goldens-save ci

# The canonical acceptance gate: release build + full test suite.
verify:
	cargo build --release && cargo test -q

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

test:
	cargo test -q

# The CI matrix's serial leg: surfaces cross-test interference.
test-serial:
	cargo test -q -- --test-threads=1

# Fault-injection suite: shadow-oracle, determinism, and recovery tests.
test-faults:
	cargo test -q --test fault_injection
	cargo test -q --test trace_validation
	cargo test -q --release --test parallel_stress stress_workers_survive_a_one_percent_dma_error_plan

# Bounded model checking of the lock-free core (frame pool, trace ring):
# swaps std atomics for the loom shim's model-checked ones and explores
# every thread interleaving + release/acquire read choice up to the
# preemption bound. LOOM_MAX_PREEMPTIONS=3 make test-loom to dig deeper.
test-loom:
	RUSTFLAGS="--cfg loom" cargo test -p cmcp-kernel -p cmcp-trace --lib loom_

# Miri over the audited lock-free modules (UB + ordering detector with a
# randomized scheduler). Skips with a notice when the toolchain has no
# miri component (it is nightly-only on some channels).
test-miri:
	@if cargo miri --version >/dev/null 2>&1; then \
		cargo miri test -p cmcp-kernel -p cmcp-trace --lib; \
	else \
		echo "miri component not installed (rustup component add miri); skipping"; \
	fi

# ThreadSanitizer leg. Needs nightly AND rust-src: std must be rebuilt
# instrumented (-Zbuild-std) or TSan reports false races inside
# uninstrumented Arc/thread internals. Skips with a notice otherwise.
test-tsan:
	@if cargo +nightly --version >/dev/null 2>&1 && \
	    rustup component list --toolchain nightly --installed 2>/dev/null | grep -q rust-src; then \
		RUSTFLAGS="-Z sanitizer=thread" \
		cargo +nightly test -Z build-std -p cmcp-kernel -p cmcp-trace --lib \
			--target x86_64-unknown-linux-gnu; \
	else \
		echo "nightly + rust-src not installed (TSan needs an instrumented std via -Zbuild-std); skipping"; \
	fi

# Engine stress tests at 8 workers (release: the point is load).
stress:
	cargo test -q --release --test parallel_stress --test thread_determinism

# The cross-thread-count determinism matrix on its own: every policy,
# eviction pressure and fault plan, byte-equal reports at 1/2/4/8 threads.
determinism:
	cargo test -q --release --test thread_determinism

# The tier-subsystem acceptance suite: cross-tier shadow oracle,
# tier/page-size proptests, and the multi-tier determinism leg.
test-tiers:
	cargo test -q --test tier_hierarchy
	cargo test -q --test proptest_tiers
	cargo test -q --release --test thread_determinism tiered_and_adaptive

# The NUMA-subsystem acceptance suite: replica-coherence shadow oracle,
# node-spec proptests, and the multi-node determinism leg.
test-numa:
	cargo test -q --test numa_replication
	cargo test -q --test proptest_tiers numa

# One pass over the policies benchmark bodies (no measurement).
bench-smoke:
	cargo bench -p cmcp-bench --bench policies -- --test

# Smoke pass over the scaling benchmark bodies (asserts cross-thread
# byte-identity, no measurement, leaves the committed baseline alone).
bench-parallel:
	cargo bench -p cmcp-bench --bench parallel_scaling -- --test

# Full measurement of host-parallelism scaling; rewrites the committed
# results/BENCH_parallel.json baseline.
bench-parallel-save:
	cargo bench -p cmcp-bench --bench parallel_scaling -- --bench

# Hot-path microbench vs the committed baseline (the CI perf gate);
# `make bench-hotpath-save` rewrites the baseline after intentional
# hot-path retuning.
bench-hotpath:
	cargo run -q --release -p cmcp-bench --bin fault_latency -- \
		--quick --compare results/BENCH_hotpath.json
bench-hotpath-save:
	cargo run -q --release -p cmcp-bench --bin fault_latency -- --save

# Pressure sweep of static page sizes vs the adaptive scheme on the
# 2-tier hierarchy; rewrites the committed results/BENCH_tiers.json
# baseline (virtual cycles, so deterministic) and fails if adaptive
# loses to the worst static size anywhere in the sweep.
bench-tiers-save:
	cargo run -q --release -p cmcp-bench --bin tier_sweep

# NUMA node-count sweep: replication-on vs -off fault latency at 1/2/4
# nodes; rewrites the committed results/BENCH_numa.json baseline
# (virtual cycles, so deterministic) and fails unless the replication
# gap grows with node count for CMCP and LRU.
bench-numa-save:
	cargo run -q --release -p cmcp-bench --bin numa_sweep

# Regenerate every deterministic golden into a scratch directory and
# require byte-identity with the committed results/ files. The old
# in-place `cargo build --release && git diff` flow regenerated with
# stale binaries (the root build does not cover the bench/cli bins) and
# never touched the ablation goldens — scripts/goldens_check.sh tells
# that story and closes both holes.
goldens-check:
	bash scripts/goldens_check.sh

# Back-compat alias; `make goldens` has always been the identity gate.
goldens: goldens-check

# Regenerate every deterministic golden in place (after an intentional
# semantic change), with the generators built fresh and explicitly.
goldens-save:
	cargo build -q --release -p cmcp-bench -p cmcp-cli
	for b in table1 fig6 fig7 fig8 fig9 fig10 tier_sweep numa_sweep \
	         ablation_aging ablation_ipi ablation_policies ablation_rebuild; do \
		./target/release/$$b || exit 1; done
	./target/release/cmcp-cli --workload cg.B --cores 8 \
		--fault-plan "seed=42,dma=0.01,enospc=0.005" --json \
		> results/golden_faulted_cg.json

ci: fmt lint verify test-serial test-faults test-loom stress test-tiers \
    test-numa bench-smoke bench-hotpath goldens-check
