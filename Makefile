# Convenience targets mirroring .github/workflows/ci.yml.
# Everything runs offline: external crates are in-repo shims (shims/README.md).

.PHONY: verify fmt lint test test-serial test-faults stress bench-smoke bench-parallel ci

# The canonical acceptance gate: release build + full test suite.
verify:
	cargo build --release && cargo test -q

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

test:
	cargo test -q

# The CI matrix's serial leg: surfaces cross-test interference.
test-serial:
	cargo test -q -- --test-threads=1

# Fault-injection suite: shadow-oracle, determinism, and recovery tests.
test-faults:
	cargo test -q --test fault_injection
	cargo test -q --test trace_validation
	cargo test -q --release --test parallel_stress stress_workers_survive_a_one_percent_dma_error_plan

# Parallel-engine stress tests at 8 workers (release: the point is load).
stress:
	cargo test -q --release --test parallel_stress --test engine_equivalence

# One pass over the policies benchmark bodies (no measurement).
bench-smoke:
	cargo bench -p cmcp-bench --bench policies -- --test

# Full measurement of host-parallelism scaling; rewrites the committed
# results/BENCH_parallel.json baseline.
bench-parallel:
	cargo bench -p cmcp-bench --bench parallel_scaling -- --bench

ci: fmt lint verify test-serial test-faults stress bench-smoke
