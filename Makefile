# Convenience targets mirroring .github/workflows/ci.yml.
# Everything runs offline: external crates are in-repo shims (shims/README.md).

.PHONY: verify fmt lint test bench-smoke ci

# The canonical acceptance gate: release build + full test suite.
verify:
	cargo build --release && cargo test -q

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

test:
	cargo test -q

# One pass over the policies benchmark bodies (no measurement).
bench-smoke:
	cargo bench -p cmcp-bench --bench policies -- --test

ci: fmt lint verify bench-smoke
