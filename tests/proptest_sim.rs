//! Property tests over the whole simulation pipeline: conservation laws
//! that must hold for any valid trace and any configuration.

use proptest::prelude::*;

use cmcp::arch::{PageSize, VirtPage};
use cmcp::sim::{Op, Trace};
use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder};

/// Random but well-formed traces: same barrier count everywhere.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        2usize..5, // cores
        1usize..4, // phases
        prop::collection::vec((0u64..96, 1u32..10, any::<bool>()), 1..12),
    )
        .prop_map(|(cores, phases, chunks)| {
            let mut t = Trace::new(cores, "prop");
            for c in 0..cores {
                for phase in 0..phases {
                    for (i, &(start, pages, write)) in chunks.iter().enumerate() {
                        // Offset per core and phase so patterns overlap
                        // partially across cores.
                        let s = start + (c as u64 * 17 + phase as u64 * 5 + i as u64) % 64;
                        t.cores[c].ops.push(Op::Stream {
                            start: VirtPage(s),
                            pages,
                            write,
                            work_per_page: 3,
                        });
                    }
                    t.cores[c].ops.push(Op::Barrier);
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every touch is executed; faults ≥ distinct blocks
    /// (cold misses); runtime covers the busiest core's compute.
    #[test]
    fn conservation_laws(
        trace in trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Cmcp { p: 0.5 }),
        ],
        ratio in 0.3f64..1.2,
    ) {
        let footprint = trace.footprint_blocks(PageSize::K4) as u64;
        let touches = trace.total_touches();
        let r = SimulationBuilder::trace(trace.clone())
            .policy(policy)
            .memory_ratio(ratio)
            .run();
        // Every touch went through a TLB.
        let accesses: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
        prop_assert_eq!(accesses, touches);
        // Cold misses: at least one fault per distinct block.
        let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
        prop_assert!(faults >= footprint,
            "faults {} < footprint {}", faults, footprint);
        // Residency never exceeds capacity... expressed via evictions:
        // evictions = majors - final_resident (majors ≥ footprint).
        prop_assert!(r.global.evictions <= faults);
        // DMA byte counts are block-aligned.
        prop_assert_eq!(r.dma_bytes.0 % 4096, 0);
        prop_assert_eq!(r.dma_bytes.1 % 4096, 0);
        // Runtime is at least the per-core compute of the busiest core.
        prop_assert!(r.runtime_cycles > 0);
    }

    /// With memory ≥ footprint there are no evictions, no write-backs,
    /// and exactly `footprint` majors across all cores under any policy.
    #[test]
    fn no_movement_when_memory_suffices(
        trace in trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Cmcp { p: 0.75 }),
            Just(PolicyKind::Random),
        ],
    ) {
        let r = SimulationBuilder::trace(trace.clone())
            .policy(policy)
            .memory_ratio(1.0)
            .run();
        prop_assert_eq!(r.global.evictions, 0);
        prop_assert_eq!(r.global.writebacks, 0);
        prop_assert_eq!(r.dma_bytes, (0, 0), "nothing to transfer on first touch");
    }

    /// Tighter memory never *reduces* total faults (more evictions can
    /// only cause more refaults) for the deterministic FIFO pipeline.
    #[test]
    fn pressure_monotonicity_for_fifo(trace in trace_strategy()) {
        let faults_at = |ratio: f64| {
            let r = SimulationBuilder::trace(trace.clone())
                .policy(PolicyKind::Fifo)
                .memory_ratio(ratio)
                .run();
            r.per_core.iter().map(|c| c.page_faults).sum::<u64>()
        };
        let relaxed = faults_at(1.0);
        let tight = faults_at(0.4);
        prop_assert!(tight >= relaxed,
            "fault count must not drop under pressure: {} vs {}", tight, relaxed);
    }

    /// Regular tables and PSPT see the same fault *set* when memory is
    /// ample (majors = footprint; PSPT adds minors for sharing).
    #[test]
    fn scheme_fault_relationship(trace in trace_strategy()) {
        let run = |scheme| {
            SimulationBuilder::trace(trace.clone())
                .scheme(scheme)
                .memory_ratio(1.0)
                .run()
        };
        let reg = run(SchemeChoice::Regular);
        let pspt = run(SchemeChoice::Pspt);
        let reg_faults: u64 = reg.per_core.iter().map(|c| c.page_faults).sum();
        let pspt_faults: u64 = pspt.per_core.iter().map(|c| c.page_faults).sum();
        let footprint = trace.footprint_blocks(PageSize::K4) as u64;
        prop_assert_eq!(reg_faults, footprint, "regular: one major per block");
        prop_assert!(pspt_faults >= footprint, "PSPT adds per-core minors");
    }
}
