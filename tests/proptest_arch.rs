//! Property tests for the architecture substrate: the TLB against a
//! fully-associative reference model, CoreSet against a `BTreeSet`, and
//! the ring metric's metric-space laws.

use std::collections::{BTreeSet, HashSet};

use proptest::prelude::*;

use cmcp::arch::{CoreId, CoreSet, CostModel, PageSize, RingModel, Tlb, TlbLookup, VirtPage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A TLB never *hits* a translation it was not given and always
    /// misses after an invalidation — soundness against a reference set
    /// of currently-installed translations (the TLB may miss entries the
    /// reference holds — capacity evictions — but never the reverse).
    #[test]
    fn tlb_is_sound_wrt_reference(
        ops in prop::collection::vec((0u64..512, 0u8..3), 1..400),
    ) {
        let mut tlb = Tlb::knc(&CostModel::default());
        let mut installed: HashSet<u64> = HashSet::new();
        for (page, op) in ops {
            let vp = VirtPage(page);
            match op {
                0 => {
                    // Access: a hit requires a prior fill (soundness).
                    let r = tlb.access(vp, PageSize::K4);
                    if r != TlbLookup::Miss {
                        prop_assert!(
                            installed.contains(&page),
                            "hit on never-installed page {page}"
                        );
                    }
                }
                1 => {
                    tlb.fill(vp, PageSize::K4);
                    installed.insert(page);
                }
                _ => {
                    tlb.invalidate(vp);
                    installed.remove(&page);
                    // Immediately after invalidation: must miss.
                    prop_assert_eq!(tlb.access(vp, PageSize::K4), TlbLookup::Miss);
                    // That access polluted nothing (it missed), but the
                    // reference stays consistent.
                }
            }
        }
    }

    /// Stats accounting: accesses = hits + misses, always.
    #[test]
    fn tlb_stats_balance(
        pages in prop::collection::vec(0u64..256, 1..300),
    ) {
        let mut tlb = Tlb::knc(&CostModel::default());
        for &p in &pages {
            if tlb.access(VirtPage(p), PageSize::K4) == TlbLookup::Miss {
                tlb.fill(VirtPage(p), PageSize::K4);
            }
        }
        let s = tlb.stats();
        prop_assert_eq!(s.accesses, pages.len() as u64);
        prop_assert_eq!(s.accesses, s.l1_hits + s.l2_hits + s.misses);
    }

    /// CoreSet behaves exactly like a BTreeSet<u16> under inserts and
    /// removes, including count and iteration order.
    #[test]
    fn coreset_matches_btreeset(
        ops in prop::collection::vec((0u16..256, any::<bool>()), 1..200),
    ) {
        let mut set = CoreSet::empty();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for (core, remove) in ops {
            if remove {
                prop_assert_eq!(set.remove(CoreId(core)), model.remove(&core));
            } else {
                prop_assert_eq!(set.insert(CoreId(core)), model.insert(core));
            }
            prop_assert_eq!(set.count(), model.len());
        }
        let got: Vec<u16> = set.iter().map(|c| c.0).collect();
        let want: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(got, want, "iteration must be in ascending order");
    }

    /// Ring distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn ring_distance_is_a_metric(
        n in 2usize..64,
        a in 0u16..64,
        b in 0u16..64,
        c in 0u16..64,
    ) {
        let ring = RingModel::new(n, &CostModel::default());
        let (a, b, c) = (CoreId(a % n as u16), CoreId(b % n as u16), CoreId(c % n as u16));
        prop_assert_eq!(ring.distance(a, b), ring.distance(b, a));
        prop_assert_eq!(ring.distance(a, a), 0);
        if a != b {
            prop_assert!(ring.distance(a, b) > 0);
        }
        prop_assert!(ring.distance(a, c) <= ring.distance(a, b) + ring.distance(b, c));
        // And bounded by the ring diameter.
        prop_assert!(ring.distance(a, b) <= n / 2);
    }

    /// Shootdown cost is monotone in the target set.
    #[test]
    fn shootdown_cost_is_monotone(
        targets in prop::collection::btree_set(0u16..56, 0..56),
        extra in 0u16..56,
    ) {
        let ring = RingModel::new(56, &CostModel::default());
        let small: CoreSet = targets.iter().map(|&c| CoreId(c)).collect();
        let mut big = small;
        big.insert(CoreId(extra));
        let requester = CoreId(0);
        let cs = ring.shootdown(requester, &small);
        let cb = ring.shootdown(requester, &big);
        prop_assert!(cb.requester >= cs.requester);
        prop_assert!(cb.targets >= cs.targets);
    }
}
