//! Cross-thread-count determinism: the unified engine must produce a
//! BYTE-IDENTICAL report for every worker-thread count, not merely
//! statistically close aggregates. These tests replace the old
//! engine-equivalence suite (which only compared the two engines on
//! no-pressure traces within tolerances) with exact equality under
//! eviction pressure and an active fault plan — the regimes where an
//! ordering bug would actually show.

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::kernel::KernelConfig;
use cmcp::sim::engine::{run_with_options, EngineOptions};
use cmcp::sim::Op;
use cmcp::workloads::scale::{scale_trace, ScaleConfig};
use cmcp::workloads::synthetic;
use cmcp::{
    FaultPlan, PageSize, PolicyKind, RunReport, SchemeChoice, SimulationBuilder, TierConfig, Trace,
    Vmm,
};

/// The thread counts the acceptance matrix pins. 8 oversubscribes the
/// core counts used below on purpose: clamping must not change bytes.
const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

/// Every replacement policy the engine supports.
const ALL_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Fifo,
    PolicyKind::Lru,
    PolicyKind::Clock,
    PolicyKind::Lfu,
    PolicyKind::Random,
    PolicyKind::Cmcp { p: 0.5 },
    PolicyKind::AdaptiveCmcp,
];

fn scale() -> Trace {
    scale_trace(
        8,
        &ScaleConfig {
            nx: 256,
            ny: 64,
            fields: 3,
            steps: 3,
        },
    )
}

/// Byte-exact fingerprint of everything a run reports. `RunReport`
/// derives `Debug` over all of its fields, so two reports with equal
/// fingerprints are equal field-for-field.
fn fingerprint(r: &RunReport) -> String {
    format!("{r:?}")
}

#[test]
fn all_policies_are_byte_identical_across_thread_counts_under_pressure() {
    // The acceptance matrix: every policy, eviction pressure (half the
    // footprint), shared hot set so cross-core shootdowns and scan
    // ticks interleave with faults. threads=1 is the reference.
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in ALL_POLICIES {
        let run = |threads| {
            SimulationBuilder::trace(t.clone())
                .policy(policy)
                .memory_ratio(0.5)
                .threads(threads)
                .run()
        };
        let reference = run(1);
        assert!(
            reference.global.evictions > 0,
            "{}: ratio 0.5 must force evictions",
            policy.label()
        );
        let touches: u64 = reference.per_core.iter().map(|c| c.dtlb_accesses).sum();
        assert_eq!(
            touches,
            t.total_touches(),
            "{}: every touch executed",
            policy.label()
        );
        let want = fingerprint(&reference);
        for threads in THREAD_MATRIX {
            let got = fingerprint(&run(threads));
            assert_eq!(
                got,
                want,
                "{}: threads={threads} diverged from threads=1",
                policy.label()
            );
        }
    }
}

#[test]
fn all_policies_are_byte_identical_across_thread_counts_under_faults() {
    // Same matrix with the seeded fault layer armed: 1% DMA errors plus
    // occasional ENOSPC. Fault retries re-enter the page-fault path at
    // later stamps, so this leg would catch any stamp-ordering drift in
    // the retry/quarantine machinery.
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in ALL_POLICIES {
        let run = |threads| {
            SimulationBuilder::trace(t.clone())
                .policy(policy)
                .memory_ratio(0.5)
                .fault_plan(FaultPlan::new(7).dma_errors(0.01).enospc(0.005))
                .threads(threads)
                .run()
        };
        let reference = run(1);
        assert!(
            reference.global.dma_errors > 0,
            "{}: 1% over thousands of transfers must fire",
            policy.label()
        );
        let want = fingerprint(&reference);
        for threads in THREAD_MATRIX {
            let got = fingerprint(&run(threads));
            assert_eq!(
                got,
                want,
                "{}: faulted threads={threads} diverged from threads=1",
                policy.label()
            );
        }
    }
}

#[test]
fn scale_workload_is_byte_identical_across_thread_counts() {
    // A real workload trace (SCALE stencil) rather than a synthetic one:
    // barriers every step, constrained memory, CMCP policy.
    let run = |threads| {
        SimulationBuilder::trace(scale())
            .policy(PolicyKind::Cmcp { p: 0.75 })
            .memory_ratio(0.5)
            .threads(threads)
            .run()
    };
    let want = fingerprint(&run(1));
    for threads in THREAD_MATRIX {
        assert_eq!(
            fingerprint(&run(threads)),
            want,
            "threads={threads} diverged on SCALE"
        );
    }
}

#[test]
fn regular_tables_are_byte_identical_across_thread_counts() {
    let t = synthetic::private_stream(4, 32, 3);
    let run = |threads| {
        SimulationBuilder::trace(t.clone())
            .scheme(SchemeChoice::Regular)
            .memory_ratio(0.5)
            .threads(threads)
            .run()
    };
    let reference = run(1);
    assert!(reference.global.evictions > 0);
    assert!(
        reference.sharing_histogram.is_none(),
        "regular tables have no histogram"
    );
    let want = fingerprint(&reference);
    for threads in THREAD_MATRIX {
        assert_eq!(fingerprint(&run(threads)), want);
    }
}

/// Random traces mixing private streams, shared pages, compute gaps,
/// syscalls, and barriers — with a constrained ratio so evictions and
/// shootdowns actually interleave.
fn pressure_trace_strategy() -> impl Strategy<Value = Trace> {
    (
        2usize..6,
        prop::collection::vec((0u64..96, 1u32..12, any::<bool>()), 1..6),
    )
        .prop_map(|(cores, chunks)| {
            let mut t = Trace::new(cores, "det-prop");
            for c in 0..cores {
                for (i, &(start, pages, write)) in chunks.iter().enumerate() {
                    let s = start + (c as u64 * 17 + i as u64 * 5) % 64;
                    t.cores[c].ops.push(Op::Stream {
                        start: VirtPage(s),
                        pages,
                        write,
                        work_per_page: 2,
                    });
                    if i % 2 == 0 {
                        t.cores[c].ops.push(Op::Compute(500));
                    }
                }
                t.cores[c].ops.push(Op::Barrier);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any trace and any policy, every thread count yields the
    /// byte-identical report — the tentpole invariant, property-tested.
    #[test]
    fn any_trace_any_policy_is_thread_count_invariant(
        trace in pressure_trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Clock),
            Just(PolicyKind::Lfu),
            Just(PolicyKind::Random),
            Just(PolicyKind::Cmcp { p: 0.5 }),
            Just(PolicyKind::AdaptiveCmcp),
        ],
    ) {
        let run = |threads| {
            SimulationBuilder::trace(trace.clone())
                .policy(policy)
                .memory_ratio(0.5)
                .threads(threads)
                .run()
        };
        let reference = run(1);
        // Conservation sanity before equality: every touch executed,
        // faults bounded by misses.
        let touches: u64 = reference.per_core.iter().map(|c| c.dtlb_accesses).sum();
        prop_assert_eq!(touches, trace.total_touches());
        let faults: u64 = reference.per_core.iter().map(|c| c.page_faults).sum();
        let misses: u64 = reference.per_core.iter().map(|c| c.dtlb_misses).sum();
        prop_assert!(faults <= misses);
        let want = fingerprint(&reference);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&fingerprint(&run(threads)), &want, "threads={}", threads);
        }
    }
}

#[test]
fn tiered_and_adaptive_runs_are_byte_identical_across_thread_counts() {
    // The multi-tier leg of the acceptance matrix: the epoch-barrier
    // determinism guarantee must survive the tier subsystem (Mutex-
    // guarded span store, demotion cascades, promotions) and the
    // adaptive page-size machinery (buddy allocator, split-on-evict,
    // pressure controller), with the fault plan armed on the tightest
    // config. A 24-page fast tier under the pressure trace guarantees
    // capacity cascades; the reports must still be byte-equal at every
    // thread count.
    let t = synthetic::shared_hot(6, 32, 64, 4);
    let tight = "fast:24@50/0;mid:64@500/2000;cold:0@5000/500";
    let legs: [(&str, &str, bool, Option<FaultPlan>); 4] = [
        ("2tier", "2tier", false, None),
        ("4tier", "4tier", false, None),
        (
            "tight+faults",
            tight,
            false,
            Some(FaultPlan::new(7).dma_errors(0.01).enospc(0.005)),
        ),
        ("tight+adaptive", tight, true, None),
    ];
    for (label, spec, adaptive, plan) in legs {
        let tiers = TierConfig::parse(spec).unwrap();
        let run = |threads| {
            let mut b = SimulationBuilder::trace(t.clone())
                .policy(PolicyKind::Cmcp { p: 0.5 })
                .tiers(tiers.clone())
                .memory_ratio(0.5)
                .threads(threads);
            if adaptive {
                b = b.adaptive_page_size();
            }
            if let Some(plan) = plan.clone() {
                b = b.fault_plan(plan);
            }
            b.run()
        };
        let reference = run(1);
        assert!(
            reference.global.evictions > 0,
            "{label}: tier pressure must evict"
        );
        if spec == tight {
            assert!(
                reference.global.tier_demotions + reference.global.tier_promotions > 0,
                "{label}: the 24-page fast tier must cascade spans"
            );
        }
        let want = fingerprint(&reference);
        for threads in THREAD_MATRIX {
            assert_eq!(
                fingerprint(&run(threads)),
                want,
                "{label}: threads={threads} diverged from threads=1"
            );
        }
    }
}

/// The same memory sizing `SimulationBuilder` applies, so the reference
/// runs below face the identical kernel the builder-driven runs do.
fn kernel_config(
    trace: &Trace,
    policy: PolicyKind,
    ratio: f64,
    tiers: Option<&str>,
    plan: Option<FaultPlan>,
) -> KernelConfig {
    let footprint = trace.declared_blocks(PageSize::K4);
    let blocks = ((footprint as f64 * ratio).ceil() as usize).max(1);
    let mut cfg = KernelConfig::new(trace.cores.len(), blocks).with_policy(policy);
    if let Some(spec) = tiers {
        cfg.cost.tiers = TierConfig::parse(spec).unwrap();
    }
    cfg.fault_plan = plan;
    cfg
}

/// Fingerprint of a run forced down the pure sequential stamp-ordered
/// fold (no concurrent shard rounds) — the reference the sharded commit
/// path is asserted byte-equal to.
fn sequential_reference(cfg: KernelConfig, trace: &Trace) -> String {
    let vmm = Vmm::new(cfg);
    let (report, host) = run_with_options(
        &vmm,
        trace,
        4,
        EngineOptions {
            force_sequential_commit: true,
        },
    );
    assert_eq!(host.parallel_rounds, 0, "reference must never shard");
    fingerprint(&report)
}

/// Fingerprint of the normal engine (sharded prefix + reconciliation
/// tail) at `threads` workers.
fn sharded_run(cfg: KernelConfig, trace: &Trace, threads: usize) -> String {
    let vmm = Vmm::new(cfg);
    let (report, _) = run_with_options(&vmm, trace, threads, EngineOptions::default());
    fingerprint(&report)
}

#[test]
fn eviction_storm_is_byte_identical_and_reconciliation_heavy() {
    // The reconciliation-heavy leg: a hot set plus private streams
    // squeezed to 30% of the footprint, so the frame pool runs dry in
    // the first epochs and nearly every subsequent fault either evicts
    // or re-loads from backing — both reconciliation class. This is the
    // adversarial regime for the sharded commit: the classifier must
    // send almost everything down the sequential tail and the bytes
    // must not move at any thread count.
    let t = synthetic::shared_hot(8, 48, 64, 4);
    let run = |threads| {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.5 })
            .memory_ratio(0.3)
            .threads(threads)
            .run()
    };
    let reference = run(1);
    assert!(
        reference.global.evictions > reference.scaling.shardable,
        "storm leg must be eviction-dominated: {:?}",
        reference.scaling
    );
    assert!(
        reference.scaling.reconciled > reference.scaling.shardable,
        "reconciliation must dominate under a storm: {:?}",
        reference.scaling
    );
    let want = fingerprint(&reference);
    for threads in THREAD_MATRIX {
        assert_eq!(
            fingerprint(&run(threads)),
            want,
            "storm leg: threads={threads} diverged from threads=1"
        );
    }
    // And the engine's sharded path must equal the forced sequential
    // fold on the same kernel.
    let cfg = || kernel_config(&t, PolicyKind::Cmcp { p: 0.5 }, 0.3, None, None);
    assert_eq!(sharded_run(cfg(), &t, 4), sequential_reference(cfg(), &t));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any trace and any policy, the sharded commit path (concurrent
    /// prefix + reconciliation tail) produces the byte-identical report
    /// to a forced sequential stamp-ordered fold — on the flat store, on
    /// a tiered hierarchy, and with the fault-injection layer armed.
    #[test]
    fn sharded_commit_equals_sequential_fold(
        trace in pressure_trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Clock),
            Just(PolicyKind::Lfu),
            Just(PolicyKind::Random),
            Just(PolicyKind::Cmcp { p: 0.5 }),
            Just(PolicyKind::AdaptiveCmcp),
        ],
    ) {
        let legs: [(&str, Option<&str>, Option<FaultPlan>); 3] = [
            ("flat", None, None),
            ("tiered", Some("2tier"), None),
            ("faulted", None, Some(FaultPlan::new(7).dma_errors(0.01).enospc(0.005))),
        ];
        for (label, tiers, plan) in legs {
            let cfg = || kernel_config(&trace, policy, 0.5, tiers, plan.clone());
            prop_assert_eq!(
                &sharded_run(cfg(), &trace, 4),
                &sequential_reference(cfg(), &trace),
                "{} leg: sharded commit diverged from the sequential fold ({})",
                label,
                policy.label()
            );
        }
    }
}

#[test]
fn repeat_runs_at_the_same_thread_count_are_byte_identical() {
    // Determinism in the other axis: same thread count, fresh Vmm each
    // time. Catches hidden global state (RNG, time, allocation order).
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for threads in [1usize, 4] {
        let run = || {
            SimulationBuilder::trace(t.clone())
                .policy(PolicyKind::AdaptiveCmcp)
                .memory_ratio(0.5)
                .threads(threads)
                .run()
        };
        assert_eq!(
            fingerprint(&run()),
            fingerprint(&run()),
            "threads={threads}: repeat run diverged"
        );
    }
}
