//! Cross-engine tests: the deterministic and parallel engines must agree
//! on everything functional (what faulted, what moved, what is resident)
//! even though their timing interleavings differ.

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::sim::Op;
use cmcp::workloads::scale::{scale_trace, ScaleConfig};
use cmcp::workloads::synthetic;
use cmcp::{EngineMode, PolicyKind, RunReport, SchemeChoice, SimulationBuilder, Trace};

fn scale() -> Trace {
    scale_trace(
        8,
        &ScaleConfig {
            nx: 256,
            ny: 64,
            fields: 3,
            steps: 3,
        },
    )
}

/// Every replacement policy the engines support.
const ALL_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Fifo,
    PolicyKind::Lru,
    PolicyKind::Clock,
    PolicyKind::Lfu,
    PolicyKind::Random,
    PolicyKind::Cmcp { p: 0.5 },
    PolicyKind::AdaptiveCmcp,
];

#[test]
fn unconstrained_runs_agree_exactly() {
    // Without evictions the fault set is the footprint: both engines
    // must produce identical fault counts, byte counts, and histograms.
    let t = scale();
    let det = SimulationBuilder::trace(t.clone()).run();
    let par = SimulationBuilder::trace(t)
        .engine(EngineMode::Parallel(4))
        .run();
    let faults = |r: &cmcp::RunReport| r.per_core.iter().map(|c| c.page_faults).sum::<u64>();
    assert_eq!(faults(&det), faults(&par));
    assert_eq!(det.global.evictions, par.global.evictions);
    assert_eq!(det.dma_bytes, par.dma_bytes);
    assert_eq!(det.sharing_histogram, par.sharing_histogram);
}

#[test]
fn constrained_runs_agree_statistically() {
    // Under eviction pressure the engines may diverge in exact victim
    // choices (different interleavings) but aggregate behaviour must be
    // close: fault counts within 25%, runtime within 40%.
    let t = scale();
    let run = |mode| {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Fifo)
            .memory_ratio(0.5)
            .engine(mode)
            .run()
    };
    let det = run(EngineMode::Deterministic);
    let par = run(EngineMode::Parallel(4));
    let f_det: u64 = det.per_core.iter().map(|c| c.page_faults).sum();
    let f_par: u64 = par.per_core.iter().map(|c| c.page_faults).sum();
    let ratio = f_det as f64 / f_par as f64;
    assert!(
        (0.75..=1.33).contains(&ratio),
        "fault totals must be close: {f_det} vs {f_par}"
    );
    let rt = det.runtime_cycles as f64 / par.runtime_cycles as f64;
    assert!(
        (0.6..=1.67).contains(&rt),
        "runtimes must be close: {rt:.2}"
    );
}

#[test]
fn parallel_engine_handles_every_policy() {
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in ALL_POLICIES {
        let r = SimulationBuilder::trace(t.clone())
            .policy(policy)
            .memory_ratio(0.6)
            .engine(EngineMode::Parallel(3))
            .run();
        assert!(r.runtime_cycles > 0, "{}", policy.label());
        let touches: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
        assert_eq!(
            touches,
            t.total_touches(),
            "{}: every touch executed",
            policy.label()
        );
    }
}

#[test]
fn parallel_engine_handles_regular_tables() {
    let t = synthetic::private_stream(4, 32, 3);
    let r = SimulationBuilder::trace(t)
        .scheme(SchemeChoice::Regular)
        .memory_ratio(0.5)
        .engine(EngineMode::Parallel(0)) // auto thread count
        .run();
    assert!(r.global.evictions > 0);
    assert!(
        r.sharing_histogram.is_none(),
        "regular tables have no histogram"
    );
}

/// Random ample-memory traces: small footprints, short runtimes (well
/// under the scan period), same barrier count on every core — so no
/// evictions happen and the functional aggregates are interleaving-free.
fn ample_trace_strategy() -> impl Strategy<Value = Trace> {
    (
        2usize..6,
        prop::collection::vec((0u64..96, 1u32..12, any::<bool>()), 1..6),
    )
        .prop_map(|(cores, chunks)| {
            let mut t = Trace::new(cores, "equiv-prop");
            for c in 0..cores {
                for (i, &(start, pages, write)) in chunks.iter().enumerate() {
                    let s = start + (c as u64 * 17 + i as u64 * 5) % 64;
                    t.cores[c].ops.push(Op::Stream {
                        start: VirtPage(s),
                        pages,
                        write,
                        work_per_page: 2,
                    });
                }
                t.cores[c].ops.push(Op::Barrier);
            }
            t
        })
}

/// The functional aggregates both engines must agree on exactly when
/// memory is ample: faults, evictions, shootdown traffic, DMA bytes.
fn functional_totals(r: &RunReport) -> (u64, u64, u64, u64, (u64, u64)) {
    (
        r.per_core.iter().map(|c| c.page_faults).sum::<u64>(),
        r.global.evictions,
        r.per_core
            .iter()
            .map(|c| c.remote_inv_received)
            .sum::<u64>(),
        r.per_core.iter().map(|c| c.remote_inv_sent).sum::<u64>(),
        r.dma_bytes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any ample-memory trace and any policy, the parallel engine's
    /// functional aggregates exactly match the deterministic engine's,
    /// and two parallel runs agree with each other (the totals are
    /// schedule-independent, not merely close).
    #[test]
    fn parallel_aggregates_match_deterministic(
        trace in ample_trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Clock),
            Just(PolicyKind::Lfu),
            Just(PolicyKind::Random),
            Just(PolicyKind::Cmcp { p: 0.5 }),
            Just(PolicyKind::AdaptiveCmcp),
        ],
    ) {
        let run = |mode| {
            SimulationBuilder::trace(trace.clone())
                .policy(policy)
                .memory_ratio(1.5)
                .engine(mode)
                .run()
        };
        let det = run(EngineMode::Deterministic);
        let par_a = run(EngineMode::Parallel(4));
        let par_b = run(EngineMode::Parallel(4));
        prop_assert_eq!(det.global.evictions, 0, "ample memory must not evict");
        prop_assert_eq!(functional_totals(&det), functional_totals(&par_a));
        prop_assert_eq!(functional_totals(&par_a), functional_totals(&par_b));
        // Conservation: every touch executed, faults bounded by touches.
        let touches: u64 = par_a.per_core.iter().map(|c| c.dtlb_accesses).sum();
        prop_assert_eq!(touches, trace.total_touches());
        let faults: u64 = par_a.per_core.iter().map(|c| c.page_faults).sum();
        prop_assert!(faults <= touches);
    }
}

#[test]
fn single_threaded_parallel_is_deterministic() {
    let t = scale();
    let run = || {
        let r = SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.75 })
            .memory_ratio(0.5)
            .engine(EngineMode::Parallel(1))
            .run();
        (r.runtime_cycles, r.global.evictions)
    };
    assert_eq!(run(), run());
}

#[test]
fn eviction_pressure_agrees_within_tolerance_for_every_policy() {
    // The statistical-equivalence guarantee was previously pinned only
    // for FIFO. Under eviction pressure the engines may pick different
    // victims (batching and interleaving differ), so exact equality is
    // impossible — but for EVERY policy the aggregates must stay within
    // bounded tolerance, and the quantities batching cannot perturb
    // (touch conservation, pressure actually biting) must hold exactly.
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in ALL_POLICIES {
        let run = |mode| {
            SimulationBuilder::trace(t.clone())
                .policy(policy)
                .memory_ratio(0.5)
                .engine(mode)
                .run()
        };
        let det = run(EngineMode::Deterministic);
        let par = run(EngineMode::Parallel(4));
        // Exact legs first.
        for (name, r) in [("det", &det), ("par", &par)] {
            assert!(
                r.global.evictions > 0,
                "{}/{name}: ratio 0.5 must force evictions",
                policy.label()
            );
            let touches: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
            assert_eq!(
                touches,
                t.total_touches(),
                "{}/{name}: every touch executed",
                policy.label()
            );
        }
        // Bounded tolerance on the interleaving-sensitive aggregates.
        let f_det: u64 = det.per_core.iter().map(|c| c.page_faults).sum();
        let f_par: u64 = par.per_core.iter().map(|c| c.page_faults).sum();
        let faults = f_det as f64 / f_par as f64;
        assert!(
            (0.6..=1.67).contains(&faults),
            "{}: fault totals too far apart: {f_det} vs {f_par}",
            policy.label()
        );
        let ev = det.global.evictions as f64 / par.global.evictions as f64;
        assert!(
            (0.5..=2.0).contains(&ev),
            "{}: eviction totals too far apart: {} vs {}",
            policy.label(),
            det.global.evictions,
            par.global.evictions
        );
        // Runtime compounds victim divergence (a different victim shifts
        // every later fault's DMA waits), so its band is wider than the
        // count aggregates': 3x either way, vs the exact-equality leg
        // below that pins it bit-for-bit where batching cannot bite.
        let rt = det.runtime_cycles as f64 / par.runtime_cycles as f64;
        assert!(
            (0.33..=3.0).contains(&rt),
            "{}: runtimes too far apart: {rt:.2}",
            policy.label()
        );
    }
}

#[test]
fn single_threaded_parallel_is_bit_identical_for_every_policy_under_pressure() {
    // Where batching cannot bite — one worker thread — repeat runs must
    // agree exactly, per policy, even under eviction pressure. This is
    // the exact-equality leg of the pressure matrix above.
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in ALL_POLICIES {
        let run = || {
            let r = SimulationBuilder::trace(t.clone())
                .policy(policy)
                .memory_ratio(0.5)
                .engine(EngineMode::Parallel(1))
                .run();
            (r.runtime_cycles, functional_totals(&r))
        };
        assert_eq!(
            run(),
            run(),
            "{}: par(1) must be deterministic",
            policy.label()
        );
    }
}
