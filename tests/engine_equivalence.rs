//! Cross-engine tests: the deterministic and parallel engines must agree
//! on everything functional (what faulted, what moved, what is resident)
//! even though their timing interleavings differ.

use cmcp::workloads::scale::{scale_trace, ScaleConfig};
use cmcp::workloads::synthetic;
use cmcp::{EngineMode, PolicyKind, SchemeChoice, SimulationBuilder, Trace};

fn scale() -> Trace {
    scale_trace(
        8,
        &ScaleConfig {
            nx: 256,
            ny: 64,
            fields: 3,
            steps: 3,
        },
    )
}

#[test]
fn unconstrained_runs_agree_exactly() {
    // Without evictions the fault set is the footprint: both engines
    // must produce identical fault counts, byte counts, and histograms.
    let t = scale();
    let det = SimulationBuilder::trace(t.clone()).run();
    let par = SimulationBuilder::trace(t)
        .engine(EngineMode::Parallel(4))
        .run();
    let faults = |r: &cmcp::RunReport| r.per_core.iter().map(|c| c.page_faults).sum::<u64>();
    assert_eq!(faults(&det), faults(&par));
    assert_eq!(det.global.evictions, par.global.evictions);
    assert_eq!(det.dma_bytes, par.dma_bytes);
    assert_eq!(det.sharing_histogram, par.sharing_histogram);
}

#[test]
fn constrained_runs_agree_statistically() {
    // Under eviction pressure the engines may diverge in exact victim
    // choices (different interleavings) but aggregate behaviour must be
    // close: fault counts within 25%, runtime within 40%.
    let t = scale();
    let run = |mode| {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Fifo)
            .memory_ratio(0.5)
            .engine(mode)
            .run()
    };
    let det = run(EngineMode::Deterministic);
    let par = run(EngineMode::Parallel(4));
    let f_det: u64 = det.per_core.iter().map(|c| c.page_faults).sum();
    let f_par: u64 = par.per_core.iter().map(|c| c.page_faults).sum();
    let ratio = f_det as f64 / f_par as f64;
    assert!(
        (0.75..=1.33).contains(&ratio),
        "fault totals must be close: {f_det} vs {f_par}"
    );
    let rt = det.runtime_cycles as f64 / par.runtime_cycles as f64;
    assert!(
        (0.6..=1.67).contains(&rt),
        "runtimes must be close: {rt:.2}"
    );
}

#[test]
fn parallel_engine_handles_every_policy() {
    let t = synthetic::shared_hot(6, 32, 64, 4);
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Lfu,
        PolicyKind::Random,
        PolicyKind::Cmcp { p: 0.5 },
        PolicyKind::AdaptiveCmcp,
    ] {
        let r = SimulationBuilder::trace(t.clone())
            .policy(policy)
            .memory_ratio(0.6)
            .engine(EngineMode::Parallel(3))
            .run();
        assert!(r.runtime_cycles > 0, "{}", policy.label());
        let touches: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
        assert_eq!(
            touches,
            t.total_touches(),
            "{}: every touch executed",
            policy.label()
        );
    }
}

#[test]
fn parallel_engine_handles_regular_tables() {
    let t = synthetic::private_stream(4, 32, 3);
    let r = SimulationBuilder::trace(t)
        .scheme(SchemeChoice::Regular)
        .memory_ratio(0.5)
        .engine(EngineMode::Parallel(0)) // auto thread count
        .run();
    assert!(r.global.evictions > 0);
    assert!(
        r.sharing_histogram.is_none(),
        "regular tables have no histogram"
    );
}

#[test]
fn single_threaded_parallel_is_deterministic() {
    let t = scale();
    let run = || {
        let r = SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.75 })
            .memory_ratio(0.5)
            .engine(EngineMode::Parallel(1))
            .run();
        (r.runtime_cycles, r.global.evictions)
    };
    assert_eq!(run(), run());
}
