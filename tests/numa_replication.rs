//! NUMA replica-coherence acceptance suite: drives the kernel directly
//! on multi-node topologies and audits the replication ledger against
//! invariants that hold by construction of the protocol.
//!
//! * **Replica subset**: a block's replica mask never names a node
//!   without a PSPT mapping core — PSPT's exact mapping sets are what
//!   make replica shootdowns precise, so at quiescence every replica
//!   bit must be covered by the mapping-node mask (equality would be
//!   too strong only across a PSPT rebuild boundary, where both sides
//!   are torn down together).
//! * **Invalidation conservation**: every replica ever created is
//!   either still resident or was counted exactly once in
//!   `replica_invalidations` (evict teardown or rebuild drop). Replica
//!   creations are observable as inserts + counted cross-node syncs,
//!   plus at most one *uncounted* local re-add per spilled insert (the
//!   home node's first map of a block that spilled to it), which
//!   bounds the balance from both sides.
//! * **Frame conservation per node**: node budgets are never
//!   overdrawn and the per-node used counts sum to the resident block
//!   count — frames are charged to exactly one home each.
//! * **Thread invariance**: multi-node reports are Debug-identical at
//!   1/2/4/8 worker threads, replication on and off — the NUMA ledger
//!   lives behind the sequential reconciliation tail (DESIGN.md §15).

use cmcp::arch::VirtPage;
use cmcp::kernel::{KernelConfig, SchemeChoice, Vmm};
use cmcp::workloads::synthetic;
use cmcp::{CostModel, NumaConfig, PageSize, PolicyKind, SimulationBuilder, Trace};

/// Builds a PSPT+CMCP kernel on `topology` with `device_blocks` frames.
fn numa_vmm(
    trace: &Trace,
    topology: &str,
    replicate: bool,
    device_blocks: usize,
    rebuild_period: u64,
) -> Vmm {
    let mut cost = CostModel {
        numa: NumaConfig::parse(topology).expect("preset parses"),
        ..Default::default()
    };
    cost.numa.replicate = replicate;
    Vmm::new(KernelConfig {
        cores: trace.cores.len(),
        block_size: PageSize::K4,
        device_blocks,
        scheme: SchemeChoice::Pspt,
        policy: PolicyKind::Cmcp { p: 0.5 },
        cost,
        scan_budget: 0,
        pspt_rebuild_period: rebuild_period,
        fault_plan: None,
        adaptive: false,
    })
}

/// Every page any core ever touched — the probe universe for the
/// block-state oracles.
fn touched_pages(trace: &Trace) -> Vec<VirtPage> {
    let mut pages: Vec<u64> = trace
        .cores
        .iter()
        .flat_map(|c| c.page_set())
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    pages.sort_unstable();
    pages.into_iter().map(VirtPage).collect()
}

/// A shared-hot workload under real eviction pressure (60 % of the
/// footprint), which exercises inserts, cross-node syncs, spills,
/// migrations, and evict teardowns in one run.
fn pressured(topology: &str, replicate: bool, rebuild_period: u64) -> (Trace, Vmm) {
    let trace = synthetic::shared_hot(8, 48, 24, 4);
    let blocks = (trace.declared_blocks(PageSize::K4) * 3) / 5;
    let vmm = numa_vmm(&trace, topology, replicate, blocks, rebuild_period);
    (trace, vmm)
}

#[test]
fn replica_sets_are_subsets_of_pspt_mapping_node_sets() {
    for rebuild_period in [0, 200_000] {
        let (trace, vmm) = pressured("4node", true, rebuild_period);
        cmcp::sim::run_parallel(&vmm, &trace, 1);
        let mut resident = 0usize;
        for head in touched_pages(&trace) {
            if let Some(st) = vmm.numa_block_state(head) {
                resident += 1;
                let mapped = vmm.mapping_node_mask(head);
                assert_eq!(
                    st.mask & !mapped,
                    0,
                    "{head}: replica mask {:#b} names nodes outside the \
                     mapping-node set {mapped:#b} (rebuild period {rebuild_period})",
                    st.mask,
                );
            }
        }
        assert!(resident > 0, "oracle never saw a resident block");
    }
}

#[test]
fn every_replica_drop_is_counted_exactly_once() {
    use std::sync::atomic::Ordering::Relaxed;
    let (trace, vmm) = pressured("4node", true, 0);
    cmcp::sim::run_parallel(&vmm, &trace, 1);
    let books = vmm.numa_books().expect("multi-node run has books");
    let g = vmm.global_stats();
    let evictions = g.evictions.load(Relaxed);
    let syncs = g.replica_syncs.load(Relaxed);
    let invalidations = g.replica_invalidations.load(Relaxed);
    let spills = g.remote_spills.load(Relaxed);
    let resident_entries: u64 = books.used().iter().sum();
    let resident_replicas: u64 = touched_pages(&trace)
        .iter()
        .filter_map(|&h| vmm.numa_block_state(h))
        .map(|st| u64::from(st.mask.count_ones()))
        .sum();
    assert!(evictions > 0, "pressure run must evict");
    assert!(syncs > 0, "shared pages must cross nodes");
    // Creations: one replica per insert (the faulting node's bit) plus
    // one per counted cross-node sync, plus 0..=1 uncounted local
    // re-add per spilled insert. Drops: one invalidation per replica
    // torn down. Balance: creations == drops + still-resident.
    let created_floor = (evictions + resident_entries) + syncs;
    let accounted = invalidations + resident_replicas;
    assert!(
        accounted >= created_floor && accounted <= created_floor + spills,
        "replica conservation violated: {accounted} accounted \
         (invalidations {invalidations} + resident {resident_replicas}) vs \
         {created_floor} created (+ at most {spills} spill re-adds)"
    );
}

#[test]
fn node_budgets_are_never_overdrawn_and_sum_to_residency() {
    for replicate in [true, false] {
        let (trace, vmm) = pressured("4node", replicate, 0);
        cmcp::sim::run_parallel(&vmm, &trace, 1);
        let books = vmm.numa_books().expect("multi-node run has books");
        let used = books.used();
        for (n, (&u, &cap)) in used.iter().zip(books.capacity()).enumerate() {
            assert!(u <= cap, "node {n} overdrawn: {u} > {cap}");
        }
        assert_eq!(
            used.iter().sum::<u64>(),
            vmm.resident_blocks() as u64,
            "per-node used counts must sum to the resident block count"
        );
    }
}

#[test]
fn balanced_private_streams_neither_spill_nor_invalidate() {
    // Symmetric private working sets on a symmetric topology at ratio
    // 1.0: no evictions, no spills — so the conservation law collapses
    // to equality with zero invalidations.
    use std::sync::atomic::Ordering::Relaxed;
    let trace = synthetic::private_stream(8, 16, 3);
    let blocks = trace.declared_blocks(PageSize::K4);
    let vmm = numa_vmm(&trace, "2node", true, blocks, 0);
    cmcp::sim::run_parallel(&vmm, &trace, 1);
    let g = vmm.global_stats();
    assert_eq!(g.evictions.load(Relaxed), 0);
    assert_eq!(g.remote_spills.load(Relaxed), 0);
    assert_eq!(g.replica_invalidations.load(Relaxed), 0);
    let resident_replicas: u64 = touched_pages(&trace)
        .iter()
        .filter_map(|&h| vmm.numa_block_state(h))
        .map(|st| u64::from(st.mask.count_ones()))
        .sum();
    let books = vmm.numa_books().unwrap();
    let inserts: u64 = books.used().iter().sum();
    let syncs = g.replica_syncs.load(Relaxed);
    assert_eq!(
        resident_replicas,
        inserts + syncs,
        "with no drops, every created replica is still resident"
    );
}

#[test]
fn multi_node_reports_are_thread_count_invariant() {
    for replicate in [true, false] {
        let run = |threads: usize| {
            let trace = synthetic::shared_hot(8, 48, 24, 4);
            let blocks = (trace.declared_blocks(PageSize::K4) * 3) / 5;
            let vmm = numa_vmm(&trace, "4node", replicate, blocks, 0);
            format!("{:?}", cmcp::sim::run_parallel(&vmm, &trace, threads))
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                base,
                run(threads),
                "multi-node report diverged at {threads} threads (replicate={replicate})"
            );
        }
    }
}

#[test]
fn single_node_runs_never_construct_the_ledger() {
    let trace = synthetic::shared_hot(4, 16, 8, 2);
    let blocks = trace.declared_blocks(PageSize::K4) / 2;
    let vmm = numa_vmm(&trace, "1node", true, blocks, 0);
    let report = cmcp::sim::run_parallel(&vmm, &trace, 1);
    assert!(
        vmm.numa_books().is_none(),
        "single-node runs take the legacy path"
    );
    assert!(
        report.numa.is_none(),
        "no numa section on single-node reports"
    );
}

#[test]
fn replication_off_still_tracks_homes_but_grows_no_masks() {
    let (trace, vmm) = pressured("4node", false, 0);
    cmcp::sim::run_parallel(&vmm, &trace, 1);
    let mut saw_block = false;
    for head in touched_pages(&trace) {
        if let Some(st) = vmm.numa_block_state(head) {
            saw_block = true;
            assert!(
                st.mask.count_ones() <= 1,
                "{head}: replication off must never grow the replica set \
                 beyond the insert bit (mask {:#b})",
                st.mask
            );
        }
    }
    assert!(saw_block);
}

#[test]
fn undersized_link_latencies_are_rejected_at_validation_time() {
    // The deterministic engine's epoch window is the global minimum
    // cross-core latency; a cross-node link faster than the IPI window
    // would silently shrink it, so Vmm construction must refuse.
    let cost = CostModel::default();
    let window = cost.ipi_send + cost.ipi_handle;
    let spec = format!("a:1024@0/0;b:1024@{}/0", window.saturating_sub(1));
    let cfg = NumaConfig::parse(&spec).expect("grammar accepts the spec");
    assert!(
        cfg.check_window(window).is_err(),
        "undercutting link must fail"
    );
    let ok = NumaConfig::parse("2node").unwrap();
    assert!(ok.check_window(window).is_ok(), "presets clear the window");

    let result = std::panic::catch_unwind(|| {
        let trace = synthetic::private_stream(2, 4, 1);
        let cost = CostModel {
            numa: cfg,
            ..Default::default()
        };
        Vmm::new(KernelConfig {
            cores: 2,
            block_size: PageSize::K4,
            device_blocks: trace.declared_blocks(PageSize::K4),
            scheme: SchemeChoice::Pspt,
            policy: PolicyKind::Fifo,
            cost,
            scan_budget: 0,
            pspt_rebuild_period: 0,
            fault_plan: None,
            adaptive: false,
        })
    });
    assert!(
        result.is_err(),
        "Vmm construction must panic on the undercut"
    );
}

#[test]
fn builder_multi_node_runs_expose_the_numa_report() {
    let report = SimulationBuilder::workload(cmcp::Workload::Cg(cmcp::WorkloadClass::B))
        .cores(8)
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .numa(NumaConfig::parse("2node").unwrap())
        .memory_ratio(0.5)
        .run();
    let numa = report
        .numa
        .expect("multi-node report carries a numa section");
    assert_eq!(numa.nodes.len(), 2);
    assert!(numa.replica_syncs > 0, "CG's shared matrix crosses nodes");
}
