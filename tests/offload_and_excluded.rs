//! Integration tests for the IHK-style substrate extensions: syscall
//! offloading through traces, the excluded workloads' characteristics,
//! and PSPT rebuilding end-to-end.

use cmcp::workloads::ep::{ep_trace, EpConfig};
use cmcp::workloads::mg::{mg_trace, MgConfig};
use cmcp::{PolicyKind, SimulationBuilder, Workload, WorkloadClass};

/// SCALE's history writes go through the offload engine.
#[test]
fn scale_offloads_history_writes() {
    let w = Workload::Scale(WorkloadClass::B);
    let trace = w.trace(4);
    let has_syscalls = trace.cores.iter().any(|c| {
        c.ops
            .iter()
            .any(|op| matches!(op, cmcp::sim::Op::Syscall { .. }))
    });
    assert!(has_syscalls, "SCALE must emit offloaded I/O");
    // Small run to exercise the path end to end (use a trimmed config).
    let small = cmcp::workloads::scale::scale_trace(
        4,
        &cmcp::workloads::scale::ScaleConfig {
            nx: 256,
            ny: 64,
            fields: 2,
            steps: 4,
        },
    );
    let r = SimulationBuilder::trace(small.clone()).run();
    assert!(r.runtime_cycles > 0);
    // The offload engine is not surfaced in RunReport; assert indirectly:
    // an identical trace with the syscalls stripped finishes faster.
    let mut stripped = small.clone();
    for c in &mut stripped.cores {
        c.ops
            .retain(|op| !matches!(op, cmcp::sim::Op::Syscall { .. }));
    }
    let r2 = SimulationBuilder::trace(stripped).run();
    assert!(
        r.runtime_cycles > r2.runtime_cycles,
        "offloaded I/O must cost time: {} vs {}",
        r.runtime_cycles,
        r2.runtime_cycles
    );
}

/// EP is immune to the memory constraints that crush the real workloads
/// (the paper's reason to exclude it): its *absolute* footprint is so
/// small that a device sized to devastate cg.B still holds all of EP.
#[test]
fn ep_is_immune_to_memory_pressure() {
    let cg = Workload::Cg(WorkloadClass::B).trace(8);
    // Half of CG's declared requirement — a crushing constraint for CG…
    let device_blocks = cg.declared_blocks(cmcp::PageSize::K4) / 2;
    let t = ep_trace(8, &EpConfig { m: 14, seed: 2 });
    assert!(
        t.footprint_pages() < device_blocks,
        "EP fits with room to spare"
    );
    let full = SimulationBuilder::trace(t.clone()).run();
    let constrained = SimulationBuilder::trace(t)
        .device_blocks(device_blocks)
        .run();
    // Identical fault counts: the working set always fits.
    let f = |r: &cmcp::RunReport| r.per_core.iter().map(|c| c.page_faults).sum::<u64>();
    assert_eq!(f(&full), f(&constrained));
    assert_eq!(constrained.global.evictions, 0);
}

/// MG under the same constraint collapses worse than CG — the paper's
/// out-of-core-infeasibility argument.
#[test]
fn mg_collapses_harder_than_cg_under_pressure() {
    let cores = 8;
    let rel = |trace: cmcp::Trace| {
        let base = SimulationBuilder::trace(trace.clone())
            .memory_ratio(10.0)
            .run();
        let half = SimulationBuilder::trace(trace)
            .policy(PolicyKind::Fifo)
            .memory_ratio(0.5)
            .run();
        base.runtime_cycles as f64 / half.runtime_cycles as f64
    };
    let mg = rel(mg_trace(cores, &MgConfig { n: 32, cycles: 2 }));
    let cg = rel(Workload::Cg(WorkloadClass::B).trace(cores));
    assert!(
        mg < cg,
        "MG ({mg:.2}) must lose more than CG ({cg:.2}) at 50% memory"
    );
}

/// PSPT rebuilding refreshes the sharing histogram.
#[test]
fn rebuild_resets_core_map_counts() {
    use cmcp::arch::{CoreId, VirtPage};
    use cmcp::kernel::{KernelConfig, Vmm};
    let v = Vmm::new(KernelConfig::new(4, 16));
    for c in 0..4u16 {
        v.handle_fault(CoreId(c), VirtPage(0), false);
    }
    assert_eq!(
        v.sharing_histogram().unwrap()[3],
        1,
        "block mapped by 4 cores"
    );
    let torn = v.rebuild_pspt().unwrap();
    assert_eq!(torn, 1);
    let hist = v.sharing_histogram().unwrap();
    assert_eq!(
        hist.iter().sum::<usize>(),
        0,
        "no mappings survive the rebuild"
    );
    // One core refaults: count re-forms at 1, and the frame was reused
    // (no new allocation, no DMA).
    v.handle_fault(CoreId(2), VirtPage(0), false);
    assert_eq!(v.sharing_histogram().unwrap()[0], 1);
    assert_eq!(v.dma().bytes_in(), 0);
    assert_eq!(v.global_stats().snapshot().evictions, 0);
}

/// A rebuild must not lose write-back debts, and evicting a rebuilt
/// (resident but unmapped) block must not panic.
#[test]
fn rebuild_preserves_dirty_writeback_debt() {
    use cmcp::arch::{CoreId, VirtPage};
    use cmcp::kernel::{KernelConfig, Vmm};
    let v = Vmm::new(KernelConfig::new(1, 2));
    v.handle_fault(CoreId(0), VirtPage(0), true);
    v.mark_accessed(CoreId(0), VirtPage(0), true); // dirty
    v.handle_fault(CoreId(0), VirtPage(1), false);
    v.rebuild_pspt().unwrap();
    // Evict the rebuilt dirty block (FIFO head = block 0): the write-back
    // must still happen even though its PTEs are gone.
    v.handle_fault(CoreId(0), VirtPage(2), false);
    assert_eq!(v.global_stats().snapshot().writebacks, 1);
    assert_eq!(v.dma().bytes_out(), 4096);
}

/// Rebuilding under regular tables is a no-op.
#[test]
fn rebuild_is_noop_for_regular_tables() {
    use cmcp::arch::{CoreId, VirtPage};
    use cmcp::kernel::{KernelConfig, SchemeChoice, Vmm};
    let v = Vmm::new(KernelConfig::new(2, 4).with_scheme(SchemeChoice::Regular));
    v.handle_fault(CoreId(0), VirtPage(0), false);
    assert!(v.rebuild_pspt().is_none());
    assert!(
        v.translate(CoreId(0), VirtPage(0)).is_some(),
        "mapping untouched"
    );
}
