//! Property-based tests: every replacement policy must uphold the
//! kernel's contract under arbitrary interleavings of inserts, map-count
//! changes and evictions.

use std::collections::HashSet;

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::policies::{
    AccessBitOracle, CmcpConfig, CmcpPolicy, NullOracle, PolicyKind, ReplacementPolicy,
};

/// A random but *valid* event script: inserts of fresh blocks, count
/// changes for resident blocks, and policy-chosen evictions.
#[derive(Debug, Clone)]
enum Event {
    Insert { block: u64, count: usize },
    CountChange { pick: usize, count: usize },
    Evict,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u64..256, 1usize..32).prop_map(|(block, count)| Event::Insert { block, count }),
        (any::<usize>(), 1usize..32).prop_map(|(pick, count)| Event::CountChange { pick, count }),
        Just(Event::Evict),
    ]
}

/// An oracle with pseudo-random answers (deterministic per call index),
/// exercising LRU/CLOCK/LFU branches.
struct FlakyOracle {
    calls: u64,
}

impl AccessBitOracle for FlakyOracle {
    fn test_and_clear(&mut self, block: VirtPage) -> bool {
        self.calls += 1;
        (block.0 ^ self.calls).wrapping_mul(0x9e3779b97f4a7c15) >> 63 == 1
    }
}

fn run_script(kind: PolicyKind, events: &[Event]) {
    let mut policy = kind.build(64);
    let mut resident: Vec<u64> = Vec::new();
    let mut resident_set: HashSet<u64> = HashSet::new();
    let mut oracle = FlakyOracle { calls: 0 };
    for ev in events {
        match ev {
            Event::Insert { block, count } => {
                if resident_set.insert(*block) {
                    resident.push(*block);
                    policy.on_insert(VirtPage(*block), *count);
                }
            }
            Event::CountChange { pick, count } => {
                if !resident.is_empty() {
                    let block = resident[pick % resident.len()];
                    policy.on_map_count_change(VirtPage(block), *count);
                }
            }
            Event::Evict => {
                let victim = policy.select_victim(&mut oracle);
                match victim {
                    Some(v) => {
                        // Contract: the victim is a resident block.
                        assert!(
                            resident_set.contains(&v.0),
                            "{}: victim {v} is not resident",
                            policy.name()
                        );
                        assert!(policy.contains(v));
                        policy.on_evict(v);
                        assert!(!policy.contains(v));
                        resident_set.remove(&v.0);
                        resident.retain(|&b| b != v.0);
                    }
                    None => {
                        assert!(
                            resident.is_empty(),
                            "{}: no victim offered but {} blocks resident",
                            policy.name(),
                            resident.len()
                        );
                    }
                }
            }
        }
        // Invariant: the policy tracks exactly the resident set.
        assert_eq!(
            policy.resident(),
            resident.len(),
            "{} desynced",
            policy.name()
        );
        for &b in &resident {
            assert!(
                policy.contains(VirtPage(b)),
                "{} lost block {b}",
                policy.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Fifo, &events);
    }

    #[test]
    fn lru_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Lru, &events);
    }

    #[test]
    fn clock_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Clock, &events);
    }

    #[test]
    fn lfu_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Lfu, &events);
    }

    #[test]
    fn random_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Random, &events);
    }

    #[test]
    fn cmcp_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::Cmcp { p: 0.5 }, &events);
    }

    #[test]
    fn adaptive_cmcp_upholds_contract(events in prop::collection::vec(event_strategy(), 1..200)) {
        run_script(PolicyKind::AdaptiveCmcp, &events);
    }

    /// CMCP-specific invariant: the priority group never exceeds its
    /// target (⌊p·capacity⌋) and the two groups partition the residents.
    #[test]
    fn cmcp_priority_group_bounded(
        events in prop::collection::vec(event_strategy(), 1..300),
        p in 0.0f64..=1.0,
    ) {
        let capacity = 48usize;
        let mut policy = CmcpPolicy::new(
            CmcpConfig { p, aging_period: 16, aging_batch: 1 },
            capacity,
        );
        let target = (p * capacity as f64).floor() as usize;
        let mut resident: Vec<u64> = Vec::new();
        for ev in &events {
            match ev {
                Event::Insert { block, count } => {
                    if !resident.contains(block) {
                        resident.push(*block);
                        policy.on_insert(VirtPage(*block), *count);
                    }
                }
                Event::CountChange { pick, count } => {
                    if !resident.is_empty() {
                        let b = resident[pick % resident.len()];
                        policy.on_map_count_change(VirtPage(b), *count);
                    }
                }
                Event::Evict => {
                    if let Some(v) = policy.select_victim(&mut NullOracle) {
                        policy.on_evict(v);
                        resident.retain(|&b| b != v.0);
                    }
                }
            }
            prop_assert!(policy.priority_len() <= target,
                "priority group {} exceeds target {target}", policy.priority_len());
            prop_assert_eq!(policy.priority_len() + policy.fifo_len(), resident.len());
        }
    }

    /// FIFO is exactly first-in-first-out under pure insert/evict loads.
    #[test]
    fn fifo_order_is_exact(blocks in prop::collection::hash_set(0u64..1000, 1..64)) {
        let mut policy = PolicyKind::Fifo.build(blocks.len());
        let mut order: Vec<u64> = blocks.into_iter().collect();
        order.sort_unstable();
        for &b in &order {
            policy.on_insert(VirtPage(b), 1);
        }
        for &b in &order {
            let v = policy.select_victim(&mut NullOracle).unwrap();
            prop_assert_eq!(v.0, b);
            policy.on_evict(v);
        }
    }
}
