//! End-to-end tests of the paper's headline claims, at miniature scale
//! so they run in seconds. Each test exercises the full stack: workload
//! trace generation → deterministic engine → kernel fault path → page
//! tables → TLBs → policies.

use cmcp::workloads::cg::{cg_trace, CgConfig};
use cmcp::workloads::scale::{scale_trace, ScaleConfig};
use cmcp::{PageSize, PolicyKind, RunReport, SchemeChoice, SimulationBuilder};

const CORES: usize = 16;

fn small_cg() -> cmcp::Trace {
    cg_trace(
        CORES,
        &CgConfig {
            n: 4096,
            nnz_per_row: 12,
            iterations: 3,
            seed: 77,
        },
    )
}

fn small_scale() -> cmcp::Trace {
    scale_trace(
        CORES,
        &ScaleConfig {
            nx: 512,
            ny: 128,
            fields: 4,
            steps: 4,
        },
    )
}

fn run(trace: &cmcp::Trace, scheme: SchemeChoice, policy: PolicyKind, ratio: f64) -> RunReport {
    SimulationBuilder::trace(trace.clone())
        .scheme(scheme)
        .policy(policy)
        .memory_ratio(ratio)
        .run()
}

/// §5.4: regular page tables cost far more than PSPT under frequent
/// concurrent page faults (broadcast shootdowns + one big lock).
#[test]
fn pspt_outperforms_regular_tables_under_pressure() {
    let t = small_cg();
    let reg = run(&t, SchemeChoice::Regular, PolicyKind::Fifo, 0.4);
    let pspt = run(&t, SchemeChoice::Pspt, PolicyKind::Fifo, 0.4);
    assert!(
        pspt.runtime_cycles * 3 < reg.runtime_cycles * 2,
        "PSPT ({}) must beat regular tables ({}) by a wide margin",
        pspt.runtime_cycles,
        reg.runtime_cycles
    );
    // And the mechanism is the shootdown traffic:
    assert!(
        reg.avg_remote_invalidations() > 4.0 * pspt.avg_remote_invalidations(),
        "regular PT broadcasts: {} vs {}",
        reg.avg_remote_invalidations(),
        pspt.avg_remote_invalidations()
    );
}

/// §5.5: LRU reduces page faults on CG but *increases* remote TLB
/// invalidations and ends up slower than FIFO.
#[test]
fn lru_loses_to_fifo_despite_fewer_faults() {
    let t = small_cg();
    let fifo = run(&t, SchemeChoice::Pspt, PolicyKind::Fifo, 0.37);
    let lru = run(&t, SchemeChoice::Pspt, PolicyKind::Lru, 0.37);
    assert!(
        lru.avg_page_faults() < fifo.avg_page_faults(),
        "LRU must reduce CG faults: {} vs {}",
        lru.avg_page_faults(),
        fifo.avg_page_faults()
    );
    assert!(
        lru.avg_remote_invalidations() > 2.0 * fifo.avg_remote_invalidations(),
        "LRU must multiply shootdowns: {} vs {}",
        lru.avg_remote_invalidations(),
        fifo.avg_remote_invalidations()
    );
    assert!(
        lru.runtime_cycles > fifo.runtime_cycles,
        "and still lose on runtime: {} vs {}",
        lru.runtime_cycles,
        fifo.runtime_cycles
    );
}

/// The headline: CMCP outperforms FIFO and LRU, with no statistics
/// shootdowns at all.
#[test]
fn cmcp_beats_fifo_and_lru_on_cg() {
    let t = small_cg();
    let fifo = run(&t, SchemeChoice::Pspt, PolicyKind::Fifo, 0.37);
    let lru = run(&t, SchemeChoice::Pspt, PolicyKind::Lru, 0.37);
    let cmcp = run(&t, SchemeChoice::Pspt, PolicyKind::Cmcp { p: 0.75 }, 0.37);
    assert!(cmcp.runtime_cycles < fifo.runtime_cycles, "CMCP beats FIFO");
    assert!(cmcp.runtime_cycles < lru.runtime_cycles, "CMCP beats LRU");
    assert!(
        cmcp.avg_remote_invalidations() <= fifo.avg_remote_invalidations(),
        "CMCP adds no statistics shootdowns"
    );
    assert_eq!(cmcp.global.scan_ticks, 0, "no scan timer for CMCP");
    if lru.runtime_cycles > 2 * lru.per_core.len() as u64 * 10_530_000 {
        assert!(lru.global.scan_ticks > 0, "LRU runs the 10ms scan timer");
    }
}

/// §5.2 / Figure 6: the majority of pages are mapped by only a few cores.
#[test]
fn sharing_histogram_is_dominated_by_few_core_pages() {
    for trace in [small_cg(), small_scale()] {
        let r = SimulationBuilder::trace(trace.clone()).run();
        let hist = r.sharing_histogram.expect("PSPT histogram");
        let total: usize = hist.iter().sum();
        let few: usize = hist.iter().take(3).sum();
        assert!(
            few * 3 > total * 2,
            "{}: at least 2/3 of pages mapped by ≤3 cores ({few}/{total})",
            trace.label
        );
    }
}

/// §5.7 / Figure 10: with ample memory larger pages win (TLB reach);
/// under pressure the transfer cost flips the ordering away from 2 MB.
#[test]
fn page_size_tradeoff_flips_under_pressure() {
    let t = small_scale();
    let at = |size, ratio| {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Fifo)
            .page_size(size)
            .memory_ratio(ratio)
            .run()
            .runtime_cycles
    };
    // Unconstrained: 2MB ≤ 4kB (fewer TLB misses).
    assert!(
        at(PageSize::M2, 2.0) < at(PageSize::K4, 2.0),
        "2MB must win with ample memory"
    );
    // Severe pressure: 2MB loses to 64kB (data movement dominates).
    assert!(
        at(PageSize::M2, 0.4) > at(PageSize::K64, 0.4),
        "2MB must lose under pressure"
    );
}

/// §7: "our system is capable of providing up to 70% of the native
/// performance with physical memory limited to half" — CG (sparse
/// allocation) retains most of its performance at 50 % memory.
#[test]
fn cg_retains_performance_at_half_memory() {
    let t = small_cg();
    let base = SimulationBuilder::trace(t.clone()).run();
    let half = run(&t, SchemeChoice::Pspt, PolicyKind::Fifo, 0.5);
    let rel = base.runtime_cycles as f64 / half.runtime_cycles as f64;
    assert!(
        rel > 0.7,
        "CG at 50% memory keeps >70% performance, got {rel:.2}"
    );
}

/// Determinism: the whole pipeline is bit-reproducible.
#[test]
fn end_to_end_runs_are_reproducible() {
    let go = || {
        let t = small_scale();
        let r = run(&t, SchemeChoice::Pspt, PolicyKind::Cmcp { p: 0.5 }, 0.45);
        (
            r.runtime_cycles,
            r.per_core.iter().map(|c| c.page_faults).sum::<u64>(),
            r.global.evictions,
            r.dma_bytes,
        )
    };
    assert_eq!(go(), go());
}

/// The adversarial §3 caveat: a pattern built to fool the core-map-count
/// heuristic makes CMCP lose to FIFO.
#[test]
fn adversarial_pattern_defeats_cmcp() {
    // The trap only springs when memory *just* covers the hot private
    // working set plus the live dead-page batch: eviction then only
    // needs to claim expired dead pages, which FIFO does naturally,
    // while CMCP pins them (count 8 beats count 1) and evicts hot
    // private pages instead. Deeper constraints drown the effect in
    // general thrash, where CMCP's stability wins again.
    let t = cmcp::workloads::synthetic::adversarial_cmcp(8, 64, 128, 5);
    let fifo = run(&t, SchemeChoice::Pspt, PolicyKind::Fifo, 0.95);
    let cm = run(&t, SchemeChoice::Pspt, PolicyKind::Cmcp { p: 0.75 }, 0.95);
    assert!(
        cm.runtime_cycles > fifo.runtime_cycles,
        "the constructed adversary must hurt CMCP: {} vs {}",
        cm.runtime_cycles,
        fifo.runtime_cycles
    );
}
