//! Tracing-layer integration tests: for any workload, the virtual-time
//! event stream must decompose `fault_cycles` exactly into the kernel's
//! own counters, traced runs must stay bit-identical, and the exports
//! must round-trip.

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::sim::{Op, Trace};
use cmcp::trace::{to_chrome_trace, to_jsonl, EventKind};
use cmcp::{PolicyKind, SimulationBuilder};

/// Random well-formed traces (same barrier count on every core).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        2usize..5,
        1usize..3,
        prop::collection::vec((0u64..64, 1u32..8, any::<bool>()), 1..8),
    )
        .prop_map(|(cores, phases, chunks)| {
            let mut t = Trace::new(cores, "trace-prop");
            for c in 0..cores {
                for phase in 0..phases {
                    for (i, &(start, pages, write)) in chunks.iter().enumerate() {
                        let s = start + (c as u64 * 11 + phase as u64 * 7 + i as u64) % 48;
                        t.cores[c].ops.push(Op::Stream {
                            start: VirtPage(s),
                            pages,
                            write,
                            work_per_page: 2,
                        });
                    }
                    t.cores[c].ops.push(Op::Barrier);
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any trace, policy, and memory pressure, the span decomposition
    /// reconstructed from events sums exactly to the kernel counters.
    /// (`RunReport::collect` already panics on mismatch; this re-checks
    /// the equations independently.)
    #[test]
    fn breakdown_matches_core_stats(
        trace in trace_strategy(),
        policy in prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::Lru),
            Just(PolicyKind::Cmcp { p: 0.5 }),
        ],
        ratio in 0.3f64..1.1,
    ) {
        let traced = SimulationBuilder::trace(trace)
            .policy(policy)
            .memory_ratio(ratio)
            .run_traced();
        prop_assert_eq!(traced.dropped, 0, "default capacity must not wrap");
        let b = traced.report.breakdown.as_ref().expect("traced run has a breakdown");
        prop_assert!(b.validated);
        for (bc, sc) in b.per_core.iter().zip(traced.report.per_core.iter()) {
            prop_assert_eq!(bc.faults, sc.page_faults);
            prop_assert_eq!(bc.fault_cycles, sc.fault_cycles);
            prop_assert_eq!(bc.lock_wait_cycles, sc.lock_wait_cycles);
            prop_assert_eq!(bc.shootdown_cycles, sc.shootdown_cycles);
            prop_assert_eq!(bc.dma_wait_cycles, sc.dma_wait_cycles);
            // The decomposition never exceeds the whole.
            let parts = bc.lock_wait_cycles
                + bc.lock_hold_cycles
                + bc.shootdown_cycles
                + bc.dma_wait_cycles
                + bc.policy_scan_cycles;
            prop_assert_eq!(parts + bc.other_cycles, bc.fault_cycles.max(parts));
        }
        // Event-level cross-check: FaultStart count per core == faults.
        for (core, sc) in traced.report.per_core.iter().enumerate() {
            let starts = traced
                .events
                .iter()
                .filter(|e| e.core == core as u16 && e.kind == EventKind::FaultStart)
                .count() as u64;
            prop_assert_eq!(starts, sc.page_faults);
        }
    }
}

#[test]
fn traced_deterministic_runs_are_bit_identical() {
    let mut t = Trace::new(3, "bitwise");
    for c in 0..3 {
        t.cores[c].ops.push(Op::Stream {
            start: VirtPage(c as u64 * 13),
            pages: 48,
            write: true,
            work_per_page: 2,
        });
        t.cores[c].ops.push(Op::Barrier);
        t.cores[c].ops.push(Op::Stream {
            start: VirtPage(c as u64 * 13 + 5),
            pages: 48,
            write: false,
            work_per_page: 2,
        });
        t.cores[c].ops.push(Op::Barrier);
    }
    let run = || {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.5 })
            .memory_ratio(0.5)
            .run_traced()
    };
    let a = run();
    let b = run();
    assert_eq!(a.events, b.events, "event streams must be bit-identical");
    assert_eq!(a.dropped, 0);
    assert_eq!(a.report.breakdown, b.report.breakdown);
}

#[test]
fn tiny_ring_wraps_without_breaking_the_run() {
    let t = cmcp::workloads::synthetic::private_stream(2, 64, 3);
    let traced = SimulationBuilder::trace(t)
        .memory_ratio(0.4)
        .trace_capacity(8)
        .run_traced();
    assert!(
        traced.dropped > 0,
        "8-slot rings must wrap on this workload"
    );
    let b = traced.report.breakdown.expect("breakdown still produced");
    assert!(!b.validated, "a wrapped trace must not claim validation");
    assert_eq!(b.dropped_events, traced.dropped);
}

#[test]
fn parallel_engine_traced_run_validates() {
    let t = cmcp::workloads::synthetic::shared_hot(4, 24, 48, 3);
    let traced = SimulationBuilder::trace(t)
        .policy(PolicyKind::Cmcp { p: 0.75 })
        .memory_ratio(0.6)
        .threads(2)
        .run_traced();
    assert_eq!(traced.dropped, 0);
    let b = traced
        .report
        .breakdown
        .expect("parallel traced run has a breakdown");
    assert!(b.validated, "concurrent rings must still sum exactly");
    assert!(!traced.events.is_empty());
}

#[test]
fn fault_spans_decompose_cleanly_in_a_traced_run() {
    // Under an active plan the new FaultInjected / Retry / Quarantine
    // spans must reconcile exactly: per-core event counts match the
    // kernel counters, retry backoff cycles sum precisely into the
    // validated breakdown, and every retry pairs with an injected fault.
    let t = cmcp::workloads::synthetic::shared_hot(6, 32, 48, 5);
    let traced = SimulationBuilder::trace(t)
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .memory_ratio(0.5)
        .fault_plan(cmcp::FaultPlan::new(42).dma_errors(0.02).enospc(0.01))
        .run_traced();
    assert_eq!(traced.dropped, 0, "default ring must hold the faulted run");
    let b = traced.report.breakdown.expect("traced run has a breakdown");
    assert!(b.validated, "fault spans must reconcile with the counters");
    let mut injected_total = 0;
    for (core, sc) in traced.report.per_core.iter().enumerate() {
        let of = |kind: EventKind| {
            traced
                .events
                .iter()
                .filter(|e| e.core == core as u16 && e.kind == kind)
                .collect::<Vec<_>>()
        };
        let injected = of(EventKind::FaultInjected);
        let retries = of(EventKind::Retry);
        let quarantines = of(EventKind::Quarantine);
        assert_eq!(injected.len() as u64, sc.faults_injected);
        assert_eq!(retries.len() as u64, sc.fault_retries);
        assert_eq!(quarantines.len() as u64, sc.quarantines);
        // Retry events carry the charged backoff in `a`; the sum is the
        // exact per-core backoff counter, which the validated breakdown
        // books as a fault_cycles component.
        let backoff: u64 = retries.iter().map(|e| e.a).sum();
        assert_eq!(backoff, sc.retry_backoff_cycles);
        assert!(
            sc.fault_retries <= sc.faults_injected,
            "every retry answers an injected fault"
        );
        let br = &b.per_core[core];
        assert_eq!(br.faults_injected, sc.faults_injected);
        assert_eq!(br.fault_retries, sc.fault_retries);
        assert_eq!(br.retry_backoff_cycles, sc.retry_backoff_cycles);
        assert_eq!(br.quarantines, sc.quarantines);
        injected_total += injected.len() as u64;
    }
    assert!(injected_total > 0, "2% over this run must inject something");
    let global_total = traced.report.global.dma_errors
        + traced.report.global.latency_spikes
        + traced.report.global.ikc_drops
        + traced.report.global.enospc_events
        + u64::from(traced.report.global.sync_syscalls > 0);
    assert_eq!(
        injected_total, global_total,
        "per-core injection events must sum to the global site counters"
    );
}

#[test]
fn a_zero_rate_plan_changes_nothing() {
    // Arming the injector with all-zero rates must leave the run
    // bit-identical to an unfaulted one: the injector consumes sequence
    // numbers but never perturbs virtual time.
    let t = cmcp::workloads::synthetic::shared_hot(4, 24, 40, 3);
    let base = SimulationBuilder::trace(t.clone())
        .memory_ratio(0.5)
        .run_traced();
    let armed = SimulationBuilder::trace(t)
        .memory_ratio(0.5)
        .fault_plan(cmcp::FaultPlan::new(99).dma_errors(0.0))
        .run_traced();
    assert_eq!(base.events, armed.events, "zero rates must be inert");
    assert_eq!(base.report.per_core, armed.report.per_core);
}

#[test]
fn exports_cover_every_event() {
    let t = cmcp::workloads::synthetic::private_stream(2, 32, 2);
    let traced = SimulationBuilder::trace(t).memory_ratio(0.5).run_traced();
    assert!(!traced.events.is_empty());

    let jsonl = to_jsonl(&traced.events);
    assert_eq!(jsonl.lines().count(), traced.events.len());
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        assert!(v.get("ts").is_some() && v.get("kind").is_some());
    }

    let chrome = to_chrome_trace(&traced.events);
    let v: serde_json::Value = serde_json::from_str(&chrome).expect("valid chrome trace");
    assert!(v.get("traceEvents").is_some());
}
