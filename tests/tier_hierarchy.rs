//! Cross-tier shadow-oracle suite for the multi-tier backing hierarchy.
//!
//! Three layers of proof, per the tier-subsystem acceptance criteria:
//!
//! 1. **Flat reference replay** — a hierarchy whose tiers all cost zero
//!    cycles must be *observationally invisible*: every per-core counter,
//!    the virtual runtime, and the DMA byte totals match the flat
//!    single-store run exactly, for all seven policies. Demotion and
//!    promotion may shuffle spans between tiers, but no dirty write may
//!    be lost (equal write-backs) and no refault may miss (equal
//!    refaults) — the flat store *is* the loss-free oracle.
//! 2. **Book audits** — after every run, [`cmcp::Vmm::backing_audit`]
//!    walks the span map and asserts no page is held by two tiers, every
//!    per-tier page/span book matches a recount, and no bounded tier
//!    sits over capacity; `frame_audit_pages` asserts frame conservation
//!    (free + resident + quarantined == total) on the device side.
//! 3. **Traffic accounting** — per-tier `stores`/`loads` roll up to the
//!    kernel's global write-back and refault counters, so the tier books
//!    cannot drift from the fault path that feeds them.
//!
//! Every leg runs with and without a 1 % DMA-error fault plan: the
//! injection layer keys its sequences per tier, and a lost or doubly
//! applied recovery would break the books or the conservation equality.

use cmcp::sim::run_parallel;
use cmcp::workloads::synthetic;
use cmcp::{
    CostModel, FaultPlan, KernelConfig, PageSize, PolicyKind, RunReport, SchemeChoice, TierConfig,
    Trace, Vmm,
};

/// Every replacement policy the engine supports.
const ALL_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Fifo,
    PolicyKind::Lru,
    PolicyKind::Clock,
    PolicyKind::Lfu,
    PolicyKind::Random,
    PolicyKind::Cmcp { p: 0.5 },
    PolicyKind::AdaptiveCmcp,
];

/// The ±1 % fault plan the acceptance matrix pins.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(42).dma_errors(0.01).enospc(0.005)
}

/// A tight three-tier hierarchy: the 24-page fast tier saturates almost
/// immediately under the pressure traces below, forcing capacity
/// cascades (demotions) and promotion traffic on refaults.
fn tight_tiers() -> TierConfig {
    TierConfig::parse("fast:24@50/0;mid:64@500/2000;cold:0@5000/500").unwrap()
}

/// Same shape, every cost zero: must be invisible next to the flat store.
fn zero_cost_tiers() -> TierConfig {
    TierConfig::parse("fast:24@0/0;mid:64@0/0;cold:0@0/0").unwrap()
}

fn kernel_config(
    trace: &Trace,
    policy: PolicyKind,
    tiers: TierConfig,
    adaptive: bool,
    plan: Option<FaultPlan>,
    ratio: f64,
) -> KernelConfig {
    let block_size = if adaptive { PageSize::M2 } else { PageSize::K4 };
    let footprint = trace.declared_blocks(block_size);
    let cost = CostModel {
        tiers,
        ..CostModel::default()
    };
    KernelConfig {
        cores: trace.cores.len(),
        block_size,
        device_blocks: ((footprint as f64 * ratio).ceil() as usize).max(1),
        scheme: SchemeChoice::Pspt,
        policy,
        cost,
        scan_budget: 0,
        pspt_rebuild_period: 0,
        fault_plan: plan,
        adaptive,
    }
}

/// Runs the config and applies the full shadow-oracle audit battery
/// before returning the report.
fn run_audited(cfg: KernelConfig, trace: &Trace, threads: usize) -> RunReport {
    let tiered = !cfg.tiers().is_flat() || cfg.adaptive;
    let faulted = cfg.fault_plan.is_some();
    let vmm = Vmm::new(cfg);
    let report = run_parallel(&vmm, trace, threads);

    // Layer 2: span/book audit (panics on overlap, drift, or a bounded
    // tier over capacity) and device-frame conservation.
    vmm.backing_audit();
    let (free, resident, quarantined, total) = vmm.frame_audit_pages();
    assert_eq!(
        free + resident + quarantined,
        total,
        "device frame books must balance (free {free} + resident {resident} + quarantined {quarantined} != total {total})"
    );

    // Layer 3: tier traffic rolls up to the kernel counters.
    if tiered {
        let counters = vmm.tier_counters().expect("tiered store reports counters");
        let stores: u64 = counters.iter().map(|c| c.stores).sum();
        let loads: u64 = counters.iter().map(|c| c.loads).sum();
        let g = &report.global;
        assert_eq!(
            stores, g.writebacks,
            "every successful write-back lands on exactly one tier"
        );
        if faulted {
            // A fault-retry restart re-probes the store before the
            // refault completes, so loads can only over-count.
            assert!(
                loads >= g.refaults,
                "loads {loads} must cover refaults {}",
                g.refaults
            );
        } else {
            assert_eq!(
                loads, g.refaults,
                "every refault is served by exactly one tier"
            );
        }
        assert_eq!(
            g.tier_promotions,
            counters.iter().map(|c| c.promoted_in).sum::<u64>(),
            "promotion events match the per-tier books"
        );
        assert_eq!(
            g.tier_demotions,
            counters.iter().map(|c| c.demoted_in).sum::<u64>(),
            "demotion cascades match the per-tier books"
        );
    }
    report
}

/// The pressure trace of the determinism matrix: shared hot set plus
/// private streams at half the footprint, so evictions, shootdowns, and
/// refaults all interleave.
fn pressure_trace() -> Trace {
    synthetic::shared_hot(6, 32, 64, 4)
}

#[test]
fn zero_cost_tiers_are_invisible_next_to_the_flat_reference() {
    // Layer 1: the flat store is the shadow oracle. A hierarchy whose
    // penalties are all zero may demote and promote internally however it
    // likes, but every externally visible number must match flat exactly
    // — equal write-backs prove no dirty page was dropped by a cascade,
    // equal refaults prove no stored page went missing.
    let t = pressure_trace();
    for policy in ALL_POLICIES {
        let flat = run_audited(
            kernel_config(&t, policy, TierConfig::flat(), false, None, 0.5),
            &t,
            1,
        );
        assert!(
            flat.global.evictions > 0 && flat.global.writebacks > 0,
            "{}: the reference run must evict and write back dirty pages",
            policy.label()
        );
        let tiered = run_audited(
            kernel_config(&t, policy, zero_cost_tiers(), false, None, 0.5),
            &t,
            1,
        );
        assert_eq!(
            format!("{:?}", tiered.per_core),
            format!("{:?}", flat.per_core),
            "{}: zero-cost tiers changed per-core behavior",
            policy.label()
        );
        assert_eq!(
            tiered.runtime_cycles,
            flat.runtime_cycles,
            "{}",
            policy.label()
        );
        assert_eq!(tiered.dma_bytes, flat.dma_bytes, "{}", policy.label());
        assert_eq!(
            (
                tiered.global.evictions,
                tiered.global.writebacks,
                tiered.global.refaults,
                tiered.global.scan_ticks,
            ),
            (
                flat.global.evictions,
                flat.global.writebacks,
                flat.global.refaults,
                flat.global.scan_ticks,
            ),
            "{}: kernel-global books diverged from the flat oracle",
            policy.label()
        );
    }
}

#[test]
fn tiered_books_balance_for_all_policies_with_and_without_faults() {
    // Layers 2 + 3 under real (non-zero) tier costs, where demotion
    // cascades and promotions actually fire, with and without the 1 %
    // DMA fault plan. `run_audited` carries the assertions.
    let t = pressure_trace();
    for policy in ALL_POLICIES {
        for plan in [None, Some(fault_plan())] {
            let faulted = plan.is_some();
            let r = run_audited(
                kernel_config(&t, policy, tight_tiers(), false, plan, 0.5),
                &t,
                4,
            );
            assert!(
                r.global.evictions > 0,
                "{} faulted={faulted}: pressure must evict",
                policy.label()
            );
            assert!(
                r.global.tier_demotions > 0,
                "{} faulted={faulted}: a 24-page fast tier must cascade",
                policy.label()
            );
            if faulted {
                assert!(
                    r.global.dma_errors > 0,
                    "{}: 1% over thousands of transfers must fire",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn tier_penalties_surface_in_the_report_and_only_for_costly_tiers() {
    let t = pressure_trace();
    let costly = run_audited(
        kernel_config(
            &t,
            PolicyKind::Cmcp { p: 0.5 },
            tight_tiers(),
            false,
            None,
            0.5,
        ),
        &t,
        1,
    );
    let penalty: u64 = costly.per_core.iter().map(|c| c.tier_penalty_cycles).sum();
    assert!(penalty > 0, "costly tiers must charge penalty cycles");
    assert!(
        costly.tiers.is_some(),
        "tiered runs must publish the per-tier report"
    );
    let names = &costly.tiers.as_ref().unwrap().names;
    assert_eq!(names, &["fast", "mid", "cold"]);

    let flat = run_audited(
        kernel_config(
            &t,
            PolicyKind::Cmcp { p: 0.5 },
            TierConfig::flat(),
            false,
            None,
            0.5,
        ),
        &t,
        1,
    );
    assert_eq!(
        flat.per_core
            .iter()
            .map(|c| c.tier_penalty_cycles)
            .sum::<u64>(),
        0,
        "flat runs never pay tier penalties"
    );
    assert!(
        flat.tiers.is_none(),
        "flat runs keep the legacy report shape"
    );
}

#[test]
fn map_count_ranking_sends_cold_spans_deeper() {
    // Private streams: at eviction time a victim is mapped by at most
    // one core, so CMCP's demotion ranking must route every write-back
    // below the fastest tier (rank >= 1). A roomy hierarchy isolates the
    // ranking decision from capacity cascades.
    let t = synthetic::private_stream(4, 48, 3);
    let roomy = TierConfig::parse("fast:100000@50/0;mid:100000@500/0;cold:0@5000/0").unwrap();
    let r = run_audited(
        kernel_config(&t, PolicyKind::Cmcp { p: 0.5 }, roomy, false, None, 0.5),
        &t,
        1,
    );
    let tiers = r.tiers.as_ref().expect("tiered report");
    assert!(r.global.writebacks > 0, "pressure must write back");
    assert_eq!(
        tiers.counters[0].stores, 0,
        "singly-mapped victims never land on the fastest tier"
    );
    assert_eq!(
        tiers.counters[1].stores + tiers.counters[2].stores,
        r.global.writebacks,
        "all write-backs land below the fast tier"
    );
}

#[test]
fn adaptive_page_sizes_hold_the_same_books_under_tier_pressure() {
    // The adaptive allocator (buddy frames, mixed granularities,
    // split-on-evict) against both a flat and a tight hierarchy, with
    // and without faults: the same audit battery must hold, and a tight
    // ratio must actually trigger splits.
    let t = pressure_trace();
    for tiers in [TierConfig::flat(), tight_tiers()] {
        for plan in [None, Some(fault_plan())] {
            let faulted = plan.is_some();
            let r = run_audited(
                kernel_config(
                    &t,
                    PolicyKind::Cmcp { p: 0.5 },
                    tiers.clone(),
                    true,
                    plan,
                    0.4,
                ),
                &t,
                4,
            );
            assert!(
                r.global.evictions > 0,
                "adaptive run at 40% must evict (tiers={tiers}, faulted={faulted})"
            );
        }
    }
}

#[test]
fn adaptive_splits_fire_under_pressure_and_books_still_balance() {
    // Many cores sweeping disjoint 2 MB regions under a tight ratio:
    // fresh regions map huge while memory is plentiful, then the
    // pressure controller drops the granularity and eviction splits the
    // oversized victims in place.
    let t = synthetic::private_stream(6, 640, 2);
    let r = run_audited(
        kernel_config(
            &t,
            PolicyKind::Cmcp { p: 0.5 },
            TierConfig::flat(),
            true,
            None,
            0.35,
        ),
        &t,
        2,
    );
    assert!(
        r.global.block_splits > 0,
        "a 35% adaptive run must split oversized victims (got {:?})",
        r.global
    );
}

#[test]
fn tiered_and_adaptive_runs_are_reproducible() {
    // Same config, fresh kernel: byte-identical reports. The
    // determinism matrix across thread counts lives in
    // `thread_determinism.rs`; this pins run-to-run stability of the
    // tier and adaptive state machines themselves.
    let t = pressure_trace();
    for adaptive in [false, true] {
        let run = || {
            run_audited(
                kernel_config(
                    &t,
                    PolicyKind::AdaptiveCmcp,
                    tight_tiers(),
                    adaptive,
                    Some(fault_plan()),
                    0.5,
                ),
                &t,
                4,
            )
        };
        assert_eq!(
            format!("{:?}", run()),
            format!("{:?}", run()),
            "adaptive={adaptive}: repeat tiered run diverged"
        );
    }
}
