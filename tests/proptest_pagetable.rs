//! Model-based property tests for the page tables: arbitrary map/unmap/
//! access sequences are mirrored against a plain `HashMap` model, and
//! PSPT's core-map directory is checked against the ground truth of its
//! per-core tables.

use std::collections::HashMap;

use proptest::prelude::*;

use cmcp::arch::{CoreId, PageSize, PhysFrame, VirtPage};
use cmcp::pagetable::{PageTable, Pspt, PteFlags, TableScheme};

fn page_size_strategy() -> impl Strategy<Value = PageSize> {
    prop_oneof![Just(PageSize::K4), Just(PageSize::K64), Just(PageSize::M2)]
}

/// Mirrors a map/unmap op sequence against a flat `HashMap` model and
/// asserts the radix table agrees at every step. Shared by the proptest
/// below (which generates `ops`) and the named regression tests (which
/// replay the shrunken sequences proptest found historically); panics
/// inside here are shrunk by proptest exactly like `prop_assert!`
/// failures.
fn check_radix_ops(ops: Vec<(u64, PageSize, bool)>) {
    let mut table = PageTable::new();
    // Model: 4kB page → (frame, size).
    let mut model: HashMap<u64, (u32, PageSize)> = HashMap::new();
    let mut next_frame = 0u32;
    for (slot, size, unmap) in ops {
        let span = size.pages_4k() as u64;
        let head = VirtPage(slot * 512); // 2MB-aligned slots avoid overlap surprises
        if unmap {
            // `unmap(head, K4/K64)` is a range unmap: it removes any
            // PT-level entries inside the span (a 64 kB unmap over a
            // lone 4 kB mapping clears that mapping); a 2 MB unmap
            // only matches an actual 2 MB leaf.
            let res = table.unmap(head, size);
            let removable: Vec<u64> = (0..span)
                .map(|k| head.0 + k)
                .filter(|p| match model.get(p) {
                    Some(&(_, PageSize::M2)) => size == PageSize::M2,
                    Some(_) => size != PageSize::M2,
                    None => false,
                })
                .collect();
            assert_eq!(res.is_some(), !removable.is_empty());
            if size == PageSize::M2 && res.is_some() {
                for k in 0..span {
                    model.remove(&(head.0 + k));
                }
            } else {
                for p in removable {
                    model.remove(&p);
                }
            }
        } else if (0..512).all(|k| !model.contains_key(&(head.0 + k))) {
            // Map only into a fully empty 2 MB slot: a partial unmap
            // (e.g. one 4 kB sub-entry torn out of a 64 kB run) can
            // leave residues that legitimately reject a fresh map.
            let frame = PhysFrame(next_frame * 512);
            next_frame += 1;
            table.map(head, frame, size, PteFlags::WRITABLE).unwrap();
            for k in 0..span {
                model.insert(head.0 + k, (frame.0 + k as u32, size));
            }
        }
        // Spot-check translations across the touched region.
        for k in [0, span / 2, span - 1] {
            let page = VirtPage(head.0 + k);
            match (table.translate(page), model.get(&page.0)) {
                (Some(tr), Some(&(frame, size))) => {
                    assert_eq!(tr.frame.0, frame);
                    assert_eq!(tr.size, size);
                }
                (None, None) => {}
                (got, want) => {
                    panic!("page {page}: table={got:?} model={want:?}");
                }
            }
        }
        assert_eq!(table.mapped_pages_4k(), model.len());
    }
}

// The committed `proptest-regressions` seeds, promoted to named
// deterministic tests so the historical failures run on every `cargo
// test` by construction — visible in test output, immune to the seed
// file being pruned, and debuggable by name. Each replays the exact
// shrunken op sequence from the seed file's `shrinks to` comment.

/// Seed 818c9efd…: a 64 kB range unmap over a lone 4 kB mapping must
/// clear that mapping (and report success), not miss it because no
/// 64 kB leaf exists at the head.
#[test]
fn regression_k64_range_unmap_clears_lone_k4_mapping() {
    check_radix_ops(vec![(58, PageSize::K4, false), (58, PageSize::K64, true)]);
}

/// Seed 4efcdb2e…: tearing one 4 kB sub-entry out of a 64 kB run must
/// leave residues that reject a fresh 64 kB map of the same slot — the
/// table may not silently overlay the survivors.
#[test]
fn regression_k64_remap_rejected_after_partial_k4_unmap() {
    check_radix_ops(vec![
        (52, PageSize::K64, false),
        (52, PageSize::K4, true),
        (52, PageSize::K64, false),
    ]);
}

/// Seed 829715eb…: after a 4 kB map/unmap pair empties a slot, a 2 MB
/// map into it must succeed and translate across the whole span (the
/// intermediate table level must have been reclaimed or traversed).
#[test]
fn regression_m2_map_into_slot_emptied_by_k4_unmap() {
    check_radix_ops(vec![
        (51, PageSize::K4, false),
        (51, PageSize::K4, true),
        (51, PageSize::M2, false),
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A single radix table agrees with a flat model over random
    /// map/unmap sequences at mixed page sizes (see `check_radix_ops`).
    #[test]
    fn radix_table_matches_flat_model(
        ops in prop::collection::vec(
            (0u64..64, page_size_strategy(), any::<bool>()),
            1..120,
        ),
    ) {
        check_radix_ops(ops);
    }

    /// PSPT's core-map directory always equals the set of cores whose
    /// private tables hold a valid translation.
    #[test]
    fn pspt_directory_matches_tables(
        ops in prop::collection::vec(
            (0u16..6, 0u64..24, any::<bool>()),
            1..150,
        ),
    ) {
        let cores = 6usize;
        let pspt = Pspt::new(cores);
        for (core, slot, unmap) in ops {
            let head = VirtPage(slot);
            if unmap {
                pspt.unmap_all(head, PageSize::K4);
            } else if !pspt.mapping_cores(head).contains(CoreId(core)) {
                // Frame identity per block: derived from the slot.
                pspt.map(CoreId(core), head, PhysFrame(slot as u32), PageSize::K4, true)
                    .unwrap();
            }
            // Ground truth from the per-core tables.
            for slot in 0u64..24 {
                let head = VirtPage(slot);
                let dir = pspt.mapping_cores(head);
                for c in 0..cores as u16 {
                    let mapped = pspt.translate(CoreId(c), head).is_some();
                    prop_assert_eq!(
                        mapped,
                        dir.contains(CoreId(c)),
                        "core {} block {}: table={} dir={}",
                        c, slot, mapped, dir.contains(CoreId(c))
                    );
                }
            }
        }
    }

    /// Split/merge is a lossless radix-node rewrite: splitting a block
    /// down to 4 kB preserves every translation, frame, and the dirty
    /// aggregate; merging back restores the original leaf exactly.
    #[test]
    fn split_to_4k_and_merge_back_round_trips(
        slot in 0u64..32,
        size in prop_oneof![Just(PageSize::K64), Just(PageSize::M2)],
        write in any::<bool>(),
        touch in 0u64..512,
    ) {
        let mut table = PageTable::new();
        let head = VirtPage(slot * 512);
        let span = size.pages_4k() as u64;
        let frame = PhysFrame((slot as u32) * 512);
        let flags = if write { PteFlags::WRITABLE } else { PteFlags::empty() };
        table.map(head, frame, size, flags).unwrap();
        table.mark_accessed(VirtPage(head.0 + touch % span), write);
        let was_dirty = table.block_dirty(head, size);
        prop_assert_eq!(was_dirty, write, "a write dirties the block");

        // Split down to 4 kB, one granularity level at a time.
        prop_assert!(table.split(head, size));
        if size == PageSize::M2 {
            for k in 0..32u64 {
                prop_assert!(table.split(VirtPage(head.0 + k * 16), PageSize::K64));
            }
        }
        for k in 0..span {
            let tr = table.translate(VirtPage(head.0 + k)).expect("split keeps mappings");
            prop_assert_eq!(tr.size, PageSize::K4, "fully split to base pages");
            prop_assert_eq!(tr.frame.0, frame.0 + k as u32, "frames undisturbed");
        }
        prop_assert_eq!(table.mapped_pages_4k(), span as usize);

        // Merge back up; every 16-run first, then the 2 MB leaf.
        for k in 0..span / 16 {
            prop_assert!(table.merge(VirtPage(head.0 + k * 16), PageSize::K64));
        }
        if size == PageSize::M2 {
            prop_assert!(table.merge(head, PageSize::M2));
        }
        for k in [0, span / 2, span - 1] {
            let tr = table.translate(VirtPage(head.0 + k)).expect("merged block maps");
            prop_assert_eq!(tr.size, size, "original granularity restored");
            prop_assert_eq!(tr.frame.0, frame.0 + k as u32);
        }
        prop_assert_eq!(
            table.block_dirty(head, size), was_dirty,
            "split/merge must not launder the dirty bit"
        );
        prop_assert_eq!(table.mapped_pages_4k(), span as usize);
    }

    /// Merge refuses torn runs: after one 4 kB child is unmapped, the
    /// 64 kB merge fails and the survivors still translate.
    #[test]
    fn merge_refuses_partial_runs(slot in 0u64..32, victim in 0u64..16) {
        let mut table = PageTable::new();
        let head = VirtPage(slot * 512);
        let frame = PhysFrame((slot as u32) * 512);
        table.map(head, frame, PageSize::K64, PteFlags::WRITABLE).unwrap();
        prop_assert!(table.split(head, PageSize::K64));
        table.unmap(VirtPage(head.0 + victim), PageSize::K4).expect("child unmaps");
        prop_assert!(!table.merge(head, PageSize::K64), "torn run must not merge");
        for k in 0..16u64 {
            let got = table.translate(VirtPage(head.0 + k));
            prop_assert_eq!(got.is_some(), k != victim);
        }
    }

    /// Accessed/dirty aggregation: marking any 4 kB sub-page of a block
    /// makes the block-level queries see it, on the marking core only.
    #[test]
    fn pspt_attribute_aggregation(
        sub in 0u64..16,
        size in prop_oneof![Just(PageSize::K64), Just(PageSize::M2)],
        write in any::<bool>(),
    ) {
        let pspt = Pspt::new(2);
        let span = size.pages_4k() as u64;
        let sub = sub % span;
        pspt.map(CoreId(0), VirtPage(0), PhysFrame(0), size, true).unwrap();
        pspt.map(CoreId(1), VirtPage(0), PhysFrame(0), size, true).unwrap();
        pspt.mark_accessed(CoreId(0), VirtPage(sub), write);
        prop_assert_eq!(pspt.block_dirty(VirtPage(0), size), write);
        let scan = pspt.test_and_clear_accessed(VirtPage(0), size);
        prop_assert!(scan.accessed);
        prop_assert!(scan.invalidate.contains(CoreId(0)));
        prop_assert!(!scan.invalidate.contains(CoreId(1)), "core 1 never touched it");
        // Second scan: clear.
        let scan2 = pspt.test_and_clear_accessed(VirtPage(0), size);
        prop_assert!(!scan2.accessed);
    }
}
