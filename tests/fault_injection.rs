//! Fault-injection & recovery integration tests.
//!
//! A shadow oracle replays the declarative fault plan's consequences
//! against the kernel's quiescent state: no dirty write may be lost (an
//! evicted written block is either resident again or safely on the
//! backing store), and the frame books must balance exactly (free +
//! resident + quarantined == device blocks — a double-free or leak
//! breaks the identity). Determinism is property-tested: the same seed
//! and plan reproduce byte-equal reports, retry schedules included.

use std::collections::BTreeSet;

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::sim::{run_deterministic, Op, Trace};
use cmcp::trace::RingTracer;
use cmcp::workloads::synthetic;
use cmcp::{
    FaultPlan, KernelConfig, PageSize, PolicyKind, Recorder, SimulationBuilder, Vmm, Workload,
    WorkloadClass,
};

/// All seven CLI-reachable policies.
const POLICIES: [PolicyKind; 7] = [
    PolicyKind::Fifo,
    PolicyKind::Lru,
    PolicyKind::Clock,
    PolicyKind::Lfu,
    PolicyKind::Random,
    PolicyKind::AdaptiveCmcp,
    PolicyKind::Cmcp { p: 0.75 },
];

/// Pages the trace writes (the dirty candidates the oracle must find).
fn written_pages(t: &Trace) -> BTreeSet<u64> {
    let mut set = BTreeSet::new();
    for core in &t.cores {
        for op in &core.ops {
            if let Op::Stream {
                start,
                pages,
                write: true,
                ..
            } = op
            {
                set.extend(start.0..start.0 + u64::from(*pages));
            }
        }
    }
    set
}

/// The shadow oracle: run it after the simulation has quiesced.
fn assert_no_lost_pages<R: Recorder>(vmm: &Vmm<R>, t: &Trace, label: &str) {
    for page in written_pages(t) {
        let p = VirtPage(page);
        assert!(
            vmm.block_resident(p) || vmm.backing_contains(p),
            "{label}: dirty page {page} lost (neither resident nor backed)"
        );
    }
    let (free, resident, quarantined, total) = vmm.frame_audit();
    assert_eq!(
        free + resident + quarantined as usize,
        total,
        "{label}: frame books out of balance (double-free or leak)"
    );
}

#[test]
fn seeded_plan_loses_no_dirty_writes_under_any_policy() {
    let t = synthetic::shared_hot(8, 32, 48, 5);
    let blocks = (t.declared_blocks(PageSize::K4) / 2).max(1);
    let plan = FaultPlan::new(42).dma_errors(0.01).enospc(0.005);
    let mut injected_total = 0;
    for policy in POLICIES {
        let cfg = KernelConfig::new(t.cores.len(), blocks)
            .with_policy(policy)
            .with_fault_plan(plan.clone());
        let vmm = Vmm::new(cfg);
        let report = run_deterministic(&vmm, &t);
        assert!(
            report.global.evictions > 0,
            "{}: oracle needs eviction traffic",
            policy.label()
        );
        assert_no_lost_pages(&vmm, &t, &policy.label());
        injected_total += report
            .per_core
            .iter()
            .map(|c| c.faults_injected)
            .sum::<u64>();
    }
    assert!(
        injected_total > 0,
        "a 1% plan must inject across seven pressured runs"
    );
}

#[test]
fn quarantined_frames_stay_out_of_circulation() {
    // Push the DMA error rate high enough that page-in retries
    // quarantine frames, then check the pool shrank by exactly the
    // quarantine count and the run still conserved every touch.
    let t = synthetic::shared_hot(8, 32, 48, 6);
    let touches = t.total_touches();
    let blocks = (t.declared_blocks(PageSize::K4) / 2).max(1);
    let cfg = KernelConfig::new(t.cores.len(), blocks)
        .with_policy(PolicyKind::Cmcp { p: 0.5 })
        .with_fault_plan(FaultPlan::new(1).dma_errors(0.05));
    let vmm = Vmm::new(cfg);
    let report = run_deterministic(&vmm, &t);
    let executed: u64 = report.per_core.iter().map(|c| c.dtlb_accesses).sum();
    assert_eq!(executed, touches);
    let (free, resident, quarantined, total) = vmm.frame_audit();
    assert_eq!(quarantined, report.global.quarantined_frames);
    assert_eq!(free + resident, total - quarantined as usize);
    assert_no_lost_pages(&vmm, &t, "quarantine");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same plan ⇒ byte-equal run reports, including the
    /// retry/backoff schedule (carried verbatim in the Retry events).
    #[test]
    fn same_seed_and_plan_reproduce_byte_equal_reports(
        seed in any::<u64>(),
        dma_ppm in 0u32..30_000,
        enospc_ppm in 0u32..20_000,
        ratio in 0.4f64..0.9,
    ) {
        let t = synthetic::shared_hot(6, 24, 40, 4);
        let plan = FaultPlan::new(seed)
            .dma_errors(f64::from(dma_ppm) / 1e6)
            .enospc(f64::from(enospc_ppm) / 1e6);
        let run = || {
            SimulationBuilder::trace(t.clone())
                .policy(PolicyKind::Cmcp { p: 0.5 })
                .memory_ratio(ratio)
                .fault_plan(plan.clone())
                .run_traced()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.events, b.events, "event streams diverged");
        prop_assert_eq!(
            serde_json::to_string(&a.report.per_core).unwrap(),
            serde_json::to_string(&b.report.per_core).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&a.report.global).unwrap(),
            serde_json::to_string(&b.report.global).unwrap()
        );
        prop_assert_eq!(a.report.runtime_cycles, b.report.runtime_cycles);
    }
}

#[test]
fn cg_class_b_acceptance_run_is_reproducible_and_loses_nothing() {
    // The issue's acceptance gate: CG class B at the paper's memory
    // constraint under seed=42 with 1% DMA errors and 0.5% ENOSPC must
    // complete, lose no pages, reproduce bit-identically, and surface
    // nonzero retry/degradation counters in both the report and the
    // validated trace breakdown.
    let w = Workload::Cg(WorkloadClass::B);
    let t = w.trace(8);
    let blocks =
        ((t.declared_blocks(PageSize::K4) as f64 * w.paper_constraint()).ceil() as usize).max(1);
    let plan = FaultPlan::new(42).dma_errors(0.01).enospc(0.005);
    let run = || {
        let cfg = KernelConfig::new(8, blocks)
            .with_policy(PolicyKind::Cmcp { p: 0.75 })
            .with_fault_plan(plan.clone());
        let vmm = Vmm::with_tracer(cfg, RingTracer::new(8, 1 << 16));
        let report = run_deterministic(&vmm, &t);
        let events = vmm.tracer().events();
        (vmm, report, events)
    };
    let (vmm_a, a, events_a) = run();
    let (_vmm_b, b, events_b) = run();

    assert_no_lost_pages(&vmm_a, &t, "cg.B acceptance");

    assert_eq!(events_a, events_b, "acceptance run must be bit-identical");
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.per_core, b.per_core);
    assert_eq!(a.global, b.global);

    assert!(a.global.dma_errors > 0, "1% DMA plan must fire on cg.B");
    assert!(a.global.enospc_events > 0, "0.5% ENOSPC plan must fire");
    assert!(
        a.global.sync_writebacks > 0,
        "retried write-backs must register as synchronous degradations"
    );
    let retries: u64 = a.per_core.iter().map(|c| c.fault_retries).sum();
    assert_eq!(retries, a.global.dma_errors + a.global.enospc_events);

    let breakdown = a.breakdown.as_ref().expect("traced acceptance run");
    assert!(breakdown.validated, "fault spans must validate");
    let traced_retries: u64 = breakdown.per_core.iter().map(|r| r.fault_retries).sum();
    assert_eq!(traced_retries, retries, "breakdown mirrors the counters");
    assert!(
        breakdown
            .per_core
            .iter()
            .map(|r| r.retry_backoff_cycles)
            .sum::<u64>()
            > 0,
        "backoff cycles must appear in the trace breakdown"
    );
}

#[test]
fn offload_death_degrades_syscalls_synchronously() {
    // A plan whose only rule kills the offload engine after N calls:
    // syscalls before the threshold ride the IKC channel, everything
    // after is served by the slower synchronous fallback.
    let mut t = Trace::new(2, "offload-death");
    for c in 0..2 {
        for _ in 0..6 {
            t.cores[c].ops.push(Op::Syscall {
                service: 10_000,
                payload: 4 << 10,
                write: true,
            });
        }
        t.cores[c].ops.push(Op::Barrier);
    }
    let healthy = {
        let vmm = Vmm::new(KernelConfig::new(2, 16));
        run_deterministic(&vmm, &t)
    };
    let cfg = KernelConfig::new(2, 16).with_fault_plan(FaultPlan::new(3).offload_death_after(4));
    let vmm = Vmm::new(cfg);
    let degraded = run_deterministic(&vmm, &t);
    assert!(vmm.offload_dead(), "engine must die after the 4th call");
    assert_eq!(degraded.global.sync_syscalls, 12 - 4);
    assert!(
        degraded.runtime_cycles > healthy.runtime_cycles,
        "synchronous fallback must cost virtual time: {} vs {}",
        healthy.runtime_cycles,
        degraded.runtime_cycles
    );
}

#[test]
fn fault_plan_spec_round_trips_through_the_cli_syntax() {
    let plan = FaultPlan::parse("seed=42,dma=0.01,enospc=0.005,spike=0.001x8,ikc=0.002")
        .expect("valid spec");
    assert_eq!(plan.seed, 42);
    let reparsed = FaultPlan::parse(&plan.to_string()).expect("display round-trips");
    assert_eq!(plan, reparsed);
    assert!(
        FaultPlan::parse("seed=1,dma=2.0").is_err(),
        "rate > 1 rejected"
    );
    assert!(
        FaultPlan::parse("seed=1,flux=0.1").is_err(),
        "unknown rule rejected"
    );
}
