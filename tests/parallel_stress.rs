//! Engine stress tests: many worker threads hammering the sharded
//! kernel state under eviction pressure. These catch lost updates,
//! frame-pool leaks, and deadlocks that the small determinism tests
//! are too gentle to provoke.
//!
//! CI runs this suite both with the default test harness and with
//! `--test-threads=1`, so it must be self-contained per test.

use cmcp::workloads::synthetic;
use cmcp::{PolicyKind, SimulationBuilder};

const STRESS_WORKERS: usize = 8;

#[test]
fn eight_workers_under_heavy_pressure_conserve_every_touch() {
    // 16 cores sharing a hot set plus private streams, squeezed to half
    // the footprint: constant eviction traffic across every stripe.
    let t = synthetic::shared_hot(16, 48, 64, 6);
    let touches = t.total_touches();
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Cmcp { p: 0.5 },
        PolicyKind::AdaptiveCmcp,
    ] {
        let r = SimulationBuilder::trace(t.clone())
            .policy(policy)
            .memory_ratio(0.5)
            .threads(STRESS_WORKERS)
            .run();
        assert!(
            r.global.evictions > 0,
            "{}: pressure expected",
            policy.label()
        );
        let executed: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
        assert_eq!(executed, touches, "{}: lost touches", policy.label());
        // Faults can never outnumber TLB misses.
        let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
        let misses: u64 = r.per_core.iter().map(|c| c.dtlb_misses).sum();
        assert!(
            faults <= misses,
            "{}: {faults} faults > {misses} misses",
            policy.label()
        );
    }
}

#[test]
fn repeated_stress_runs_complete_and_agree_on_footprint() {
    // Re-running the same pressure workload must neither deadlock nor
    // leak frames; with ample memory the fault totals are also exact.
    let t = synthetic::shared_hot(12, 32, 48, 4);
    let mut fault_totals = Vec::new();
    for _ in 0..3 {
        let r = SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.75 })
            .memory_ratio(1.25)
            .threads(STRESS_WORKERS)
            .run();
        assert_eq!(r.global.evictions, 0);
        fault_totals.push(r.per_core.iter().map(|c| c.page_faults).sum::<u64>());
    }
    assert!(
        fault_totals.windows(2).all(|w| w[0] == w[1]),
        "ample-memory fault totals must be schedule-independent: {fault_totals:?}"
    );
}

#[test]
fn traced_stress_run_still_validates_exactly() {
    // The per-core breakdown must keep summing exactly to the kernel
    // counters even when 8 workers interleave stripe locks and batched
    // policy flushes.
    let t = synthetic::shared_hot(8, 24, 40, 4);
    let traced = SimulationBuilder::trace(t)
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .memory_ratio(0.6)
        .threads(STRESS_WORKERS)
        .run_traced();
    assert_eq!(traced.dropped, 0, "default ring must hold the stress run");
    let b = traced.report.breakdown.expect("traced run has a breakdown");
    assert!(b.validated, "stripe-lock events must reconcile exactly");
    let shard_locks: u64 = b.per_core.iter().map(|r| r.shard_lock_acquires).sum();
    assert!(
        shard_locks > 0,
        "fault path must cross the residency stripes"
    );
}

#[test]
fn stress_workers_survive_a_one_percent_dma_error_plan() {
    // 8 workers under eviction pressure with 1% of DMA transfers failing
    // and occasional ENOSPC on the backing store: the run must neither
    // wedge nor panic, every touch must execute, and the write-back path
    // must demonstrably degrade to the synchronous mode at least once.
    let t = synthetic::shared_hot(16, 48, 64, 6);
    let touches = t.total_touches();
    let r = SimulationBuilder::trace(t)
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .memory_ratio(0.5)
        .threads(STRESS_WORKERS)
        .fault_plan(cmcp::FaultPlan::new(7).dma_errors(0.01).enospc(0.005))
        .run();
    let executed: u64 = r.per_core.iter().map(|c| c.dtlb_accesses).sum();
    assert_eq!(executed, touches, "faults must not lose touches");
    assert!(
        r.global.dma_errors > 0,
        "1% over thousands of transfers must fire"
    );
    assert!(
        r.global.sync_writebacks > 0,
        "retried write-backs must be counted as synchronous degradations"
    );
    // Every DMA error and every ENOSPC charges exactly one backoff.
    let retries: u64 = r.per_core.iter().map(|c| c.fault_retries).sum();
    assert_eq!(retries, r.global.dma_errors + r.global.enospc_events);
    // Quarantined frames stay out of circulation but the pool books stay
    // balanced: quarantine total matches the global gauge.
    let quarantines: u64 = r.per_core.iter().map(|c| c.quarantines).sum();
    assert_eq!(quarantines, r.global.quarantined_frames);
}

#[test]
fn oversubscribed_workers_finish_fast_and_keep_the_bytes() {
    // Regression for the PhaseBarrier oversubscription pathology: with
    // more workers than host CPUs, pure spin-waiting convoyed the
    // scheduler (every waiter burned a core) and runs timed out. The
    // spin → yield → condvar-sleep ladder must keep twice-nproc workers
    // moving — and, as always, must not move a byte of the report.
    let nproc = std::thread::available_parallelism().map_or(2, |p| p.get());
    let workers = 2 * nproc;
    // As many simulated cores as workers, so the engine cannot quietly
    // clamp the thread count down and dodge the oversubscription.
    let t = synthetic::shared_hot(workers, 24, 32, 3);
    let run = |threads: usize| {
        SimulationBuilder::trace(t.clone())
            .policy(PolicyKind::Cmcp { p: 0.5 })
            .memory_ratio(0.5)
            .threads(threads)
            .run()
    };
    let start = std::time::Instant::now();
    let oversubscribed = run(workers);
    let elapsed = start.elapsed();
    assert_eq!(
        format!("{oversubscribed:?}"),
        format!("{:?}", run(1)),
        "oversubscription changed report bytes"
    );
    // Generous even for a loaded single-core CI runner; the pre-fix
    // pathology was tens of seconds to wedged-forever.
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "2x-nproc run took {elapsed:?}; barrier waiters are convoying again"
    );
}

#[test]
fn mixed_schemes_survive_stress() {
    let t = synthetic::private_stream(8, 64, 4);
    for scheme in [cmcp::SchemeChoice::Pspt, cmcp::SchemeChoice::Regular] {
        let r = SimulationBuilder::trace(t.clone())
            .scheme(scheme)
            .memory_ratio(0.5)
            .threads(STRESS_WORKERS)
            .run();
        assert!(r.global.evictions > 0);
        assert!(r.runtime_cycles > 0);
    }
}
