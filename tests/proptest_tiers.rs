//! Property tests for the backing-tier and NUMA spec subsystems: the
//! `--tiers` and `--numa` grammars round-trip through `Display`, parse
//! is total (diagnostic or validated config, never a panic), malformed
//! topologies (duplicate names, zero capacity shares, u64 byte-total
//! overflow) are rejected at validation time, and random store/load
//! action sequences against the span-based tiered store keep its
//! resident set equal to a flat `BTreeMap` oracle — demotion cascades,
//! promotions, and span trimming may move pages *between* tiers, but
//! never create, drop, or duplicate one.

use std::collections::BTreeSet;

use proptest::prelude::*;

use cmcp::arch::VirtPage;
use cmcp::kernel::TieredStore;
use cmcp::{NodeSpec, NumaConfig, TierConfig, TierSpec};

/// Name pool covering the grammar's whole alphabet class, including
/// digits, `_`, `-`, and mixed case. Uniqueness comes from indexing.
const NAMES: [&str; 8] = [
    "hbm", "dram-0", "Nvm_far", "cxl2", "a", "B-b_8", "z9", "Tier-X",
];

/// Random *valid* hierarchies: 1–4 tiers, unique names, bounded inner
/// tiers, unbounded last tier.
fn tier_config_strategy() -> impl Strategy<Value = TierConfig> {
    (
        0usize..NAMES.len(),
        prop::collection::vec((1u64..100_000, 0u64..1_000_000, 0u64..50_000), 1..5),
    )
        .prop_map(|(name0, specs)| {
            let last = specs.len() - 1;
            TierConfig {
                tiers: specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (cap, latency, bw))| TierSpec {
                        // Rotating through the pool keeps names unique.
                        name: NAMES[(name0 + i) % NAMES.len()].to_string(),
                        capacity_pages: if i == last { 0 } else { cap },
                        latency,
                        bytes_per_kcycle: bw,
                    })
                    .collect(),
            }
        })
}

/// One action against the tiered store. Spans are in 4 kB pages over a
/// small universe so overlapping stores (span trims), capacity cascades
/// (demotions), and refault promotions all fire routinely.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// `try_store(head, pages, rank)` — a write-back demoted to `rank`.
    Store { head: u64, pages: u64, rank: usize },
    /// `load(head, pages)` — a refault probe, promoting on hit.
    Load { head: u64, pages: u64 },
}

const UNIVERSE: u64 = 192;

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..UNIVERSE, 1u64..48, 0usize..4).prop_map(|(head, pages, rank)| Action::Store {
            head,
            pages: pages.min(UNIVERSE - head).max(1),
            rank,
        }),
        (0u64..UNIVERSE, 1u64..48).prop_map(|(head, pages)| Action::Load {
            head,
            pages: pages.min(UNIVERSE - head).max(1),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid hierarchies round-trip `Display` → `parse` exactly, and
    /// the round-tripped config validates.
    #[test]
    fn tier_spec_parse_display_round_trips(cfg in tier_config_strategy()) {
        cfg.validate().expect("strategy builds valid configs");
        let spec = cfg.to_string();
        let back = TierConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("`{spec}` failed to re-parse: {e}"));
        prop_assert_eq!(&back, &cfg);
        prop_assert_eq!(back.to_string(), spec);
    }

    /// `parse` never panics on arbitrary input — it either yields a
    /// config that validates and round-trips, or a diagnostic.
    #[test]
    fn tier_spec_parse_total(bytes in prop::collection::vec(0u8..128, 0..64)) {
        let s: String = bytes.into_iter().map(char::from).collect();
        if let Ok(cfg) = TierConfig::parse(&s) {
            cfg.validate().expect("parse only returns validated configs");
            prop_assert_eq!(TierConfig::parse(&cfg.to_string()).unwrap(), cfg);
        }
    }

    /// Random store/load sequences: after every action the store's
    /// resident set (probed page by page) equals the BTreeMap oracle,
    /// the per-tier books survive the audit, and the books' page total
    /// equals the oracle's cardinality. Stores may cascade demotions and
    /// loads may promote — neither may lose or duplicate a page.
    #[test]
    fn tiered_store_matches_set_oracle(
        actions in prop::collection::vec(action_strategy(), 1..200),
    ) {
        // Tight capacities relative to the 192-page universe: cascades
        // and refused promotions both occur in most sequences.
        let tiers = TierConfig::parse("fast:48@10/0;mid:96@100/0;cold:0@1000/0").unwrap();
        let store = TieredStore::new(&tiers, true);
        let mut oracle: BTreeSet<u64> = BTreeSet::new();

        for action in actions {
            match action {
                Action::Store { head, pages, rank } => {
                    let out = store.try_store(VirtPage(head), pages, rank, None);
                    prop_assert!(out.stored, "no injector, stores cannot fail");
                    prop_assert!(out.tier < tiers.len());
                    oracle.extend(head..head + pages);
                }
                Action::Load { head, pages } => {
                    let hit = store.load(VirtPage(head), pages);
                    let expect = (head..head + pages).any(|p| oracle.contains(&p));
                    prop_assert_eq!(
                        hit.is_some(),
                        expect,
                        "load [{}, {}) disagreed with the oracle",
                        head,
                        head + pages
                    );
                }
            }
            store.audit();
            let counters = store.tier_counters().expect("span store has books");
            let held: u64 = counters.iter().map(|c| c.used_pages).sum();
            prop_assert_eq!(held, oracle.len() as u64, "page total drifted from the oracle");
        }

        // Final resident set: page-by-page equality with the oracle.
        for p in 0..UNIVERSE {
            prop_assert_eq!(
                store.contains(VirtPage(p), 1),
                oracle.contains(&p),
                "page {} residency disagrees with the oracle",
                p
            );
        }
    }
}

/// Random *valid* NUMA topologies: 1–8 nodes, unique names from the
/// shared pool, non-zero capacity shares, and bandwidths that include
/// zero (the spec's "no size-proportional migration term" value).
fn numa_config_strategy() -> impl Strategy<Value = NumaConfig> {
    (
        0usize..NAMES.len(),
        prop::collection::vec(
            (1u64..1_000_000, 0u64..100_000, 0u64..50_000),
            1..NAMES.len() + 1,
        ),
    )
        .prop_map(|(name0, specs)| NumaConfig {
            nodes: specs
                .into_iter()
                .enumerate()
                .map(|(i, (cap, latency, bw))| NodeSpec {
                    name: NAMES[(name0 + i) % NAMES.len()].to_string(),
                    capacity_pages: cap,
                    link_latency: latency,
                    bytes_per_kcycle: bw,
                })
                .collect(),
            replicate: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid topologies round-trip `Display` → `parse` exactly.
    #[test]
    fn numa_spec_parse_display_round_trips(cfg in numa_config_strategy()) {
        cfg.validate().expect("strategy builds valid configs");
        let spec = cfg.to_string();
        let back = NumaConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("`{spec}` failed to re-parse: {e}"));
        prop_assert_eq!(&back, &cfg);
        prop_assert_eq!(back.to_string(), spec);
    }

    /// `NumaConfig::parse` never panics on arbitrary input — it either
    /// yields a config that validates and round-trips, or a diagnostic.
    #[test]
    fn numa_spec_parse_total(bytes in prop::collection::vec(0u8..128, 0..64)) {
        let s: String = bytes.into_iter().map(char::from).collect();
        if let Ok(cfg) = NumaConfig::parse(&s) {
            cfg.validate().expect("parse only returns validated configs");
            prop_assert_eq!(NumaConfig::parse(&cfg.to_string()).unwrap(), cfg);
        }
    }

    /// Zero-bandwidth links are legal and never divide by zero: the
    /// migration penalty degrades to the bare link latency, and the
    /// window probe stays well defined for every node pair.
    #[test]
    fn numa_zero_bandwidth_never_panics(
        cfg in numa_config_strategy(),
        bytes in 0u64..1 << 32,
    ) {
        let mut cfg = cfg;
        for n in &mut cfg.nodes {
            n.bytes_per_kcycle = 0;
        }
        for from in 0..cfg.len() {
            for to in 0..cfg.len() {
                prop_assert_eq!(
                    cfg.xfer_penalty(from, to, bytes),
                    cfg.cross_latency(from, to),
                    "zero bandwidth must reduce the penalty to the link latency"
                );
            }
        }
        prop_assert_eq!(cfg.min_cross_latency().is_some(), !cfg.is_single());
    }

    /// Capacity weights whose 4 kB byte total overflows `u64` are
    /// rejected at validation time, not wrapped downstream.
    #[test]
    fn numa_capacity_overflow_rejected(
        cfg in numa_config_strategy(),
        huge in (u64::MAX / 4096 + 1)..u64::MAX,
    ) {
        let mut cfg = cfg;
        if cfg.is_single() {
            // validate() only audits capacities on multi-node topologies.
            return Ok(());
        }
        cfg.nodes[0].capacity_pages = huge;
        let err = cfg.validate().expect_err("overflowing byte total must be rejected");
        prop_assert!(err.contains("overflow"), "diagnostic names the overflow: {}", err);
        prop_assert!(NumaConfig::parse(&cfg.to_string()).is_err());
    }

    /// Duplicate node names are rejected, both on a built config and
    /// through the spec grammar.
    #[test]
    fn numa_duplicate_names_rejected(cfg in numa_config_strategy()) {
        let mut cfg = cfg;
        if cfg.is_single() {
            return Ok(());
        }
        cfg.nodes[1].name = cfg.nodes[0].name.clone();
        let err = cfg.validate().expect_err("duplicate names must be rejected");
        prop_assert!(err.contains("duplicate"), "diagnostic names the duplicate: {}", err);
        prop_assert!(NumaConfig::parse(&cfg.to_string()).is_err());
    }

    /// Largest-remainder block apportionment is exact: one part per
    /// node, parts sum to the budget, and no part is zero when the
    /// budget covers every node.
    #[test]
    fn numa_split_blocks_conserves(cfg in numa_config_strategy(), blocks in 0usize..100_000) {
        let parts = cfg.split_blocks(blocks);
        prop_assert_eq!(parts.len(), cfg.len());
        prop_assert_eq!(parts.iter().sum::<usize>(), blocks);
        if blocks >= cfg.len() {
            prop_assert!(parts.iter().all(|&p| p > 0), "every node gets a share");
        }
    }
}
