//! # cmcp-trace — virtual-time tracing for the fault path
//!
//! Every interesting moment of the simulated memory manager's life —
//! fault entry/exit, victim selection, TLB shootdowns, DMA transfers,
//! page-table lock traffic, accessed-bit scans, barrier waits — can be
//! recorded as a fixed-size [`Event`] stamped with the emitting core's
//! **virtual** clock. Recording goes through the [`Recorder`] trait:
//!
//! * [`NullTracer`] — the default. `ENABLED == false`, `record` is an
//!   empty inline function, and every call site that would compute
//!   event arguments guards on `R::ENABLED`, so a non-traced build
//!   carries no cost (verified by `benches/trace_overhead.rs`).
//! * [`RingTracer`] — one lock-free fixed-capacity ring per core (plus
//!   one for maintenance work not attributable to a core), overwriting
//!   the oldest slot on overflow and counting what it dropped.
//!
//! Post-run, [`Breakdown`](breakdown::Breakdown) folds a trace into a
//! per-core cycle decomposition of the fault path and **validates it
//! against the kernel's own counters** (`CoreStats`): the traced spans
//! must sum exactly to `fault_cycles`, `lock_wait_cycles`,
//! `shootdown_cycles` and `dma_wait_cycles`, and the traced fault count
//! must equal `page_faults`. [`export`] renders traces as JSONL or
//! Chrome `chrome://tracing` JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod export;

pub use breakdown::{Breakdown, CoreBreakdown, CoreTotals};
pub use export::{to_chrome_trace, to_jsonl};

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Virtual time, in simulated core cycles (mirrors `cmcp_arch::Cycles`;
/// redeclared here so `cmcp-arch` itself can depend on this crate).
pub type Cycles = u64;

/// Core number used for maintenance events (scan timer, PSPT rebuilds)
/// that no application core is responsible for.
pub const MAINTENANCE_CORE: u16 = u16::MAX;

/// What happened. The `a`/`b` payload fields of [`Event`] are
/// kind-specific; the meanings below are load-bearing for
/// [`breakdown`]'s validation against the kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A page fault began. `ts` = fault entry, `a` = faulting page.
    FaultStart = 0,
    /// A page fault completed. `ts` = fault exit, `a` = resolution
    /// (0 major, 1 minor copy, 2 spurious), `b` = cycles the fault
    /// took — the exact amount added to `CoreStats.fault_cycles`.
    FaultEnd = 1,
    /// The page-table lock was acquired. `ts` = request time,
    /// `a` = queueing delay (the `lock_wait_cycles` increment),
    /// `b` = hold duration.
    LockAcquire = 2,
    /// The page-table lock was released. `ts` = release time.
    LockRelease = 3,
    /// The replacement policy chose a victim. `a` = victim head page,
    /// `b` = `(core_map_count << 8) | policy_group` where group is
    /// 0 untracked, 1 FIFO/default, 2 CMCP priority.
    VictimSelect = 4,
    /// A TLB shootdown was initiated. Emitted on the requesting core;
    /// `a` = cycles charged to the requester (the `shootdown_cycles`
    /// increment), `b` = number of target cores.
    ShootdownSend = 5,
    /// A shootdown interrupt landed on a target core. `a` = page,
    /// `b` = cycles charged remotely to that core.
    ShootdownAck = 6,
    /// A DMA transfer was queued. `a` = bytes, `b` = direction
    /// (0 host→device page-in, 1 device→host write-back).
    DmaEnqueue = 7,
    /// A DMA transfer finished from the waiting core's perspective.
    /// `a` = stall cycles charged (the `dma_wait_cycles` increment),
    /// `b` = direction as in [`EventKind::DmaEnqueue`].
    DmaComplete = 8,
    /// An accessed-bit scan pass over one block's mappers.
    /// `a` = PTEs examined, `b` = cycles charged (0 when the scan ran
    /// on the maintenance timer rather than inside a fault).
    PolicyScan = 9,
    /// A core invalidated one of its own TLB entries while draining
    /// its shootdown mailbox. `a` = page, `b` = 1 if the entry was
    /// actually present.
    TlbInvalidate = 10,
    /// A core left a barrier. `ts` = release time, `a` = barrier id
    /// (op index), `b` = cycles spent waiting.
    BarrierArrive = 11,
    /// A full PSPT rebuild ran. `a` = blocks rebuilt.
    Rebuild = 12,
    /// A host-side residency stripe lock was taken on the fault path.
    /// `a` = stripe index, `b` = 0 — host locks add **zero** virtual
    /// cycles; the event exists so host-contention analyses line up
    /// with `CoreStats.shard_lock_acquires` exactly.
    ShardLock = 13,
    /// The fault-injection layer fired at some site. `a` = site code
    /// (see `cmcp_arch::FaultSite`), `b` = attempt index at which the
    /// fault hit (0 = first try). Counted against
    /// `CoreStats.faults_injected`; charges no cycles itself — the
    /// paired `Retry`/`DmaComplete` events carry the time.
    FaultInjected = 14,
    /// A recovery retry backed off in virtual time. `a` = backoff
    /// cycles charged (the exact `retry_backoff_cycles` increment),
    /// `b` = site code being retried. Emitted only on the fault path
    /// (inside a fault window), so `a` is a component of
    /// `fault_cycles` in the breakdown.
    Retry = 15,
    /// A frame was quarantined after an unrecoverable page-in DMA
    /// error. `a` = frame head page, `b` = faulting block head page.
    /// Counted against `CoreStats.quarantines`; zero cycles.
    Quarantine = 16,
    /// A backing-tier access charged its latency/bandwidth penalty on
    /// top of the DMA link time. `a` = penalty cycles charged (the exact
    /// `tier_penalty_cycles` increment), `b` = tier index. Never emitted
    /// by flat single-tier runs (tier 0 is free there).
    TierPenalty = 17,
    /// A page-table replica was brought in sync (fault path: a node's
    /// first mapping core pulled a replica) or invalidated (eviction
    /// path: a replica-holding node was told to drop the entry).
    /// `a` = cycles charged to the acting core (the exact
    /// `replica_sync_cycles` increment), `b` = `(op << 8) | node` where
    /// op is 0 for a sync and 1 for an invalidation. Never emitted by
    /// single-node runs.
    ReplicaSync = 18,
    /// A block's home node migrated toward its CMCP map-count-weighted
    /// access center. `a` = cycles charged to the faulting core (the
    /// exact `migration_cycles` increment: inter-node link latency plus
    /// the bandwidth term), `b` = `(from_node << 8) | to_node`. Never
    /// emitted by single-node runs.
    Migration = 19,
}

impl EventKind {
    /// Stable lower-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FaultStart => "fault_start",
            EventKind::FaultEnd => "fault_end",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockRelease => "lock_release",
            EventKind::VictimSelect => "victim_select",
            EventKind::ShootdownSend => "shootdown_send",
            EventKind::ShootdownAck => "shootdown_ack",
            EventKind::DmaEnqueue => "dma_enqueue",
            EventKind::DmaComplete => "dma_complete",
            EventKind::PolicyScan => "policy_scan",
            EventKind::TlbInvalidate => "tlb_invalidate",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::Rebuild => "rebuild",
            EventKind::ShardLock => "shard_lock",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Retry => "retry",
            EventKind::Quarantine => "quarantine",
            EventKind::TierPenalty => "tier_penalty",
            EventKind::ReplicaSync => "replica_sync",
            EventKind::Migration => "migration",
        }
    }

    fn from_code(code: u8) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::FaultStart,
            1 => EventKind::FaultEnd,
            2 => EventKind::LockAcquire,
            3 => EventKind::LockRelease,
            4 => EventKind::VictimSelect,
            5 => EventKind::ShootdownSend,
            6 => EventKind::ShootdownAck,
            7 => EventKind::DmaEnqueue,
            8 => EventKind::DmaComplete,
            9 => EventKind::PolicyScan,
            10 => EventKind::TlbInvalidate,
            11 => EventKind::BarrierArrive,
            12 => EventKind::Rebuild,
            13 => EventKind::ShardLock,
            14 => EventKind::FaultInjected,
            15 => EventKind::Retry,
            16 => EventKind::Quarantine,
            17 => EventKind::TierPenalty,
            18 => EventKind::ReplicaSync,
            19 => EventKind::Migration,
            _ => return None,
        })
    }
}

/// One recorded moment: four words, fixed size, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual timestamp on the emitting core's clock.
    pub ts: Cycles,
    /// Emitting core, or [`MAINTENANCE_CORE`].
    pub core: u16,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific payload word (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific payload word (see [`EventKind`]).
    pub b: u64,
}

/// A sink for trace events. Implementations must be callable from
/// concurrently running simulation threads without locking the fault
/// path.
pub trait Recorder: Sync {
    /// `false` means `record` is a no-op and call sites skip computing
    /// event arguments entirely (the zero-cost path).
    const ENABLED: bool;

    /// Records one event. `core` may be [`MAINTENANCE_CORE`].
    fn record(&self, core: u16, ts: Cycles, kind: EventKind, a: u64, b: u64);

    /// All surviving events, merged across cores and sorted by
    /// timestamp. Call only after the run has quiesced.
    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    /// How many events were overwritten because a ring filled up.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The default recorder: does nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Recorder for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _core: u16, _ts: Cycles, _kind: EventKind, _a: u64, _b: u64) {}
}

/// One core's fixed-capacity event ring.
///
/// Writers claim a slot with a single `fetch_add` and then store the
/// four event words with relaxed atomics. When the ring wraps, the
/// oldest events are overwritten and counted as dropped. A slot being
/// overwritten concurrently with a lapped writer can tear — that is
/// acceptable because reads happen post-run, and any run that dropped
/// events already has its breakdown validation disabled.
///
/// ## Memory-ordering contract
///
/// Everything here is `Relaxed`, deliberately (model-checked by
/// `loom_tests` below; per-field table in DESIGN.md §10):
///
/// * `claimed.fetch_add(1, Relaxed)` — only the RMW's *atomicity* is
///   load-bearing: each writer gets a unique claim index, so two
///   writers never target the same slot until the ring laps. No
///   payload is published through `claimed`, so no Release is needed.
/// * Slot word stores/loads are `Relaxed` because readers
///   ([`EventRing::drain_into`], [`EventRing::dropped`]) run strictly
///   post-quiesce: the engine joins its worker threads before draining,
///   and the join edge is what makes every completed store visible.
///   Mid-run the only concurrent readers are lapped *writers*, and the
///   tearing they can produce is detected (not prevented) via
///   [`EventKind::from_code`] returning `None` on a half-written meta
///   word. Upgrading the stores to Release would not remove the tear —
///   only a seqlock or claim/commit protocol would, at per-event cost
///   the zero-drop fast path should not pay.
struct EventRing {
    /// Total slots ever claimed; `min(claimed, capacity)` slots hold data.
    claimed: AtomicU64,
    /// `[ts, meta, a, b]` per slot, `meta = core << 8 | kind`.
    slots: Vec<[AtomicU64; 4]>,
}

impl EventRing {
    fn new(capacity: usize) -> EventRing {
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push([
                AtomicU64::new(0),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ]);
        }
        EventRing {
            claimed: AtomicU64::new(0),
            slots,
        }
    }

    fn push(&self, core: u16, ts: Cycles, kind: EventKind, a: u64, b: u64) {
        let claim = self.claimed.fetch_add(1, Relaxed) as usize;
        let slot = &self.slots[claim % self.slots.len()];
        slot[0].store(ts, Relaxed);
        slot[1].store(((core as u64) << 8) | kind as u64, Relaxed);
        slot[2].store(a, Relaxed);
        slot[3].store(b, Relaxed);
    }

    fn dropped(&self) -> u64 {
        self.claimed
            .load(Relaxed)
            .saturating_sub(self.slots.len() as u64)
    }

    fn drain_into(&self, out: &mut Vec<Event>) {
        let claimed = self.claimed.load(Relaxed) as usize;
        let live = claimed.min(self.slots.len());
        for i in 0..live {
            // After a wrap the ring's oldest event sits at `claimed %
            // len`; before one, slot order is claim order from 0.
            let idx = if claimed > self.slots.len() {
                (claimed + i) % self.slots.len()
            } else {
                i
            };
            let slot = &self.slots[idx];
            let meta = slot[1].load(Relaxed);
            let Some(kind) = EventKind::from_code((meta & 0xff) as u8) else {
                continue; // torn slot from a lapped writer
            };
            out.push(Event {
                ts: slot[0].load(Relaxed),
                core: (meta >> 8) as u16,
                kind,
                a: slot[2].load(Relaxed),
                b: slot[3].load(Relaxed),
            });
        }
    }
}

/// Per-core ring-buffer recorder: `cores` application rings plus one
/// maintenance ring, each holding `capacity_per_core` events.
pub struct RingTracer {
    rings: Vec<EventRing>,
}

impl RingTracer {
    /// A tracer for `cores` application cores, each ring (and the
    /// maintenance ring) holding `capacity_per_core` events.
    pub fn new(cores: usize, capacity_per_core: usize) -> RingTracer {
        assert!(capacity_per_core > 0, "ring capacity must be positive");
        let rings = (0..cores + 1)
            .map(|_| EventRing::new(capacity_per_core))
            .collect();
        RingTracer { rings }
    }

    fn ring_for(&self, core: u16) -> &EventRing {
        let last = self.rings.len() - 1;
        let idx = if core == MAINTENANCE_CORE {
            last
        } else {
            (core as usize).min(last)
        };
        &self.rings[idx]
    }
}

impl Recorder for RingTracer {
    const ENABLED: bool = true;

    fn record(&self, core: u16, ts: Cycles, kind: EventKind, a: u64, b: u64) {
        self.ring_for(core).push(core, ts, kind, a, b);
    }

    fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.drain_into(&mut out);
        }
        out.sort_by_key(|e| (e.ts, e.core, e.kind as u8));
        out
    }

    fn dropped(&self) -> u64 {
        self.rings.iter().map(EventRing::dropped).sum()
    }
}

/// Forwarding impl so engines can take `&impl Recorder` internally.
impl<R: Recorder> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn record(&self, core: u16, ts: Cycles, kind: EventKind, a: u64, b: u64) {
        (**self).record(core, ts, kind, a, b);
    }

    fn events(&self) -> Vec<Event> {
        (**self).events()
    }

    fn dropped(&self) -> u64 {
        (**self).dropped()
    }
}

// Gated `not(loom)`: under `--cfg loom` the ring's atomics only work
// inside `loom::model`; the bounded-interleaving versions of these
// scenarios live in `loom_tests` below.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(tracer: &RingTracer, core: u16, ts: u64) {
        tracer.record(core, ts, EventKind::TlbInvalidate, ts, 1);
    }

    #[test]
    fn events_come_back_sorted_by_time() {
        let t = RingTracer::new(2, 16);
        ev(&t, 1, 30);
        ev(&t, 0, 10);
        ev(&t, 1, 20);
        let evs = t.events();
        assert_eq!(
            evs.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = RingTracer::new(1, 4);
        for ts in 0..10 {
            ev(&t, 0, ts);
        }
        assert_eq!(t.dropped(), 6);
        let evs = t.events();
        // The four survivors are the newest four, in order.
        assert_eq!(
            evs.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn maintenance_core_routes_to_extra_ring() {
        let t = RingTracer::new(1, 2);
        ev(&t, 0, 1);
        ev(&t, 0, 2);
        t.record(MAINTENANCE_CORE, 3, EventKind::PolicyScan, 8, 0);
        // Core 0's ring is full but the maintenance ring is not.
        assert_eq!(t.dropped(), 0);
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[2].core, MAINTENANCE_CORE);
        assert_eq!(evs[2].kind, EventKind::PolicyScan);
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        let t = RingTracer::new(4, 1024);
        std::thread::scope(|s| {
            for core in 0u16..4 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..500 {
                        t.record(core, i, EventKind::FaultStart, i, 0);
                    }
                });
            }
        });
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().len(), 2000);
    }

    #[test]
    fn payload_round_trips() {
        let t = RingTracer::new(1, 4);
        t.record(0, 123, EventKind::VictimSelect, 456, (7 << 8) | 2);
        let evs = t.events();
        assert_eq!(
            evs[0],
            Event {
                ts: 123,
                core: 0,
                kind: EventKind::VictimSelect,
                a: 456,
                b: (7 << 8) | 2
            }
        );
    }

    #[test]
    fn null_tracer_reports_nothing() {
        let n = NullTracer;
        n.record(0, 1, EventKind::FaultStart, 0, 0);
        assert!(n.events().is_empty());
        assert_eq!(n.dropped(), 0);
        const { assert!(!NullTracer::ENABLED) };
    }
}

/// Bounded model checks of the ring's all-Relaxed contract (see the
/// [`EventRing`] docs). Run with `make test-loom`.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    /// Claim uniqueness: two racing writers within capacity never
    /// collide on a slot, so after the post-join edge both events are
    /// intact and distinguishable — in every interleaving and for every
    /// Relaxed-permitted read the drain could make.
    #[test]
    fn loom_racing_writers_claim_distinct_slots() {
        loom::model(|| {
            let t = Arc::new(RingTracer::new(1, 4));
            let t2 = Arc::clone(&t);
            let h = thread::spawn(move || {
                t2.record(0, 10, EventKind::FaultStart, 1, 0);
            });
            t.record(0, 20, EventKind::FaultEnd, 2, 0);
            h.join().unwrap();
            assert_eq!(t.dropped(), 0);
            let evs = t.events();
            let mut payloads: Vec<u64> = evs.iter().map(|e| e.a).collect();
            payloads.sort_unstable();
            assert_eq!(payloads, vec![1, 2], "a claim was shared or lost");
        });
    }

    /// Wraparound: two writers pushing two events each into a two-slot
    /// ring always account exactly two drops, and the post-quiesce
    /// drain never yields more than capacity events nor an undecodable
    /// kind (torn slots are skipped, not surfaced).
    #[test]
    fn loom_wraparound_counts_drops_and_skips_torn_slots() {
        loom::model(|| {
            let t = Arc::new(RingTracer::new(1, 2));
            let t2 = Arc::clone(&t);
            let h = thread::spawn(move || {
                t2.record(0, 1, EventKind::FaultStart, 11, 0);
                t2.record(0, 2, EventKind::FaultEnd, 12, 0);
            });
            t.record(0, 3, EventKind::DmaEnqueue, 13, 0);
            t.record(0, 4, EventKind::DmaComplete, 14, 0);
            h.join().unwrap();
            assert_eq!(t.dropped(), 2, "4 claims into 2 slots");
            let evs = t.events();
            assert!(evs.len() <= 2, "drain yielded more than capacity");
            for e in &evs {
                assert!((11..=14).contains(&e.a), "payload from nowhere: {}", e.a);
            }
        });
    }
}
