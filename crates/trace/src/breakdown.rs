//! Span aggregation: fold a raw event stream into a per-core cycle
//! decomposition of the fault path, and validate it against the
//! kernel's own `CoreStats` counters.
//!
//! The decomposition is **exact by construction**: every component
//! event carries the same cycle amount the kernel added to the
//! corresponding counter (see the `EventKind` payload docs), so per
//! core the traced spans must sum to the counters — unless the tracer
//! dropped events, in which case validation is skipped and
//! [`Breakdown::validated`] stays `false`.

use serde::{Deserialize, Serialize};

use crate::{Event, EventKind, MAINTENANCE_CORE};

/// The kernel-side counters one core accumulated during a run — the
/// ground truth the traced decomposition is checked against. Built by
/// the reporting layer from `CoreStatsSnapshot` (this crate cannot see
/// the kernel's types; the kernel depends on it, not vice versa).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreTotals {
    /// Page faults taken.
    pub page_faults: u64,
    /// Cycles inside the fault handler.
    pub fault_cycles: u64,
    /// Cycles stalled on DMA completions.
    pub dma_wait_cycles: u64,
    /// Cycles charged as backing-tier latency/bandwidth penalties.
    pub tier_penalty_cycles: u64,
    /// Cycles initiating TLB shootdowns.
    pub shootdown_cycles: u64,
    /// Cycles queued on the page-table lock.
    pub lock_wait_cycles: u64,
    /// Host-side residency stripe-lock acquisitions (zero cycles).
    pub shard_lock_acquires: u64,
    /// Faults injected against this core by the fault plan.
    pub faults_injected: u64,
    /// Recovery retries this core performed after injected faults.
    pub fault_retries: u64,
    /// Cycles spent in retry backoff (a `fault_cycles` component).
    pub retry_backoff_cycles: u64,
    /// Frames this core moved to the quarantine list.
    pub quarantines: u64,
    /// Cycles charged keeping page-table replicas coherent (syncs on
    /// faults, invalidations on evictions; zero on single-node runs).
    pub replica_sync_cycles: u64,
    /// Cycles charged migrating blocks between home nodes (zero on
    /// single-node runs).
    pub migration_cycles: u64,
}

/// One core's traced cycle decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreBreakdown {
    /// Core number.
    pub core: u64,
    /// Faults traced (`FaultStart` count).
    pub faults: u64,
    /// Total cycles inside the fault handler (`FaultEnd` spans).
    pub fault_cycles: u64,
    /// ... of which: queued on the page-table lock.
    pub lock_wait_cycles: u64,
    /// ... of which: holding the page-table lock.
    pub lock_hold_cycles: u64,
    /// ... of which: initiating TLB shootdowns.
    pub shootdown_cycles: u64,
    /// ... of which: stalled on DMA.
    pub dma_wait_cycles: u64,
    /// ... of which: backing-tier latency/bandwidth penalties
    /// (`TierPenalty` payload sum; zero on flat single-tier runs).
    pub tier_penalty_cycles: u64,
    /// ... of which: scanning accessed bits for the policy.
    pub policy_scan_cycles: u64,
    /// ... of which: everything else (allocation, PTE updates, copies,
    /// and remote-interrupt debt folded into the fault window).
    pub other_cycles: u64,
    /// Shootdown interrupts received from other cores.
    pub shootdown_acks: u64,
    /// Cycles charged by those received shootdowns.
    pub ack_cycles: u64,
    /// Own-TLB entries invalidated while draining the mailbox.
    pub tlb_invalidations: u64,
    /// Host-side residency stripe-lock acquisitions (`ShardLock` count;
    /// contributes no cycles — host locks are free in virtual time).
    pub shard_lock_acquires: u64,
    /// Cycles spent waiting at barriers.
    pub barrier_wait_cycles: u64,
    /// Injected faults observed on this core (`FaultInjected` count).
    pub faults_injected: u64,
    /// Recovery retries (`Retry` count).
    pub fault_retries: u64,
    /// ... of which fault cycles: exponential-backoff delay charged by
    /// retries (`Retry` payload sum).
    pub retry_backoff_cycles: u64,
    /// Frames quarantined (`Quarantine` count; zero cycles).
    pub quarantines: u64,
    /// ... of which fault cycles: page-table replica coherence
    /// (`ReplicaSync` payload sum; zero on single-node runs).
    pub replica_sync_cycles: u64,
    /// ... of which fault cycles: home-node page migrations
    /// (`Migration` payload sum; zero on single-node runs).
    pub migration_cycles: u64,
}

/// A whole run's traced decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Per-core decompositions, indexed by core number.
    pub per_core: Vec<CoreBreakdown>,
    /// Events overwritten by ring wraparound; `> 0` disables validation.
    pub dropped_events: u64,
    /// Whether the decomposition was checked against (and matched) the
    /// kernel's counters.
    pub validated: bool,
}

impl Breakdown {
    /// Aggregates an event stream into per-core spans. Events from
    /// [`MAINTENANCE_CORE`] or beyond `cores` contribute nothing to the
    /// per-core rows (the maintenance scan timer charges no core).
    pub fn from_events(events: &[Event], cores: usize, dropped_events: u64) -> Breakdown {
        let mut per_core: Vec<CoreBreakdown> = (0..cores)
            .map(|c| CoreBreakdown {
                core: c as u64,
                ..CoreBreakdown::default()
            })
            .collect();
        for e in events {
            if e.core == MAINTENANCE_CORE || (e.core as usize) >= cores {
                continue;
            }
            let row = &mut per_core[e.core as usize];
            match e.kind {
                EventKind::FaultStart => row.faults += 1,
                EventKind::FaultEnd => row.fault_cycles += e.b,
                EventKind::LockAcquire => {
                    row.lock_wait_cycles += e.a;
                    row.lock_hold_cycles += e.b;
                }
                EventKind::ShootdownSend => row.shootdown_cycles += e.a,
                EventKind::ShootdownAck => {
                    row.shootdown_acks += 1;
                    row.ack_cycles += e.b;
                }
                EventKind::DmaComplete => row.dma_wait_cycles += e.a,
                EventKind::TierPenalty => row.tier_penalty_cycles += e.a,
                EventKind::PolicyScan => row.policy_scan_cycles += e.b,
                EventKind::TlbInvalidate => row.tlb_invalidations += 1,
                EventKind::BarrierArrive => row.barrier_wait_cycles += e.b,
                EventKind::ShardLock => row.shard_lock_acquires += 1,
                EventKind::FaultInjected => row.faults_injected += 1,
                EventKind::Retry => {
                    row.fault_retries += 1;
                    row.retry_backoff_cycles += e.a;
                }
                EventKind::Quarantine => row.quarantines += 1,
                EventKind::ReplicaSync => row.replica_sync_cycles += e.a,
                EventKind::Migration => row.migration_cycles += e.a,
                EventKind::LockRelease
                | EventKind::VictimSelect
                | EventKind::DmaEnqueue
                | EventKind::Rebuild => {}
            }
        }
        for row in &mut per_core {
            let components = row.lock_wait_cycles
                + row.lock_hold_cycles
                + row.shootdown_cycles
                + row.dma_wait_cycles
                + row.tier_penalty_cycles
                + row.policy_scan_cycles
                + row.retry_backoff_cycles
                + row.replica_sync_cycles
                + row.migration_cycles;
            row.other_cycles = row.fault_cycles.saturating_sub(components);
        }
        Breakdown {
            per_core,
            dropped_events,
            validated: false,
        }
    }

    /// Checks the traced decomposition against the kernel's counters,
    /// core by core. Returns the first mismatch as an error. Must not
    /// be called when [`Breakdown::dropped_events`] is non-zero — with
    /// events lost the sums cannot be expected to match.
    pub fn validate(&self, totals: &[CoreTotals]) -> Result<(), String> {
        if self.dropped_events > 0 {
            return Err(format!(
                "{} events dropped; decomposition is incomplete",
                self.dropped_events
            ));
        }
        if self.per_core.len() != totals.len() {
            return Err(format!(
                "breakdown covers {} cores, kernel reports {}",
                self.per_core.len(),
                totals.len()
            ));
        }
        for (row, t) in self.per_core.iter().zip(totals) {
            let checks = [
                ("page_faults", row.faults, t.page_faults),
                ("fault_cycles", row.fault_cycles, t.fault_cycles),
                ("lock_wait_cycles", row.lock_wait_cycles, t.lock_wait_cycles),
                ("shootdown_cycles", row.shootdown_cycles, t.shootdown_cycles),
                ("dma_wait_cycles", row.dma_wait_cycles, t.dma_wait_cycles),
                (
                    "tier_penalty_cycles",
                    row.tier_penalty_cycles,
                    t.tier_penalty_cycles,
                ),
                (
                    "shard_lock_acquires",
                    row.shard_lock_acquires,
                    t.shard_lock_acquires,
                ),
                ("faults_injected", row.faults_injected, t.faults_injected),
                ("fault_retries", row.fault_retries, t.fault_retries),
                (
                    "retry_backoff_cycles",
                    row.retry_backoff_cycles,
                    t.retry_backoff_cycles,
                ),
                ("quarantines", row.quarantines, t.quarantines),
                (
                    "replica_sync_cycles",
                    row.replica_sync_cycles,
                    t.replica_sync_cycles,
                ),
                ("migration_cycles", row.migration_cycles, t.migration_cycles),
            ];
            for (name, traced, counted) in checks {
                if traced != counted {
                    return Err(format!(
                        "core {}: traced {name} = {traced} but kernel counted {counted}",
                        row.core
                    ));
                }
            }
        }
        Ok(())
    }

    /// `validate`, recording the outcome in [`Breakdown::validated`].
    /// Skips (leaving `validated == false`) when events were dropped.
    pub fn validate_against(mut self, totals: &[CoreTotals]) -> Result<Breakdown, String> {
        if self.dropped_events > 0 {
            return Ok(self); // incomplete trace: nothing to assert
        }
        self.validate(totals)?;
        self.validated = true;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn e(core: u16, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            ts: 0,
            core,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn components_and_other_sum_to_fault_cycles() {
        let events = [
            e(0, EventKind::FaultStart, 7, 0),
            e(0, EventKind::LockAcquire, 10, 20),
            e(0, EventKind::ShootdownSend, 5, 2),
            e(0, EventKind::DmaComplete, 40, 0),
            e(0, EventKind::PolicyScan, 3, 9),
            e(0, EventKind::FaultEnd, 0, 100),
        ];
        let b = Breakdown::from_events(&events, 1, 0);
        let row = &b.per_core[0];
        assert_eq!(row.faults, 1);
        assert_eq!(row.fault_cycles, 100);
        assert_eq!(row.other_cycles, 100 - 10 - 20 - 5 - 40 - 9);
        assert_eq!(
            row.lock_wait_cycles
                + row.lock_hold_cycles
                + row.shootdown_cycles
                + row.dma_wait_cycles
                + row.policy_scan_cycles
                + row.other_cycles,
            row.fault_cycles
        );
    }

    #[test]
    fn validation_matches_exact_totals() {
        let events = [
            e(0, EventKind::FaultStart, 7, 0),
            e(0, EventKind::LockAcquire, 10, 20),
            e(0, EventKind::DmaComplete, 40, 0),
            e(0, EventKind::FaultEnd, 0, 100),
        ];
        let totals = [CoreTotals {
            page_faults: 1,
            fault_cycles: 100,
            dma_wait_cycles: 40,
            shootdown_cycles: 0,
            lock_wait_cycles: 10,
            ..CoreTotals::default()
        }];
        let b = Breakdown::from_events(&events, 1, 0)
            .validate_against(&totals)
            .unwrap();
        assert!(b.validated);
    }

    #[test]
    fn validation_reports_the_mismatching_counter() {
        let events = [e(0, EventKind::FaultEnd, 0, 100)];
        let totals = [CoreTotals {
            fault_cycles: 90,
            ..CoreTotals::default()
        }];
        let err = Breakdown::from_events(&events, 1, 0)
            .validate(&totals)
            .unwrap_err();
        assert!(err.contains("fault_cycles"), "unexpected error: {err}");
    }

    #[test]
    fn dropped_events_skip_validation() {
        let totals = [CoreTotals::default()];
        let b = Breakdown::from_events(&[e(0, EventKind::FaultEnd, 0, 5)], 1, 3)
            .validate_against(&totals)
            .unwrap();
        assert!(!b.validated);
        assert_eq!(b.dropped_events, 3);
        // Direct validation refuses outright.
        assert!(Breakdown::from_events(&[], 1, 3).validate(&totals).is_err());
    }

    #[test]
    fn shard_locks_are_counted_but_cost_nothing() {
        let events = [
            e(0, EventKind::ShardLock, 17, 0),
            e(0, EventKind::ShardLock, 3, 0),
            e(0, EventKind::FaultEnd, 0, 50),
        ];
        let totals = [CoreTotals {
            fault_cycles: 50,
            shard_lock_acquires: 2,
            ..CoreTotals::default()
        }];
        let b = Breakdown::from_events(&events, 1, 0)
            .validate_against(&totals)
            .unwrap();
        assert!(b.validated);
        assert_eq!(b.per_core[0].shard_lock_acquires, 2);
        assert_eq!(b.per_core[0].other_cycles, 50, "host locks are free");
        // A count mismatch is caught.
        let wrong = [CoreTotals {
            fault_cycles: 50,
            shard_lock_acquires: 1,
            ..CoreTotals::default()
        }];
        let err = Breakdown::from_events(&events, 1, 0)
            .validate(&wrong)
            .unwrap_err();
        assert!(err.contains("shard_lock_acquires"), "unexpected: {err}");
    }

    #[test]
    fn fault_spans_decompose_and_validate() {
        let events = [
            e(0, EventKind::FaultStart, 7, 0),
            e(0, EventKind::FaultInjected, 1, 0), // DMA-out error, attempt 0
            e(0, EventKind::Retry, 30, 1),        // 30-cycle backoff
            e(0, EventKind::FaultInjected, 4, 1), // ENOSPC
            e(0, EventKind::Retry, 60, 4),
            e(0, EventKind::Quarantine, 9, 5),
            e(0, EventKind::DmaComplete, 40, 1),
            e(0, EventKind::FaultEnd, 0, 200),
        ];
        let b = Breakdown::from_events(&events, 1, 0);
        let row = &b.per_core[0];
        assert_eq!(row.faults_injected, 2);
        assert_eq!(row.fault_retries, 2);
        assert_eq!(row.retry_backoff_cycles, 90);
        assert_eq!(row.quarantines, 1);
        assert_eq!(row.other_cycles, 200 - 40 - 90, "backoff is a component");
        let totals = [CoreTotals {
            page_faults: 1,
            fault_cycles: 200,
            dma_wait_cycles: 40,
            faults_injected: 2,
            fault_retries: 2,
            retry_backoff_cycles: 90,
            quarantines: 1,
            ..CoreTotals::default()
        }];
        let b = b.validate_against(&totals).unwrap();
        assert!(b.validated);
        // A retry-count mismatch is caught.
        let wrong = [CoreTotals {
            fault_retries: 3,
            ..totals[0]
        }];
        let err = Breakdown::from_events(&events, 1, 0)
            .validate(&wrong)
            .unwrap_err();
        assert!(err.contains("fault_retries"), "unexpected: {err}");
    }

    #[test]
    fn tier_penalties_are_a_fault_component() {
        let events = [
            e(0, EventKind::FaultStart, 7, 0),
            e(0, EventKind::DmaComplete, 40, 1),
            e(0, EventKind::TierPenalty, 25, 2), // 25 cycles against tier 2
            e(0, EventKind::FaultEnd, 0, 100),
        ];
        let b = Breakdown::from_events(&events, 1, 0);
        let row = &b.per_core[0];
        assert_eq!(row.tier_penalty_cycles, 25);
        assert_eq!(row.other_cycles, 100 - 40 - 25);
        let totals = [CoreTotals {
            page_faults: 1,
            fault_cycles: 100,
            dma_wait_cycles: 40,
            tier_penalty_cycles: 25,
            ..CoreTotals::default()
        }];
        assert!(b.validate_against(&totals).unwrap().validated);
        // A penalty mismatch is caught.
        let wrong = [CoreTotals {
            tier_penalty_cycles: 24,
            ..totals[0]
        }];
        let err = Breakdown::from_events(&events, 1, 0)
            .validate(&wrong)
            .unwrap_err();
        assert!(err.contains("tier_penalty_cycles"), "unexpected: {err}");
    }

    #[test]
    fn replica_and_migration_charges_are_fault_components() {
        let events = [
            e(0, EventKind::FaultStart, 7, 0),
            e(0, EventKind::ReplicaSync, 3200, 1), // sync node 1
            e(0, EventKind::ReplicaSync, 3200, (1 << 8) | 2), // invalidate node 2
            e(0, EventKind::Migration, 4200, 1), // home 0 → 1 ((from<<8)|to)
            e(0, EventKind::FaultEnd, 0, 20_000),
        ];
        let b = Breakdown::from_events(&events, 1, 0);
        let row = &b.per_core[0];
        assert_eq!(row.replica_sync_cycles, 6400);
        assert_eq!(row.migration_cycles, 4200);
        assert_eq!(row.other_cycles, 20_000 - 6400 - 4200);
        let totals = [CoreTotals {
            page_faults: 1,
            fault_cycles: 20_000,
            replica_sync_cycles: 6400,
            migration_cycles: 4200,
            ..CoreTotals::default()
        }];
        assert!(b.validate_against(&totals).unwrap().validated);
        // Either counter mismatching is caught.
        for (field, wrong) in [
            (
                "replica_sync_cycles",
                CoreTotals {
                    replica_sync_cycles: 6401,
                    ..totals[0]
                },
            ),
            (
                "migration_cycles",
                CoreTotals {
                    migration_cycles: 0,
                    ..totals[0]
                },
            ),
        ] {
            let err = Breakdown::from_events(&events, 1, 0)
                .validate(&[wrong])
                .unwrap_err();
            assert!(err.contains(field), "unexpected: {err}");
        }
    }

    #[test]
    fn maintenance_events_charge_no_core() {
        let events = [e(crate::MAINTENANCE_CORE, EventKind::PolicyScan, 64, 0)];
        let b = Breakdown::from_events(&events, 2, 0);
        assert!(b.per_core.iter().all(|r| r.policy_scan_cycles == 0));
    }

    #[test]
    fn serializes_through_the_report_path() {
        let b = Breakdown::from_events(&[e(0, EventKind::FaultEnd, 0, 5)], 1, 0);
        let json = serde_json::to_string(&b).unwrap();
        assert!(json.contains("\"per_core\""));
        assert!(json.contains("\"fault_cycles\":5"));
    }
}
