//! Trace serialization: newline-delimited JSON for machine consumption
//! and Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
//!
//! Both formats are rendered by hand — every field is an integer or a
//! static name, so going through a `Value` tree would only add
//! allocation. One virtual cycle is exported as one microsecond; the
//! KNC runs at ~1.05 GHz, so the displayed scale is ~1000x real time,
//! which keeps sub-microsecond fault phases visible in the viewer.

use std::fmt::Write as _;

use crate::{Event, EventKind, MAINTENANCE_CORE};

/// Renders events as JSONL: one `{"ts":..,"core":..,"kind":"..",
/// "a":..,"b":..}` object per line, in the given order.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        let _ = writeln!(
            out,
            "{{\"ts\":{},\"core\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.ts,
            e.core,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    out
}

/// Chrome trace viewer thread id used for maintenance events (`tid`
/// must fit the viewer's expectations better than 65535-as-core).
pub const CHROME_MAINTENANCE_TID: u16 = u16::MAX;

/// Renders events as a Chrome `trace_event` JSON document.
///
/// Fault windows become `"X"` (complete) events — `FaultStart` is
/// matched with the next `FaultEnd` on the same core, which is exact
/// because a simulated core handles one fault at a time. Everything
/// else becomes an `"i"` (instant) event carrying its payload words in
/// `args`. Cores map to threads of a single process; the maintenance
/// ring appears as a thread named `scan-timer`.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Thread naming metadata: one entry per core seen, plus scan-timer.
    let mut seen: Vec<u16> = events.iter().map(|e| e.core).collect();
    seen.sort_unstable();
    seen.dedup();
    for core in &seen {
        let name = if *core == MAINTENANCE_CORE {
            "scan-timer".to_string()
        } else {
            format!("core {core}")
        };
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{name}\"}}}}",
                tid(*core)
            ),
            &mut first,
        );
    }

    // Open fault per core (one outstanding fault max per core).
    let mut open: std::collections::HashMap<u16, &Event> = std::collections::HashMap::new();
    for e in events {
        match e.kind {
            EventKind::FaultStart => {
                open.insert(e.core, e);
            }
            EventKind::FaultEnd => {
                let start_ts = open.remove(&e.core).map_or_else(
                    || e.ts.saturating_sub(e.b), // unmatched: reconstruct from span
                    |s| s.ts,
                );
                emit(
                    format!(
                        "{{\"name\":\"fault\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"resolution\":{},\"cycles\":{}}}}}",
                        tid(e.core),
                        start_ts,
                        e.ts.saturating_sub(start_ts),
                        e.a,
                        e.b
                    ),
                    &mut first,
                );
            }
            _ => {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                        e.kind.name(),
                        tid(e.core),
                        e.ts,
                        e.a,
                        e.b
                    ),
                    &mut first,
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn tid(core: u16) -> u16 {
    if core == MAINTENANCE_CORE {
        CHROME_MAINTENANCE_TID
    } else {
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                ts: 10,
                core: 0,
                kind: EventKind::FaultStart,
                a: 99,
                b: 0,
            },
            Event {
                ts: 15,
                core: 0,
                kind: EventKind::DmaComplete,
                a: 4,
                b: 0,
            },
            Event {
                ts: 30,
                core: 0,
                kind: EventKind::FaultEnd,
                a: 0,
                b: 20,
            },
            Event {
                ts: 40,
                core: MAINTENANCE_CORE,
                kind: EventKind::PolicyScan,
                a: 8,
                b: 0,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v.get("ts").and_then(|t| t.as_u64()), Some(10));
        assert_eq!(
            v.get("kind"),
            Some(&serde_json::Value::Str("fault_start".into()))
        );
    }

    #[test]
    fn chrome_trace_pairs_fault_spans() {
        let text = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let serde_json::Value::Array(evs) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents is not an array");
        };
        let fault = evs
            .iter()
            .find(|e| e.get("ph") == Some(&serde_json::Value::Str("X".into())))
            .expect("one complete event");
        assert_eq!(fault.get("ts").and_then(|t| t.as_u64()), Some(10));
        assert_eq!(fault.get("dur").and_then(|d| d.as_u64()), Some(20));
        // The maintenance scan shows up as an instant on the named tid.
        assert!(text.contains("scan-timer"));
        assert!(text.contains("\"policy_scan\""));
    }

    #[test]
    fn unmatched_fault_end_reconstructs_its_start() {
        let events = [Event {
            ts: 100,
            core: 1,
            kind: EventKind::FaultEnd,
            a: 0,
            b: 25,
        }];
        let text = to_chrome_trace(&events);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let serde_json::Value::Array(evs) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents is not an array");
        };
        let fault = evs.iter().find(|e| e.get("dur").is_some()).unwrap();
        assert_eq!(fault.get("ts").and_then(|t| t.as_u64()), Some(75));
    }
}
