//! # cmcp-sim — execution engines
//!
//! Drives simulated cores through page-access traces against the
//! [`cmcp_kernel::Vmm`], accumulating virtual time.
//!
//! * [`trace`] — the workload representation: per-core op streams
//!   (page-granular access runs, compute delays, barriers).
//! * [`runner`] — one core's execution state: its TLB, its position in
//!   the trace, dirty-block tracking, invalidation draining.
//! * [`engine`] — the **deterministic engine**: always advances the core
//!   with the smallest virtual clock (min-heap), yielding bit-identical
//!   runs; used by all experiments and tests.
//! * [`parallel`] — the **parallel engine**: one OS thread per group of
//!   simulated cores (crossbeam scoped threads), statistically identical
//!   results, used for large sweeps.
//! * [`report`] — the merged run report: runtime, per-core Table-1
//!   counters, DMA/lock occupancy, sharing histogram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod trace;

pub use engine::run_deterministic;
pub use parallel::run_parallel;
pub use report::RunReport;
pub use trace::{CoreTrace, Op, Trace};
