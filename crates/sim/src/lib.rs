//! # cmcp-sim — the execution engine
//!
//! Drives simulated cores through page-access traces against the
//! [`cmcp_kernel::Vmm`], accumulating virtual time.
//!
//! * [`trace`] — the workload representation: per-core op streams
//!   (page-granular access runs, compute delays, barriers).
//! * [`runner`] — one core's execution state: its TLB, its position in
//!   the trace, dirty-block tracking, invalidation draining; advances
//!   freely to an epoch ceiling and *parks* at kernel entries.
//! * [`engine`] — the **unified sharded discrete-event engine**: cores
//!   partitioned over host workers, advancing in epoch windows bounded
//!   by the minimum cross-core interaction latency. Kernel effects
//!   commit in virtual-time stamp order — shard-local entries
//!   concurrently on all workers, cross-shard entries in a sequential
//!   reconciliation pass. One code path for every thread count;
//!   `(seed, config)` yields a byte-identical report whether run on 1
//!   thread or 8.
//! * [`report`] — the merged run report: runtime, per-core Table-1
//!   counters, DMA/lock occupancy, sharing histogram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod report;
pub mod runner;
pub mod trace;

pub use engine::{
    resolve_threads, run, run_deterministic, run_parallel, run_with_host_stats, HostScaling,
};
pub use report::{EngineScaling, NumaReport, RunReport, TierReport};
pub use trace::{CoreTrace, Op, Trace};
