//! The parallel engine: simulated cores distributed over real OS threads.
//!
//! Semantics match the deterministic engine — the same [`CoreRunner`]
//! executes the same trace against the same kernel — but cores advance
//! concurrently, so the order in which reservations hit the virtual-time
//! resources (DMA engine, page-table locks) and the order of policy
//! updates are scheduling-dependent. Totals are statistically identical;
//! bit-level reproducibility is the deterministic engine's job.
//!
//! Threading uses crossbeam scoped threads; each worker owns a disjoint
//! slice of cores and round-robins among them so a barrier never
//! deadlocks (a parked core's siblings on the same thread keep running).
//! Barriers are sense-reversing rendezvous over atomics in virtual time:
//! arrivals record their clock, the last arrival publishes the maximum,
//! and everyone resumes at that time.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use cmcp_arch::CoreId;
use cmcp_kernel::Vmm;
use cmcp_trace::{EventKind, Recorder};

use crate::report::RunReport;
use crate::runner::{CoreRunner, StepResult};
use crate::trace::Trace;

/// Maximum virtual-time lead a core may take over the globally slowest
/// live core. Conservative-PDES style throttling: reservation resources
/// (DMA engine, page-table locks) assume roughly time-ordered arrivals,
/// so unbounded skew would inflate queueing delays. One window is a few
/// dozen fault latencies — enough to keep every worker busy.
const SKEW_WINDOW: u64 = 100_000;

/// Policy updates buffered per core before the fault path takes the
/// policy mutex. Large enough to amortize the lock, small enough that
/// eviction decisions never run far behind the residency state.
const POLICY_BATCH: usize = 32;

/// One rendezvous barrier in virtual time.
struct VBarrier {
    arrived: AtomicUsize,
    release_at: AtomicU64,
    generation: AtomicUsize,
}

impl VBarrier {
    fn new() -> VBarrier {
        VBarrier {
            arrived: AtomicUsize::new(0),
            release_at: AtomicU64::new(0),
            generation: AtomicUsize::new(0),
        }
    }
}

struct BarrierSet {
    barriers: Vec<VBarrier>,
    parties: usize,
}

impl BarrierSet {
    fn new(count: usize, parties: usize) -> BarrierSet {
        BarrierSet {
            barriers: (0..count).map(|_| VBarrier::new()).collect(),
            parties,
        }
    }

    /// Records `clock` arriving at barrier `idx`. Returns `Some(release)`
    /// once the barrier is open, `None` while arrivals are outstanding.
    ///
    /// Ordering proof (concurrency-audit; per-field table in DESIGN.md
    /// §10): each arrival's `fetch_max` happens-before its own `AcqRel`
    /// `fetch_add`, and the RMW chain on `arrived` orders every earlier
    /// arrival's `fetch_max` before the final arrival's increment — so
    /// by the time the last party writes `generation` with `Release`,
    /// all `parties` clock contributions are in `release_at`. A waiter
    /// that sees `generation == 1` through its `Acquire` load therefore
    /// reads the fully-maxed release clock; `release_at`'s own `Acquire`
    /// is margin on top of that edge.
    fn arrive(&self, idx: usize, clock: u64) -> Option<u64> {
        let b = &self.barriers[idx];
        b.release_at.fetch_max(clock, Ordering::AcqRel);
        let n = b.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.parties {
            b.generation.store(1, Ordering::Release);
        }
        self.poll(idx)
    }

    /// Checks whether barrier `idx` has opened. `generation` is the
    /// Acquire side of the open/closed publish (see [`BarrierSet::arrive`]).
    fn poll(&self, idx: usize) -> Option<u64> {
        let b = &self.barriers[idx];
        if b.generation.load(Ordering::Acquire) == 1 {
            Some(b.release_at.load(Ordering::Acquire))
        } else {
            None
        }
    }
}

/// Signals the surviving workers when one panics. Without this a dead
/// worker's cores stay `running` with frozen clocks, the skew horizon
/// freezes, and every other worker spins forever — the run wedges
/// instead of failing (and under a capturing test harness the panic
/// message never even prints). The flag flips on unwind; survivors bail
/// out at the top of their loop, the scope join completes, and the
/// original panic propagates.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    /// Waiting on barrier `k` (arrival already recorded).
    Blocked(usize),
    Finished,
}

/// Runs `trace` against `vmm` on `threads` worker threads.
///
/// `threads = 0` selects the available parallelism.
pub fn run_parallel<R: Recorder>(vmm: &Vmm<R>, trace: &Trace, threads: usize) -> RunReport {
    trace.validate().expect("invalid trace");
    let n = trace.cores.len();
    assert_eq!(
        n,
        vmm.config().cores,
        "trace core count must match kernel config"
    );

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n)
    } else {
        threads.min(n)
    };
    let barrier_count = trace.cores[0].barriers();
    let barriers = BarrierSet::new(barrier_count, n);

    // Batch policy updates so the fault path touches the policy mutex
    // once per K faults instead of once per fault. Order inside a batch
    // is sequence-stamped, so totals are unaffected; only the host-side
    // contention profile changes.
    vmm.set_policy_batch(POLICY_BATCH);

    // The scan timer in parallel mode: any worker whose minimum local
    // clock crosses the boundary fires the tick (CAS-elected). PSPT
    // rebuilding uses the same election.
    let next_scan = AtomicU64::new(vmm.scan_period());
    let scanning = vmm.wants_periodic_scan();
    let rebuild_period = vmm.rebuild_period();
    let next_rebuild = AtomicU64::new(rebuild_period);

    let mut runner_slots: Vec<Option<CoreRunner>> = (0..n)
        .map(|c| Some(CoreRunner::new(CoreId(c as u16), vmm)))
        .collect();

    // Only *running* cores bound the skew window: a core parked at a
    // barrier (or finished) has a frozen clock that others must
    // legitimately overtake to reach the rendezvous themselves.
    // All accesses are Relaxed by design: the flags feed a conservative
    // throttle heuristic, never a correctness decision — a stale read
    // only widens or narrows the skew horizon for one iteration.
    let running: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let aborted = AtomicBool::new(false);
    let min_running_clock = |vmm: &Vmm<R>| -> u64 {
        let mut min = u64::MAX;
        for (i, c) in vmm.clocks().iter().enumerate() {
            if running[i].load(Ordering::Relaxed) {
                min = min.min(c.now());
            }
        }
        min
    };

    crossbeam::scope(|scope| {
        let mut chunks: Vec<Vec<(usize, &mut Option<CoreRunner>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, slot) in runner_slots.iter_mut().enumerate() {
            chunks[i % threads].push((i, slot));
        }
        for chunk in chunks {
            let barriers = &barriers;
            let next_scan = &next_scan;
            let next_rebuild = &next_rebuild;
            let running = &running;
            let aborted = &aborted;
            let min_running_clock = &min_running_clock;
            scope.spawn(move |_| {
                let _abort_guard = AbortOnPanic(aborted);
                let mut cores: Vec<(usize, &mut CoreRunner)> = chunk
                    .into_iter()
                    .map(|(i, s)| (i, s.as_mut().unwrap()))
                    .collect();
                let mut state: Vec<CoreState> = vec![CoreState::Running; cores.len()];
                let mut next_barrier: Vec<usize> = vec![0; cores.len()];
                let mut live = cores.len();
                while live > 0 && !aborted.load(Ordering::Acquire) {
                    let mut progressed = false;
                    let horizon = min_running_clock(vmm).saturating_add(SKEW_WINDOW);
                    for k in 0..cores.len() {
                        let (core_idx, runner) = (cores[k].0, &mut *cores[k].1);
                        match state[k] {
                            CoreState::Finished => continue,
                            CoreState::Blocked(b) => {
                                if let Some(release) = barriers.poll(b) {
                                    if R::ENABLED {
                                        let arrived = vmm.clocks()[core_idx].now();
                                        vmm.tracer().record(
                                            core_idx as u16,
                                            release,
                                            EventKind::BarrierArrive,
                                            b as u64,
                                            release.saturating_sub(arrived),
                                        );
                                    }
                                    vmm.clocks()[core_idx].advance_to(release);
                                    state[k] = CoreState::Running;
                                    running[core_idx].store(true, Ordering::Relaxed);
                                    progressed = true;
                                }
                                continue;
                            }
                            CoreState::Running => {}
                        }
                        // Conservative throttle: don't run a core that is
                        // already a full window ahead of the slowest.
                        if vmm.clocks()[core_idx].now() > horizon {
                            continue;
                        }
                        progressed = true;
                        // The scan/rebuild elections are Relaxed on
                        // purpose: only the CAS's atomicity matters
                        // (exactly one winner per due period). The work
                        // the winner then does synchronizes through the
                        // page-table locks it takes, not through this
                        // counter, so no Release/Acquire pairing is
                        // needed here (audit: DESIGN.md §10).
                        if scanning {
                            let now = vmm.clocks()[core_idx].now();
                            let due = next_scan.load(Ordering::Relaxed);
                            if now >= due
                                && next_scan
                                    .compare_exchange(
                                        due,
                                        due + vmm.scan_period(),
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                vmm.scan_tick();
                            }
                        }
                        if rebuild_period > 0 {
                            let now = vmm.clocks()[core_idx].now();
                            let due = next_rebuild.load(Ordering::Relaxed);
                            if now >= due
                                && next_rebuild
                                    .compare_exchange(
                                        due,
                                        due + rebuild_period,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                vmm.rebuild_pspt();
                            }
                        }
                        match runner.step(vmm, &trace.cores[core_idx]) {
                            StepResult::Ran => {}
                            StepResult::AtBarrier => {
                                let b = next_barrier[k];
                                next_barrier[k] += 1;
                                let clock = vmm.clocks()[core_idx].now();
                                match barriers.arrive(b, clock) {
                                    Some(release) => {
                                        if R::ENABLED {
                                            vmm.tracer().record(
                                                core_idx as u16,
                                                release,
                                                EventKind::BarrierArrive,
                                                b as u64,
                                                release.saturating_sub(clock),
                                            );
                                        }
                                        vmm.clocks()[core_idx].advance_to(release)
                                    }
                                    None => {
                                        state[k] = CoreState::Blocked(b);
                                        running[core_idx].store(false, Ordering::Relaxed);
                                    }
                                }
                            }
                            StepResult::Done => {
                                state[k] = CoreState::Finished;
                                running[core_idx].store(false, Ordering::Relaxed);
                                live -= 1;
                            }
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("worker thread panicked");

    // Drain every core's residual policy buffer so the report (and any
    // later deterministic comparison) sees the complete insert stream.
    vmm.flush_policy_events();

    let runners: Vec<CoreRunner> = runner_slots.into_iter().map(|s| s.unwrap()).collect();
    RunReport::collect(
        vmm,
        &runners,
        &trace.label,
        &crate::engine::config_label(vmm),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;
    use cmcp_arch::VirtPage;
    use cmcp_core::PolicyKind;
    use cmcp_kernel::KernelConfig;

    fn shared_and_private_trace(cores: usize, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "par-test");
        for c in 0..cores {
            let private = VirtPage(0x1000 + ((c as u64) << 8));
            for _ in 0..rounds {
                // Everyone reads a shared range, then writes private data.
                t.cores[c].ops.push(Op::Stream {
                    start: VirtPage(0),
                    pages: 16,
                    write: false,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Stream {
                    start: private,
                    pages: 32,
                    write: true,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    #[test]
    fn parallel_run_completes() {
        let t = shared_and_private_trace(4, 3);
        let vmm = Vmm::new(KernelConfig::new(4, 64));
        let r = run_parallel(&vmm, &t, 2);
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.per_core.len(), 4);
        // Every core executed all its touches.
        for c in &r.per_core {
            assert_eq!(c.dtlb_accesses, 3 * (16 + 32));
        }
    }

    #[test]
    fn parallel_functional_totals_match_deterministic() {
        // With ample memory there are no evictions, so fault counts and
        // footprints must match the deterministic engine exactly even
        // though timing interleavings differ.
        let t = shared_and_private_trace(4, 3);
        let v1 = Vmm::new(KernelConfig::new(4, 512));
        let det = crate::engine::run_deterministic(&v1, &t);
        let v2 = Vmm::new(KernelConfig::new(4, 512));
        let par = run_parallel(&v2, &t, 4);
        let faults = |r: &RunReport| r.per_core.iter().map(|c| c.page_faults).sum::<u64>();
        assert_eq!(faults(&det), faults(&par));
        assert_eq!(det.global.evictions, par.global.evictions);
    }

    #[test]
    fn parallel_handles_memory_pressure() {
        let t = shared_and_private_trace(4, 4);
        // Footprint: 16 shared + 4×32 private = 144 pages; constrain to 64.
        let vmm = Vmm::new(KernelConfig::new(4, 64).with_policy(PolicyKind::Cmcp { p: 0.5 }));
        let r = run_parallel(&vmm, &t, 4);
        assert!(r.global.evictions > 0);
        assert!(r.runtime_cycles > 0);
    }

    #[test]
    fn single_thread_parallel_equals_itself() {
        // threads=1 is fully deterministic (round-robin on one thread).
        let t = shared_and_private_trace(3, 3);
        let run = || {
            let vmm = Vmm::new(KernelConfig::new(3, 32));
            let r = run_parallel(&vmm, &t, 1);
            (r.runtime_cycles, r.global.evictions)
        };
        assert_eq!(run(), run());
    }
}
