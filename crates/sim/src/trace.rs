//! Workload traces: what the simulated cores execute.
//!
//! A trace is one op stream per core. Accesses are recorded at page
//! granularity as *runs* of consecutive 4 kB pages — the natural output
//! of the loop nests in `cmcp-workloads`, and exactly the granularity the
//! TLB and the paging subsystem care about (element-level accesses within
//! a page cannot miss the TLB again and are folded into `work_per_page`).
//!
//! Barriers are implicit rendezvous points: every core's `k`-th
//! [`Op::Barrier`] matches every other core's `k`-th, mirroring the
//! OpenMP barrier structure of the NPB kernels and SCALE.

use std::collections::HashSet;

use cmcp_arch::{Cycles, PageSize, VirtPage};

/// One element of a core's op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Touch `pages` consecutive 4 kB pages starting at `start`, charging
    /// `work_per_page` work units of compute per page.
    Stream {
        /// First 4 kB page of the run.
        start: VirtPage,
        /// Number of consecutive pages.
        pages: u32,
        /// Whether the touches are writes.
        write: bool,
        /// Work units charged per page (element ops folded per page).
        work_per_page: u32,
    },
    /// Pure compute: advance the clock without touching memory.
    Compute(Cycles),
    /// A host-offloaded system call (paper §2.1): `service` cycles of
    /// host work and `payload` bytes over the IKC channel.
    Syscall {
        /// Host-side service time.
        service: Cycles,
        /// Payload bytes (request + response).
        payload: u64,
        /// Whether it is a write (vs read) — selects the host path cost.
        write: bool,
    },
    /// Rendezvous with every other core.
    Barrier,
}

impl Op {
    /// A single-page touch.
    pub fn touch(page: VirtPage, write: bool, work: u32) -> Op {
        Op::Stream {
            start: page,
            pages: 1,
            write,
            work_per_page: work,
        }
    }
}

/// One core's op stream.
#[derive(Debug, Clone, Default)]
pub struct CoreTrace {
    /// Ops in program order.
    pub ops: Vec<Op>,
}

impl CoreTrace {
    /// Number of barriers in the stream.
    pub fn barriers(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Barrier)).count()
    }

    /// Total page touches.
    pub fn touches(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Stream { pages, .. } => *pages as u64,
                _ => 0,
            })
            .sum()
    }

    /// Distinct 4 kB pages touched.
    pub fn page_set(&self) -> HashSet<u64> {
        let mut set = HashSet::new();
        for op in &self.ops {
            if let Op::Stream { start, pages, .. } = op {
                for k in 0..*pages as u64 {
                    set.insert(start.0 + k);
                }
            }
        }
        set
    }
}

/// A complete multi-core workload trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-core op streams; index = core id.
    pub cores: Vec<CoreTrace>,
    /// Human-readable workload label for reports.
    pub label: String,
    /// The application's *declared* memory requirement in 4 kB pages —
    /// what it allocates, which for array codes like NPB CG exceeds what
    /// one iteration touches. The paper's "memory provided" percentages
    /// are relative to this requirement; 0 means "same as the touched
    /// footprint".
    pub declared_pages: u64,
}

impl Trace {
    /// An empty trace for `n` cores.
    pub fn new(n: usize, label: impl Into<String>) -> Trace {
        Trace {
            cores: vec![CoreTrace::default(); n],
            label: label.into(),
            declared_pages: 0,
        }
    }

    /// Checks the cross-core barrier structure: every core must have the
    /// same barrier count, or the rendezvous would deadlock.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores.is_empty() {
            return Err("trace has no cores".into());
        }
        let b0 = self.cores[0].barriers();
        for (i, c) in self.cores.iter().enumerate() {
            if c.barriers() != b0 {
                return Err(format!(
                    "core {i} has {} barriers, core 0 has {b0}",
                    c.barriers()
                ));
            }
        }
        Ok(())
    }

    /// Distinct 4 kB pages touched by any core — the application
    /// footprint the paper's "memory provided" percentages refer to.
    pub fn footprint_pages(&self) -> usize {
        let mut set = HashSet::new();
        for c in &self.cores {
            set.extend(c.page_set());
        }
        set.len()
    }

    /// Footprint in mapping blocks of `size` (what the device RAM must
    /// hold for a no-data-movement run).
    pub fn footprint_blocks(&self, size: PageSize) -> usize {
        let span = size.pages_4k() as u64;
        let mut set = HashSet::new();
        for c in &self.cores {
            for op in &c.ops {
                if let Op::Stream { start, pages, .. } = op {
                    let first = start.0 / span;
                    let last = (start.0 + *pages as u64 - 1) / span;
                    for b in first..=last {
                        set.insert(b);
                    }
                }
            }
        }
        set.len()
    }

    /// Total page touches across cores.
    pub fn total_touches(&self) -> u64 {
        self.cores.iter().map(|c| c.touches()).sum()
    }

    /// The declared memory requirement in blocks of `size`: the paper's
    /// constraint denominator. Falls back to the touched footprint when
    /// no declaration was made, and is never smaller than it.
    pub fn declared_blocks(&self, size: PageSize) -> usize {
        let touched = self.footprint_blocks(size);
        let declared = (self.declared_pages as usize).div_ceil(size.pages_4k());
        declared.max(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_is_single_page_stream() {
        let op = Op::touch(VirtPage(5), true, 3);
        assert_eq!(
            op,
            Op::Stream {
                start: VirtPage(5),
                pages: 1,
                write: true,
                work_per_page: 3
            }
        );
    }

    #[test]
    fn footprint_counts_distinct_pages() {
        let mut t = Trace::new(2, "test");
        t.cores[0].ops.push(Op::Stream {
            start: VirtPage(0),
            pages: 4,
            write: false,
            work_per_page: 1,
        });
        t.cores[1].ops.push(Op::Stream {
            start: VirtPage(2),
            pages: 4,
            write: false,
            work_per_page: 1,
        });
        assert_eq!(t.footprint_pages(), 6); // pages 0..6
        assert_eq!(t.total_touches(), 8);
    }

    #[test]
    fn footprint_blocks_rounds_to_block_grid() {
        let mut t = Trace::new(1, "test");
        // Pages 15..17 straddle a 64 kB boundary (blocks 0 and 1).
        t.cores[0].ops.push(Op::Stream {
            start: VirtPage(15),
            pages: 2,
            write: false,
            work_per_page: 1,
        });
        assert_eq!(t.footprint_blocks(PageSize::K4), 2);
        assert_eq!(t.footprint_blocks(PageSize::K64), 2);
        assert_eq!(t.footprint_blocks(PageSize::M2), 1);
    }

    #[test]
    fn validate_catches_mismatched_barriers() {
        let mut t = Trace::new(2, "test");
        t.cores[0].ops.push(Op::Barrier);
        assert!(t.validate().is_err());
        t.cores[1].ops.push(Op::Barrier);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn empty_trace_is_invalid() {
        assert!(Trace::new(0, "empty").validate().is_err());
    }

    #[test]
    fn page_set_expands_streams() {
        let mut c = CoreTrace::default();
        c.ops.push(Op::Stream {
            start: VirtPage(10),
            pages: 3,
            write: false,
            work_per_page: 1,
        });
        c.ops.push(Op::touch(VirtPage(11), true, 1));
        let set = c.page_set();
        assert_eq!(set.len(), 3);
        assert!(set.contains(&10) && set.contains(&11) && set.contains(&12));
    }
}
