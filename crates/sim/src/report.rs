//! The merged run report: everything the experiment harness prints.

use std::sync::atomic::Ordering::Relaxed;

use cmcp_arch::{Cycles, TlbStats};
use cmcp_kernel::{CoreStatsSnapshot, GlobalStatsSnapshot, TierCounters, Vmm};
use cmcp_trace::{Breakdown, CoreTotals, Recorder};

use crate::runner::CoreRunner;

/// Per-tier backing-store roll-up: one row per configured tier, in
/// hierarchy order (fastest first).
#[derive(Debug, Clone, Default)]
pub struct TierReport {
    /// Tier names from the hierarchy spec.
    pub names: Vec<String>,
    /// Occupancy and traffic counters, parallel to `names`.
    pub counters: Vec<TierCounters>,
}

/// Multi-node NUMA roll-up: the topology in force, per-node DRAM
/// budgets and occupancy, and the replica-coherence counters. The
/// underlying counters live in dedicated atomics — **not** in the
/// serialized snapshot structs — so single-node reports (and the
/// committed goldens built from them) are byte-identical to the
/// pre-NUMA code; this struct exists only when the topology is
/// multi-node.
#[derive(Debug, Clone, Default)]
pub struct NumaReport {
    /// Node names from the topology spec, in index order.
    pub nodes: Vec<String>,
    /// Whether page-table replication was on.
    pub replicate: bool,
    /// Per-node DRAM budgets in blocks (sums to the device block
    /// count).
    pub capacity_blocks: Vec<u64>,
    /// Per-node blocks in use at run end, parallel to `nodes`.
    pub used_blocks: Vec<u64>,
    /// Replica syncs (replication on: first fault from a new node).
    pub replica_syncs: u64,
    /// Replica invalidations at eviction / rebuild teardown.
    pub replica_invalidations: u64,
    /// Home-node migrations toward the map-count-weighted access
    /// center.
    pub page_migrations: u64,
    /// First-touch allocations that spilled to a remote node.
    pub remote_spills: u64,
    /// Total cycles all cores spent on replica traffic (syncs,
    /// invalidations, remote master walks).
    pub replica_sync_cycles: u64,
    /// Total cycles all cores spent migrating block homes.
    pub migration_cycles: u64,
}

/// Deterministic engine-scaling counters: how phase B decomposed the
/// run. Every field is a pure function of `(seed, config, tiers,
/// fault-plan)` — classification runs at every thread count, including
/// 1, so these are identical no matter how many workers executed the
/// run (asserted by the byte-identity suite, since `RunReport` derives
/// `Debug` over this struct). Host-dependent counters (barrier waits,
/// rounds actually committed concurrently) live in the engine's
/// `HostScaling` instead and never enter the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineScaling {
    /// Epochs the engine ran (phase-B invocations).
    pub epochs: u64,
    /// Epochs whose ceiling fast-forwarded past the base window
    /// (timer-free straggler phases merged into one epoch).
    pub fast_forwards: u64,
    /// Kernel entries committed across all epochs (faults, syscalls,
    /// scan ticks, rebuilds).
    pub committed: u64,
    /// Entries the classifier proved shard-local (eligible for the
    /// concurrent commit round).
    pub shardable: u64,
    /// Entries in the sequential reconciliation class. Always
    /// `committed - shardable`; a high share explains flat scaling.
    pub reconciled: u64,
    /// Rendezvous-barrier releases (virtual-time barriers, not host
    /// barriers).
    pub releases: u64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Workload label.
    pub label: String,
    /// Configuration label (scheme + policy + page size).
    pub config: String,
    /// Virtual runtime: the maximum core clock at completion.
    pub runtime_cycles: Cycles,
    /// Runtime in seconds at the configured frequency.
    pub runtime_secs: f64,
    /// Per-core counters (Table 1 rows).
    pub per_core: Vec<CoreStatsSnapshot>,
    /// Kernel-global counters.
    pub global: GlobalStatsSnapshot,
    /// Cycles the DMA engine was busy / callers queued on it.
    pub dma_busy_cycles: Cycles,
    /// Queueing delay on the DMA engine.
    pub dma_queued_cycles: Cycles,
    /// Queueing delay on page-table locks.
    pub lock_queued_cycles: Cycles,
    /// Bytes moved host→device / device→host.
    pub dma_bytes: (u64, u64),
    /// PSPT sharing histogram (Figure 6), if the scheme provides one.
    pub sharing_histogram: Option<Vec<usize>>,
    /// Per-core fault-path cycle decomposition, present when the run was
    /// traced. Validated against the kernel counters unless events were
    /// dropped (ring wraparound).
    pub breakdown: Option<Breakdown>,
    /// Per-tier backing counters; `None` for the flat single-tier store.
    pub tiers: Option<TierReport>,
    /// NUMA topology roll-up; `None` for single-node runs.
    pub numa: Option<NumaReport>,
    /// Deterministic phase-B decomposition counters (thread-invariant).
    pub scaling: EngineScaling,
}

impl RunReport {
    /// Assembles the report after every runner finished.
    pub fn collect<R: Recorder>(
        vmm: &Vmm<R>,
        runners: &[CoreRunner],
        label: &str,
        config: &str,
    ) -> RunReport {
        let clocks = vmm.clocks();
        let per_core: Vec<CoreStatsSnapshot> = vmm
            .core_stats()
            .iter()
            .zip(runners.iter())
            .zip(clocks.iter())
            .map(|((st, runner), clock)| {
                let tlb: TlbStats = runner.tlb_stats();
                let mut snap = st.snapshot();
                snap.dtlb_misses = tlb.misses;
                snap.dtlb_accesses = tlb.accesses;
                snap.cycles = clock.now();
                snap
            })
            .collect();
        let runtime_cycles = per_core.iter().map(|c| c.cycles).max().unwrap_or(0);
        let breakdown = if R::ENABLED {
            let events = vmm.tracer().events();
            let dropped = vmm.tracer().dropped();
            // The NUMA cycle counters live in dedicated atomics rather
            // than the serialized snapshots (golden-stability), so the
            // totals read them off the live stats alongside the
            // snapshot fields.
            let totals: Vec<CoreTotals> = per_core
                .iter()
                .zip(vmm.core_stats())
                .map(|(c, live)| CoreTotals {
                    page_faults: c.page_faults,
                    fault_cycles: c.fault_cycles,
                    dma_wait_cycles: c.dma_wait_cycles,
                    tier_penalty_cycles: c.tier_penalty_cycles,
                    replica_sync_cycles: live.replica_sync_cycles.load(Relaxed),
                    migration_cycles: live.migration_cycles.load(Relaxed),
                    shootdown_cycles: c.shootdown_cycles,
                    lock_wait_cycles: c.lock_wait_cycles,
                    shard_lock_acquires: c.shard_lock_acquires,
                    faults_injected: c.faults_injected,
                    fault_retries: c.fault_retries,
                    retry_backoff_cycles: c.retry_backoff_cycles,
                    quarantines: c.quarantines,
                })
                .collect();
            let b = Breakdown::from_events(&events, per_core.len(), dropped)
                .validate_against(&totals)
                .expect("traced breakdown must sum to the kernel counters");
            Some(b)
        } else {
            None
        };
        RunReport {
            label: label.to_string(),
            config: config.to_string(),
            runtime_cycles,
            runtime_secs: vmm.cost().cycles_to_secs(runtime_cycles),
            global: vmm.global_stats().snapshot(),
            dma_busy_cycles: vmm.dma().busy_cycles(),
            dma_queued_cycles: vmm.dma().queued_cycles(),
            lock_queued_cycles: vmm.lock_queue_cycles(),
            dma_bytes: (vmm.dma().bytes_in(), vmm.dma().bytes_out()),
            sharing_histogram: vmm.sharing_histogram(),
            breakdown,
            scaling: EngineScaling::default(),
            tiers: vmm.tier_counters().map(|counters| TierReport {
                names: vmm
                    .config()
                    .tiers()
                    .tiers
                    .iter()
                    .map(|t| t.name.clone())
                    .collect(),
                counters,
            }),
            numa: vmm.numa_books().map(|books| {
                let g = vmm.global_stats();
                NumaReport {
                    nodes: books.config.nodes.iter().map(|n| n.name.clone()).collect(),
                    replicate: books.config.replicate,
                    capacity_blocks: books.capacity().to_vec(),
                    used_blocks: books.used(),
                    replica_syncs: g.replica_syncs.load(Relaxed),
                    replica_invalidations: g.replica_invalidations.load(Relaxed),
                    page_migrations: g.page_migrations.load(Relaxed),
                    remote_spills: g.remote_spills.load(Relaxed),
                    replica_sync_cycles: vmm
                        .core_stats()
                        .iter()
                        .map(|c| c.replica_sync_cycles.load(Relaxed))
                        .sum(),
                    migration_cycles: vmm
                        .core_stats()
                        .iter()
                        .map(|c| c.migration_cycles.load(Relaxed))
                        .sum(),
                }
            }),
            per_core,
        }
    }

    /// Per-core average page faults (Table 1's unit).
    pub fn avg_page_faults(&self) -> f64 {
        avg(self.per_core.iter().map(|c| c.page_faults))
    }

    /// Per-core average remote TLB invalidations received (Table 1).
    pub fn avg_remote_invalidations(&self) -> f64 {
        avg(self.per_core.iter().map(|c| c.remote_inv_received))
    }

    /// Per-core average dTLB misses (Table 1).
    pub fn avg_dtlb_misses(&self) -> f64 {
        avg(self.per_core.iter().map(|c| c.dtlb_misses))
    }
}

fn avg(it: impl ExactSizeIterator<Item = u64>) -> f64 {
    let n = it.len().max(1) as f64;
    it.sum::<u64>() as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_cores() {
        let r = RunReport {
            per_core: vec![
                CoreStatsSnapshot {
                    page_faults: 10,
                    dtlb_misses: 100,
                    ..Default::default()
                },
                CoreStatsSnapshot {
                    page_faults: 30,
                    dtlb_misses: 300,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.avg_page_faults(), 20.0);
        assert_eq!(r.avg_dtlb_misses(), 200.0);
        assert_eq!(r.avg_remote_invalidations(), 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.avg_page_faults(), 0.0);
        assert_eq!(r.runtime_cycles, 0);
    }
}
