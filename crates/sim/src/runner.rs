//! One simulated core's execution state.
//!
//! A [`CoreRunner`] owns the core's TLB and its position in the trace,
//! and knows how to [`CoreRunner::advance`] freely through the trace
//! until it either reaches the engine's epoch ceiling or *parks* at a
//! kernel entry point: a failed page walk (the fault trap), a syscall,
//! or a rendezvous barrier. The engine executes the parked kernel work
//! sequentially in virtual-time stamp order and then resumes the core —
//! so a single runner implementation serves every thread count, and all
//! cross-core kernel effects happen at exact, reproducible stamps.

use std::collections::HashSet;

use cmcp_arch::{CoreId, Cycles, PageSize, Tlb, TlbLookup, VirtPage};
use cmcp_kernel::{Syscall, Vmm};
use cmcp_trace::Recorder;

use crate::trace::{CoreTrace, Op};

/// Why [`CoreRunner::advance`] handed control back to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pause {
    /// The core's clock reached the epoch ceiling; more ops remain.
    Ceiling,
    /// The page walk found no translation: the core is parked in the
    /// fault trap at its current clock, waiting for the engine to run
    /// the kernel's handler at that stamp.
    Fault {
        /// The faulting virtual page.
        page: VirtPage,
        /// Whether the faulting access was a store.
        write: bool,
    },
    /// The trace issued a host-offloaded syscall; the engine executes
    /// it in stamp order.
    Syscall {
        /// The offloaded call.
        call: Syscall,
    },
    /// The core arrived at its next rendezvous barrier.
    Barrier,
    /// The trace is exhausted.
    Done,
}

/// A page touch interrupted by a fault: completed on the next
/// [`CoreRunner::advance`] after the engine has run the handler.
#[derive(Clone, Copy)]
struct PendingFault {
    page: VirtPage,
    write: bool,
}

/// Execution state of one simulated core.
pub struct CoreRunner {
    /// This core's id.
    pub core: CoreId,
    tlb: Tlb,
    op_idx: usize,
    stream_pos: u32,
    /// A touch that faulted and awaits the kernel's handler.
    pending: Option<PendingFault>,
    /// Blocks this core has already marked dirty (dedupes the PTE dirty
    /// write on TLB-hit stores; cleared when the block is invalidated).
    /// Keyed by block head at a fixed block size, by exact 4 kB page in
    /// adaptive mode (where the mapping granularity varies per region).
    written: HashSet<u64>,
    inval_buf: Vec<(VirtPage, u32)>,
    /// Adaptive page-size mode: translations come in mixed size classes,
    /// so TLB probes search every class.
    adaptive: bool,
}

impl CoreRunner {
    /// A runner for `core` against `vmm`'s configuration.
    pub fn new<R: Recorder>(core: CoreId, vmm: &Vmm<R>) -> CoreRunner {
        CoreRunner {
            core,
            tlb: Tlb::knc(vmm.cost()),
            op_idx: 0,
            stream_pos: 0,
            pending: None,
            written: HashSet::new(),
            inval_buf: Vec::new(),
            adaptive: vmm.config().adaptive,
        }
    }

    /// The dirty-dedupe key for `page`: the enclosing block head at a
    /// fixed block size, the page itself in adaptive mode.
    fn dirty_key(&self, page: VirtPage, size: PageSize) -> u64 {
        if self.adaptive {
            page.0
        } else {
            page.align_down(size).0
        }
    }

    /// Final TLB statistics.
    pub fn tlb_stats(&self) -> cmcp_arch::TlbStats {
        self.tlb.stats()
    }

    /// Applies pending remote TLB invalidations (their cycle cost was
    /// charged by the shootdown; here the entries actually disappear).
    fn drain_invalidations<R: Recorder>(&mut self, vmm: &Vmm<R>) {
        if !vmm.has_pending_invalidations(self.core) {
            return;
        }
        vmm.drain_invalidations(self.core, &mut self.inval_buf);
        let now = if R::ENABLED {
            vmm.clocks()[self.core.index()].now()
        } else {
            0
        };
        for (head, span) in self.inval_buf.drain(..) {
            // Invalidate every TLB entry covering the block — the span
            // rides in the mailbox entry now that adaptive mode evicts
            // mixed-granularity victims.
            for k in 0..span as u64 {
                let p = head.add(k);
                self.tlb
                    .invalidate_traced(p, vmm.tracer(), self.core.0, now);
                self.written.remove(&p.0);
            }
            self.written.remove(&head.0);
        }
    }

    /// Retires the stream position of a just-completed touch.
    fn retire_touch(&mut self, trace: &CoreTrace) {
        if let Some(Op::Stream { pages, .. }) = trace.ops.get(self.op_idx) {
            self.stream_pos += 1;
            if self.stream_pos == *pages {
                self.op_idx += 1;
                self.stream_pos = 0;
            }
        }
    }

    /// Finishes a touch whose fault the engine has since handled, or
    /// re-parks if a concurrent eviction tore the fresh mapping down
    /// before the walk re-read it — the hardware would simply fault
    /// again, and each retry pairs the extra fault with the extra walk
    /// it implies, so faults never outnumber misses in anyone's books.
    fn resume_pending<R: Recorder>(&mut self, vmm: &Vmm<R>, trace: &CoreTrace) -> Option<Pause> {
        let pf = self.pending?;
        let clock = &vmm.clocks()[self.core.index()];
        match vmm.translate(self.core, pf.page) {
            Some(tr) => {
                self.tlb.fill(pf.page, tr.size);
                vmm.mark_accessed(self.core, pf.page, pf.write);
                if pf.write {
                    let key = self.dirty_key(pf.page, vmm.config().block_size);
                    self.written.insert(key);
                }
                clock.advance(self.tlb.drain_cycles());
                clock.settle();
                self.pending = None;
                self.retire_touch(trace);
                None
            }
            None => {
                self.tlb.rewalk();
                clock.advance(self.tlb.drain_cycles());
                clock.settle();
                Some(Pause::Fault {
                    page: pf.page,
                    write: pf.write,
                })
            }
        }
    }

    /// Executes one page touch. `Some(pause)` means the walk failed and
    /// the core parked in the fault trap (the touch is left pending).
    fn touch<R: Recorder>(
        &mut self,
        vmm: &Vmm<R>,
        page: VirtPage,
        write: bool,
        work: u32,
    ) -> Option<Pause> {
        let size = vmm.config().block_size;
        let cost = vmm.cost();
        let clock = &vmm.clocks()[self.core.index()];
        clock.advance(work as u64 * cost.work_unit);

        let lookup = if self.adaptive {
            // Mixed size classes online: probe them all, as hardware does.
            self.tlb.access_any(page)
        } else {
            self.tlb.access(page, size)
        };
        match lookup {
            TlbLookup::L1 | TlbLookup::L2 => {
                // First store through a cached clean translation sets the
                // dirty bit in the PTE (hardware assist).
                if write {
                    let key = self.dirty_key(page, size);
                    if self.written.insert(key) {
                        vmm.mark_accessed(self.core, page, true);
                    }
                }
            }
            TlbLookup::Miss => match vmm.translate(self.core, page) {
                Some(tr) => {
                    self.tlb.fill(page, tr.size);
                    vmm.mark_accessed(self.core, page, write);
                    if write {
                        self.written.insert(self.dirty_key(page, size));
                    }
                }
                None => {
                    // The walk completes (and stalls the pipeline)
                    // before the trap is taken: charge it, then park at
                    // the resulting stamp.
                    clock.advance(self.tlb.drain_cycles());
                    clock.settle();
                    self.pending = Some(PendingFault { page, write });
                    return Some(Pause::Fault { page, write });
                }
            },
        }
        clock.advance(self.tlb.drain_cycles());
        clock.settle();
        None
    }

    /// Runs the trace until the core's clock reaches `ceiling`, a kernel
    /// entry parks it, or the trace ends.
    ///
    /// Ops are atomic: a touch or compute op that *crosses* the ceiling
    /// completes (the clock may overshoot); the check happens between
    /// ops and between the touches of a stream. With `ceiling ==
    /// u64::MAX` this runs until the next park, which is exactly the
    /// single-threaded degenerate case.
    pub fn advance<R: Recorder>(
        &mut self,
        vmm: &Vmm<R>,
        trace: &CoreTrace,
        ceiling: Cycles,
    ) -> Pause {
        self.drain_invalidations(vmm);
        if let Some(parked) = self.resume_pending(vmm, trace) {
            return parked;
        }
        let clock_idx = self.core.index();
        loop {
            if vmm.clocks()[clock_idx].now() >= ceiling {
                return Pause::Ceiling;
            }
            let Some(op) = trace.ops.get(self.op_idx) else {
                return Pause::Done;
            };
            match *op {
                Op::Stream {
                    start,
                    pages,
                    write,
                    work_per_page,
                } => {
                    while self.stream_pos < pages {
                        if vmm.clocks()[clock_idx].now() >= ceiling {
                            return Pause::Ceiling;
                        }
                        let page = start.add(self.stream_pos as u64);
                        if let Some(parked) = self.touch(vmm, page, write, work_per_page) {
                            return parked;
                        }
                        self.stream_pos += 1;
                    }
                    self.op_idx += 1;
                    self.stream_pos = 0;
                }
                Op::Compute(cycles) => {
                    vmm.clocks()[clock_idx].advance(cycles);
                    self.op_idx += 1;
                }
                Op::Syscall {
                    service,
                    payload,
                    write,
                } => {
                    let call = if write {
                        Syscall::Write(payload)
                    } else {
                        Syscall::Read(payload)
                    };
                    let _ = service; // catalogued in the offload engine
                    self.op_idx += 1;
                    return Pause::Syscall { call };
                }
                Op::Barrier => {
                    self.op_idx += 1;
                    return Pause::Barrier;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcp_kernel::KernelConfig;

    fn vmm(blocks: usize) -> Vmm {
        Vmm::new(KernelConfig::new(2, blocks))
    }

    fn trace_of(ops: Vec<Op>) -> CoreTrace {
        CoreTrace { ops }
    }

    /// Drives a runner to its next non-fault pause, executing parked
    /// kernel work inline (the single-threaded engine in miniature).
    fn drive(r: &mut CoreRunner, v: &Vmm, t: &CoreTrace) -> Pause {
        loop {
            match r.advance(v, t, u64::MAX) {
                Pause::Fault { page, write } => {
                    v.handle_fault(r.core, page, write);
                }
                Pause::Syscall { call } => {
                    v.offload_syscall(r.core, call);
                }
                other => return other,
            }
        }
    }

    #[test]
    fn touch_faults_then_hits() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![
            Op::touch(VirtPage(5), false, 1),
            Op::touch(VirtPage(5), false, 1),
        ]);
        assert_eq!(drive(&mut r, &v, &t), Pause::Done);
        let s = r.tlb_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(
            v.core_stats()[0]
                .page_faults
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn fault_parks_and_resume_completes_the_touch() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::touch(VirtPage(5), false, 1)]);
        // The cold touch parks in the fault trap without handling it...
        match r.advance(&v, &t, u64::MAX) {
            Pause::Fault { page, write } => {
                assert_eq!(page, VirtPage(5));
                assert!(!write);
            }
            other => panic!("expected fault park, got {other:?}"),
        }
        // ...the park stamp already includes the failed walk...
        let parked_at = v.clocks()[0].now();
        assert!(parked_at > 0, "work + walk must be charged before parking");
        // ...and after the engine runs the handler the touch retires.
        v.handle_fault(CoreId(0), VirtPage(5), false);
        assert_eq!(r.advance(&v, &t, u64::MAX), Pause::Done);
        assert_eq!(r.tlb_stats().misses, 1);
    }

    #[test]
    fn ceiling_bounds_a_long_stream() {
        let v = vmm(256);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Stream {
            start: VirtPage(0),
            pages: 100,
            write: false,
            work_per_page: 1,
        }]);
        // A ceiling of 1 cycle stops the core at its first park or
        // boundary — here the first cold touch faults immediately.
        assert!(matches!(
            r.advance(&v, &t, 1),
            Pause::Fault {
                page: VirtPage(0),
                ..
            }
        ));
        v.handle_fault(CoreId(0), VirtPage(0), false);
        // With the fault handled, a tiny ceiling pauses at the boundary
        // without consuming further touches...
        assert_eq!(r.advance(&v, &t, 1), Pause::Ceiling);
        assert_eq!(r.tlb_stats().accesses, 1);
        // ...and an unbounded drive finishes all 100 pages.
        assert_eq!(drive(&mut r, &v, &t), Pause::Done);
        assert_eq!(r.tlb_stats().accesses, 100);
    }

    #[test]
    fn write_through_cached_entry_dirties_block_once() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![
            Op::touch(VirtPage(5), false, 1), // fault, read
            Op::touch(VirtPage(5), true, 1),  // TLB hit, first write
            Op::touch(VirtPage(5), true, 1),  // TLB hit, already dirty
        ]);
        assert_eq!(drive(&mut r, &v, &t), Pause::Done);
        // The block is dirty: evicting it must cost a write-back.
        v.handle_fault(CoreId(0), VirtPage(100), false);
        v.handle_fault(CoreId(0), VirtPage(101), false);
        v.handle_fault(CoreId(0), VirtPage(102), false);
        v.handle_fault(CoreId(0), VirtPage(103), false);
        v.handle_fault(CoreId(0), VirtPage(104), false); // evicts page 5 (FIFO)
        assert_eq!(v.global_stats().snapshot().writebacks, 1);
    }

    #[test]
    fn barrier_parks_the_core() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Barrier, Op::touch(VirtPage(1), false, 1)]);
        assert_eq!(r.advance(&v, &t, u64::MAX), Pause::Barrier);
        assert_eq!(drive(&mut r, &v, &t), Pause::Done);
    }

    #[test]
    fn syscall_parks_with_the_call() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Syscall {
            service: 1,
            payload: 4096,
            write: true,
        }]);
        match r.advance(&v, &t, u64::MAX) {
            Pause::Syscall {
                call: Syscall::Write(4096),
            } => {}
            other => panic!("expected write syscall park, got {other:?}"),
        }
        assert_eq!(r.advance(&v, &t, u64::MAX), Pause::Done);
    }

    #[test]
    fn compute_advances_clock_without_memory() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Compute(12345)]);
        assert_eq!(r.advance(&v, &t, u64::MAX), Pause::Done);
        assert_eq!(v.clocks()[0].now(), 12345);
        assert_eq!(r.tlb_stats().accesses, 0);
    }

    #[test]
    fn invalidation_drain_clears_tlb_and_dirty_cache() {
        let v = vmm(4);
        let mut r0 = CoreRunner::new(CoreId(0), &v);
        let t0 = trace_of(vec![Op::touch(VirtPage(5), true, 1)]);
        drive(&mut r0, &v, &t0);
        assert_eq!(r0.tlb_stats().misses, 1);
        // Another core's fault evicts page 5's block once memory fills.
        for b in 0..4u64 {
            v.handle_fault(CoreId(1), VirtPage(100 + b), false);
        }
        // Pool (4 blocks) now holds 5's block + 3 of the new ones... the
        // fourth new fault evicted block 5 (FIFO head) and queued an
        // invalidation for core 0.
        assert!(v.has_pending_invalidations(CoreId(0)));
        let t0b = trace_of(vec![Op::touch(VirtPage(6), false, 1)]);
        let mut r0b = CoreRunner { op_idx: 0, ..r0 };
        drive(&mut r0b, &v, &t0b);
        assert!(!v.has_pending_invalidations(CoreId(0)));
    }
}
