//! One simulated core's execution state.
//!
//! A [`CoreRunner`] owns the core's TLB and its position in the trace,
//! and knows how to execute a bounded *step* (a chunk of page touches).
//! Both engines — deterministic and parallel — drive the same runner, so
//! the simulated semantics are identical; only the interleaving differs.

use std::collections::HashSet;

use cmcp_arch::{CoreId, Tlb, TlbLookup, VirtPage};
use cmcp_kernel::Vmm;
use cmcp_trace::Recorder;

use crate::trace::{CoreTrace, Op};

/// How many pages of a long stream run are processed per step, so the
/// deterministic engine interleaves cores at a fine, fixed granularity.
pub const STREAM_CHUNK: u32 = 32;

/// Result of one [`CoreRunner::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// More ops remain; call `step` again.
    Ran,
    /// The core reached a barrier and must wait for the others.
    AtBarrier,
    /// The trace is exhausted.
    Done,
}

/// Execution state of one simulated core.
pub struct CoreRunner {
    /// This core's id.
    pub core: CoreId,
    tlb: Tlb,
    op_idx: usize,
    stream_pos: u32,
    /// Blocks this core has already marked dirty (dedupes the PTE dirty
    /// write on TLB-hit stores; cleared when the block is invalidated).
    written: HashSet<u64>,
    inval_buf: Vec<VirtPage>,
    block_span: u64,
}

impl CoreRunner {
    /// A runner for `core` against `vmm`'s configuration.
    pub fn new<R: Recorder>(core: CoreId, vmm: &Vmm<R>) -> CoreRunner {
        CoreRunner {
            core,
            tlb: Tlb::knc(vmm.cost()),
            op_idx: 0,
            stream_pos: 0,
            written: HashSet::new(),
            inval_buf: Vec::new(),
            block_span: vmm.config().block_size.pages_4k() as u64,
        }
    }

    /// Final TLB statistics.
    pub fn tlb_stats(&self) -> cmcp_arch::TlbStats {
        self.tlb.stats()
    }

    /// Applies pending remote TLB invalidations (their cycle cost was
    /// charged by the shootdown; here the entries actually disappear).
    fn drain_invalidations<R: Recorder>(&mut self, vmm: &Vmm<R>) {
        if !vmm.has_pending_invalidations(self.core) {
            return;
        }
        vmm.drain_invalidations(self.core, &mut self.inval_buf);
        let now = if R::ENABLED {
            vmm.clocks()[self.core.index()].now()
        } else {
            0
        };
        for head in self.inval_buf.drain(..) {
            // Invalidate every TLB entry covering the block.
            for k in 0..self.block_span {
                self.tlb
                    .invalidate_traced(head.add(k), vmm.tracer(), self.core.0, now);
            }
            self.written.remove(&head.0);
        }
    }

    /// Executes one page touch. Returns whether it took a page fault.
    fn touch<R: Recorder>(&mut self, vmm: &Vmm<R>, page: VirtPage, write: bool, work: u32) -> bool {
        let size = vmm.config().block_size;
        let cost = vmm.cost();
        let clock = &vmm.clocks()[self.core.index()];
        clock.advance(work as u64 * cost.work_unit);

        let mut faulted = false;
        match self.tlb.access(page, size) {
            TlbLookup::L1 | TlbLookup::L2 => {
                // First store through a cached clean translation sets the
                // dirty bit in the PTE (hardware assist).
                if write {
                    let head = page.align_down(size);
                    if self.written.insert(head.0) {
                        vmm.mark_accessed(self.core, page, true);
                    }
                }
            }
            TlbLookup::Miss => {
                // Walk, fault, and refill are not atomic against other
                // cores in the parallel engine: a concurrent eviction can
                // pick this block as victim and tear the fresh mapping
                // down before the walk re-reads it. The hardware would
                // simply fault again, so retry until a translation
                // sticks; each retry is a genuine extra fault (the block
                // really was evicted before first use). Single iteration
                // in the deterministic engine, where no eviction can
                // interleave with a step.
                let tr = loop {
                    if let Some(tr) = vmm.translate(self.core, page) {
                        break tr;
                    }
                    if faulted {
                        // Retry round: pair the extra fault with the extra
                        // walk it implies, so faults never outnumber
                        // misses in anyone's books.
                        self.tlb.rewalk();
                    }
                    vmm.handle_fault(self.core, page, write);
                    faulted = true;
                };
                self.tlb.fill(page, tr.size);
                vmm.mark_accessed(self.core, page, write);
                if write {
                    self.written.insert(page.align_down(size).0);
                }
            }
        }
        clock.advance(self.tlb.drain_cycles());
        clock.settle();
        faulted
    }

    /// Runs the next chunk of the trace: at most [`STREAM_CHUNK`] page
    /// touches, one compute op, or up to (and including) one barrier.
    pub fn step<R: Recorder>(&mut self, vmm: &Vmm<R>, trace: &CoreTrace) -> StepResult {
        self.drain_invalidations(vmm);
        let Some(op) = trace.ops.get(self.op_idx) else {
            return StepResult::Done;
        };
        match *op {
            Op::Stream {
                start,
                pages,
                write,
                work_per_page,
            } => {
                // A page fault ends the chunk: faults advance this core's
                // clock by orders of magnitude more than a TLB hit, and
                // ending the step lets the engine hand control to the
                // core that is now furthest behind — keeping the virtual-
                // time ordering of lock/DMA reservations tight.
                let end = (self.stream_pos + STREAM_CHUNK).min(pages);
                let mut k = self.stream_pos;
                while k < end {
                    let faulted = self.touch(vmm, start.add(k as u64), write, work_per_page);
                    k += 1;
                    if faulted {
                        break;
                    }
                }
                if k == pages {
                    self.op_idx += 1;
                    self.stream_pos = 0;
                } else {
                    self.stream_pos = k;
                }
                StepResult::Ran
            }
            Op::Compute(cycles) => {
                vmm.clocks()[self.core.index()].advance(cycles);
                self.op_idx += 1;
                StepResult::Ran
            }
            Op::Syscall {
                service,
                payload,
                write,
            } => {
                let call = if write {
                    cmcp_kernel::Syscall::Write(payload)
                } else {
                    cmcp_kernel::Syscall::Read(payload)
                };
                let _ = service; // catalogued in the offload engine
                vmm.offload_syscall(self.core, call);
                self.op_idx += 1;
                StepResult::Ran
            }
            Op::Barrier => {
                self.op_idx += 1;
                StepResult::AtBarrier
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcp_kernel::KernelConfig;

    fn vmm(blocks: usize) -> Vmm {
        Vmm::new(KernelConfig::new(2, blocks))
    }

    fn trace_of(ops: Vec<Op>) -> CoreTrace {
        CoreTrace { ops }
    }

    #[test]
    fn touch_faults_then_hits() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![
            Op::touch(VirtPage(5), false, 1),
            Op::touch(VirtPage(5), false, 1),
        ]);
        assert_eq!(r.step(&v, &t), StepResult::Ran);
        assert_eq!(r.step(&v, &t), StepResult::Ran);
        assert_eq!(r.step(&v, &t), StepResult::Done);
        let s = r.tlb_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(
            v.core_stats()[0]
                .page_faults
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn long_stream_is_chunked() {
        let v = vmm(256);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Stream {
            start: VirtPage(0),
            pages: 100,
            write: false,
            work_per_page: 1,
        }]);
        // Every page of the cold stream faults, and a fault ends the
        // step, so the op takes one step per page...
        let mut steps = 0;
        while r.step(&v, &t) == StepResult::Ran {
            steps += 1;
        }
        assert_eq!(steps, 100);
        assert_eq!(r.tlb_stats().accesses, 100);
        // ...while a warm re-run of the same stream is chunked 32 pages
        // at a time (ceil(100/32) = 4 steps).
        let mut warm = CoreRunner::new(CoreId(0), &v);
        let mut steps = 0;
        while warm.step(&v, &t) == StepResult::Ran {
            steps += 1;
        }
        assert_eq!(steps, 4);
    }

    #[test]
    fn write_through_cached_entry_dirties_block_once() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![
            Op::touch(VirtPage(5), false, 1), // fault, read
            Op::touch(VirtPage(5), true, 1),  // TLB hit, first write
            Op::touch(VirtPage(5), true, 1),  // TLB hit, already dirty
        ]);
        for _ in 0..3 {
            r.step(&v, &t);
        }
        // The block is dirty: evicting it must cost a write-back.
        v.handle_fault(CoreId(0), VirtPage(100), false);
        v.handle_fault(CoreId(0), VirtPage(101), false);
        v.handle_fault(CoreId(0), VirtPage(102), false);
        v.handle_fault(CoreId(0), VirtPage(103), false);
        v.handle_fault(CoreId(0), VirtPage(104), false); // evicts page 5 (FIFO)
        assert_eq!(v.global_stats().snapshot().writebacks, 1);
    }

    #[test]
    fn barrier_stops_the_step() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Barrier, Op::touch(VirtPage(1), false, 1)]);
        assert_eq!(r.step(&v, &t), StepResult::AtBarrier);
        assert_eq!(r.step(&v, &t), StepResult::Ran);
        assert_eq!(r.step(&v, &t), StepResult::Done);
    }

    #[test]
    fn compute_advances_clock_without_memory() {
        let v = vmm(4);
        let mut r = CoreRunner::new(CoreId(0), &v);
        let t = trace_of(vec![Op::Compute(12345)]);
        r.step(&v, &t);
        assert_eq!(v.clocks()[0].now(), 12345);
        assert_eq!(r.tlb_stats().accesses, 0);
    }

    #[test]
    fn invalidation_drain_clears_tlb_and_dirty_cache() {
        let v = vmm(4);
        let mut r0 = CoreRunner::new(CoreId(0), &v);
        let t0 = trace_of(vec![Op::touch(VirtPage(5), true, 1)]);
        r0.step(&v, &t0);
        assert_eq!(r0.tlb_stats().misses, 1);
        // Another core's fault evicts page 5's block once memory fills.
        for b in 0..4u64 {
            v.handle_fault(CoreId(1), VirtPage(100 + b), false);
        }
        // Pool (4 blocks) now holds 5's block + 3 of the new ones... the
        // fourth new fault evicted block 5 (FIFO head) and queued an
        // invalidation for core 0.
        assert!(v.has_pending_invalidations(CoreId(0)));
        let t0b = trace_of(vec![Op::touch(VirtPage(6), false, 1)]);
        let mut r0b = CoreRunner { op_idx: 0, ..r0 };
        r0b.step(&v, &t0b);
        assert!(!v.has_pending_invalidations(CoreId(0)));
    }
}
