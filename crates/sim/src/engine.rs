//! The unified sharded discrete-event engine.
//!
//! One event-advance code path serves every thread count; `threads = 1`
//! *is* the deterministic engine, and any other count produces the
//! byte-identical report. Execution alternates two phases separated by
//! host-side sense-reversing barriers:
//!
//! * **Phase A (parallel):** simulated cores are partitioned round-robin
//!   across workers; each worker advances its *running* cores freely
//!   until they reach the epoch ceiling or park at a kernel entry (a
//!   failed page walk, a syscall, a rendezvous barrier) — see
//!   [`crate::runner::Pause`]. Phase A touches only frozen kernel state:
//!   page-table reads, commutative accessed/dirty PTE bits, and each
//!   core's own TLB/clock/stats, so its outcome per core is independent
//!   of scheduling.
//! * **Phase B (sharded commit + sequential reconciliation):** the
//!   epoch's parked kernel entries and due maintenance timers, all
//!   strictly below the ceiling, are sorted by the total order
//!   `(virtual_time, event_rank, core_id)` and *classified*. A prefix
//!   of entries whose effects provably stay inside one commit shard
//!   (PSPT minor faults, and fresh majors within the epoch's frame-pool
//!   budget — see [`cmcp_kernel::Vmm::commit_shard_of`]) is committed by
//!   all workers concurrently, each worker owning a disjoint set of
//!   shards and draining its entries in local stamp order. Everything
//!   from the first cross-shard entry onward — evictions, DMA-touching
//!   refaults, syscalls, scan ticks, PSPT rebuilds, every regular-table
//!   or adaptive-mode entry — is the *reconciliation tail*, committed by
//!   worker 0 sequentially in exact stamp order. DESIGN.md §14 carries
//!   the proof that this equals the pure sequential fold byte-for-byte.
//!
//! The epoch ceiling is `min(next event time) + W` where `W` is
//! [`cmcp_arch::CostModel::min_cross_core_latency`]: since every kernel
//! entry is stamp-ordered by phase B, the only cross-core channel that
//! can reach a core *outside* the kernel is a TLB shootdown, and real
//! hardware cannot deliver one in less than the IPI send + handle
//! latency. A core running up to `W` ahead of an eviction therefore
//! never uses a translation staler than the hardware would permit.
//! When no maintenance timer is armed, the window additionally
//! *fast-forwards*: if the second-earliest horizon (other cores' clocks
//! and parked stamps) lies beyond `min + W`, the ceiling jumps straight
//! to it — the merged epochs are exactly the no-op epochs a fixed
//! window would burn creeping a lone straggler forward, so the bytes
//! cannot move (§14).
//!
//! Because the ceiling is a pure function of simulated state, phase A is
//! per-core independent, and phase B commits in a provably
//! fold-equivalent order, `(seed, config) → byte-identical RunReport`
//! at any thread count.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
// The sleep tier needs a real OS condvar (the parking_lot shim is
// spin-only by design); the barrier gate is cold, so std's poisoning
// overhead is irrelevant there.
use std::sync::{Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use cmcp_arch::{CoreId, Cycles, VirtPage};
use cmcp_kernel::{SchemeChoice, Syscall, Vmm};
use cmcp_trace::{EventKind, Recorder};

use crate::report::{EngineScaling, RunReport};
use crate::runner::{CoreRunner, Pause};
use crate::trace::Trace;

/// Host-side (thread-count- and machine-dependent) scaling counters for
/// one run. These never enter the byte-compared [`RunReport`] — repeat
/// runs at the same thread count produce identical reports but may
/// spin or sleep differently at the barriers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostScaling {
    /// Worker threads the engine actually ran (after clamping to the
    /// simulated core count).
    pub threads: usize,
    /// Epochs whose shardable prefix was large enough to commit
    /// concurrently (the two extra barrier crossings were paid).
    pub parallel_rounds: u64,
    /// Barrier-wait spin iterations across all workers.
    pub barrier_spins: u64,
    /// Barrier-wait `yield_now` calls across all workers.
    pub barrier_yields: u64,
    /// Barrier waits that fell through to a condvar sleep (the
    /// oversubscription tier: waiters stop burning a core).
    pub barrier_sleeps: u64,
}

/// Engine tuning seams, exposed for tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions {
    /// Commit every entry on worker 0 in pure stamp order even when a
    /// shardable prefix exists — the reference sequential fold the
    /// sharded path is property-tested against. Classification still
    /// runs (the scaling counters must not depend on execution mode).
    pub force_sequential_commit: bool,
}

/// Where a core stands between epochs.
#[derive(Clone, Copy)]
enum Status {
    /// Advancing in phase A.
    Running,
    /// Parked in the fault trap; the committer runs the handler.
    Fault { page: VirtPage, write: bool },
    /// Parked on an offloaded syscall; the committer executes it.
    Syscall { call: Syscall },
    /// Arrived at its rendezvous barrier this epoch (not yet noted).
    Arrived,
    /// Waiting at the rendezvous; excluded from the ceiling until every
    /// live core arrives.
    Waiting,
    /// Trace exhausted.
    Done,
}

/// One core's parked state, written by its worker at the end of phase A
/// and read/updated by the committer in phase B. The mutex is never
/// contended across phases (the host barrier separates them); it exists
/// so the engine stays within `forbid(unsafe_code)`.
struct Slot {
    status: Status,
    /// Virtual time at which the core parked (== its clock then).
    stamp: Cycles,
}

/// Spin iterations before a barrier waiter starts yielding.
const BARRIER_SPIN_LIMIT: u64 = 256;
/// `yield_now` calls before a waiter falls through to a condvar sleep.
/// Bounded so an oversubscribed run (threads > host CPUs) parks its
/// surplus waiters instead of convoying the scheduler forever.
const BARRIER_YIELD_LIMIT: u64 = 128;

/// Host-side sense-reversing barrier with a poison bit: a worker that
/// panics poisons it on unwind so the survivors return instead of
/// spinning forever, the scope join completes, and the original panic
/// propagates to the caller.
///
/// Waiting is three-tier — bounded spin, bounded `yield_now`, then a
/// condvar sleep — so threads ≤ cores cross in nanoseconds while an
/// oversubscribed run stops burning a host core per waiter.
struct PhaseBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
    /// Waiters currently registered on the sleep tier; reads and writes
    /// are serialized by `gate`, so a releaser can only miss a sleeper
    /// that will re-check the generation under the same lock.
    sleepers: AtomicUsize,
    gate: StdMutex<()>,
    wake: Condvar,
    // Host-side wait accounting (Relaxed; reported via `HostScaling`).
    spins: AtomicU64,
    yields: AtomicU64,
    sleeps: AtomicU64,
}

impl PhaseBarrier {
    fn new(parties: usize) -> PhaseBarrier {
        PhaseBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            gate: StdMutex::new(()),
            wake: Condvar::new(),
            spins: AtomicU64::new(0),
            yields: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
        }
    }

    /// Blocks until all parties arrive. Returns `false` if the barrier
    /// was poisoned (a sibling worker panicked) — callers bail out.
    ///
    /// Ordering: each arrival's `AcqRel` RMW on `arrived` joins the
    /// release sequence, so the last arriver's `Release` store to
    /// `generation` publishes *every* party's prior writes; a waiter's
    /// `Acquire` load of the new generation therefore sees all phase
    /// work that preceded the barrier, and the `arrived` reset by the
    /// releaser happens-before any re-arrival at the next generation.
    /// The sleep tier re-checks the generation under `gate`, which the
    /// releaser's store also holds — the classic monitor pattern, so a
    /// waiter can never sleep through a release.
    fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        if self.parties == 1 {
            return true;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            let any_sleepers = {
                let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
                self.generation
                    .store(gen.wrapping_add(1), Ordering::Release);
                self.sleepers.load(Ordering::Relaxed) > 0
            };
            if any_sleepers {
                self.wake.notify_all();
            }
            true
        } else {
            let mut spins = 0u64;
            let mut yields = 0u64;
            let crossed = loop {
                if self.generation.load(Ordering::Acquire) != gen {
                    break true;
                }
                if self.poisoned.load(Ordering::Acquire) {
                    break false;
                }
                if spins < BARRIER_SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else if yields < BARRIER_YIELD_LIMIT {
                    yields += 1;
                    std::thread::yield_now();
                } else {
                    self.sleeps.fetch_add(1, Ordering::Relaxed);
                    let mut g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
                    self.sleepers.fetch_add(1, Ordering::Relaxed);
                    while self.generation.load(Ordering::Acquire) == gen
                        && !self.poisoned.load(Ordering::Acquire)
                    {
                        g = self.wake.wait(g).unwrap_or_else(|e| e.into_inner());
                    }
                    self.sleepers.fetch_sub(1, Ordering::Relaxed);
                    drop(g);
                    break self.generation.load(Ordering::Acquire) != gen
                        || !self.poisoned.load(Ordering::Acquire);
                }
            };
            if spins > 0 {
                self.spins.fetch_add(spins, Ordering::Relaxed);
            }
            if yields > 0 {
                self.yields.fetch_add(yields, Ordering::Relaxed);
            }
            crossed && !self.poisoned.load(Ordering::Acquire)
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        // Take and drop the gate so a sleeper past its predicate check
        // cannot miss the notify, then wake everyone.
        drop(self.gate.lock().unwrap_or_else(|e| e.into_inner()));
        self.wake.notify_all();
    }
}

/// Poisons the phase barrier when a worker unwinds, so a panic surfaces
/// instead of wedging the surviving workers.
struct PoisonOnPanic<'a>(&'a PhaseBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One shard-local commit: a parked fault the classifier proved cannot
/// escape its commit shard this epoch. `seq_base` is the entry's
/// pre-reserved policy-event stamp window (global commit order), so the
/// merged policy stream sorts identically to the sequential fold no
/// matter which worker runs the entry.
#[derive(Clone, Copy)]
struct ShardTask {
    core: usize,
    page: VirtPage,
    write: bool,
    seq_base: u64,
}

/// Policy-event stamps reserved per shardable entry. A shard-committed
/// fault pushes at most one event (minor `MapCount` or fresh-major
/// `Insert`); the headroom is asserted in debug builds.
const SEQ_STRIDE: u64 = 4;

/// State shared by all workers for one run.
struct Shared {
    slots: Vec<Mutex<Slot>>,
    /// Epoch ceiling: phase A advances running cores while their clocks
    /// are strictly below it. Written by the committer, read by all.
    ceiling: AtomicU64,
    finished: AtomicBool,
    barrier: PhaseBarrier,
    /// Whether this epoch runs a concurrent shard-commit round (two
    /// extra barrier crossings). Written by worker 0 during planning,
    /// read by everyone after the plan barrier.
    parallel_round: AtomicBool,
    /// Epochs that actually committed concurrently (host-side counter).
    parallel_rounds: AtomicU64,
    /// Per-worker shard-task queues for the current parallel round, in
    /// global stamp order (same-shard tasks land on the same worker, so
    /// per-worker order implies per-shard stamp order).
    assignments: Vec<Mutex<Vec<ShardTask>>>,
}

/// What a phase-B candidate commits.
#[derive(Clone, Copy)]
enum EntryKind {
    /// Policy scan-timer tick.
    Scan,
    /// Periodic PSPT rebuild.
    Rebuild,
    /// A parked page fault; `shard` is its commit shard and `shardable`
    /// the classifier's verdict (only meaningful inside the prefix).
    Fault {
        page: VirtPage,
        write: bool,
        shard: usize,
        shardable: bool,
    },
    /// A parked offloaded syscall (always reconciliation class: the IKC
    /// ring and offload engine are shared, order-sensitive resources).
    Syscall { call: Syscall },
}

/// One phase-B candidate. Ordering is `(time, rank, core)`: rank orders
/// simultaneous events deterministically — the scan timer before the
/// rebuild timer before core entries (a timer due at `t` conceptually
/// fired while the cores were still en route to `t`).
#[derive(Clone, Copy)]
struct Cand {
    time: Cycles,
    rank: u8,
    core: usize,
    kind: EntryKind,
}

/// The phase-B state: maintenance timers, the rendezvous counter, the
/// epoch window, the candidate scratch, and the scaling counters.
/// Owned by worker 0.
struct Committer {
    window: Cycles,
    scanning: bool,
    scan_period: Cycles,
    next_scan: Cycles,
    rebuild_period: Cycles,
    next_rebuild: Cycles,
    barrier_seq: u64,
    threads: usize,
    force_sequential: bool,
    /// Fast-forward is sound only while no maintenance timer is armed
    /// (a timer firing mid-merged-epoch would fire at a different point
    /// in the straggler's progress than under the base window).
    fast_forward: bool,
    /// Reused per-epoch candidate buffer (sorted commit order).
    cands: Vec<Cand>,
    /// Where the reconciliation tail starts in `cands` for the epoch in
    /// flight (parallel rounds only).
    tail_start: usize,
    /// Batch limit to restore after a suppressed-flush parallel round.
    saved_batch: usize,
    scaling: EngineScaling,
}

impl Committer {
    /// Folds rendezvous arrivals, collects and classifies this epoch's
    /// candidates, and either commits everything inline (sequential
    /// epochs: no extra barriers) or publishes the shard plan and lets
    /// every worker commit its disjoint shards. Runs with every worker
    /// parked at the host barrier, so it owns all simulated state.
    fn plan_and_commit<R: Recorder>(&mut self, vmm: &Vmm<R>, shared: &Shared) {
        let ceiling = shared.ceiling.load(Ordering::Relaxed);
        self.scaling.epochs += 1;

        // Note this epoch's rendezvous arrivals.
        for slot in &shared.slots {
            let mut s = slot.lock();
            if matches!(s.status, Status::Arrived) {
                s.status = Status::Waiting;
            }
        }

        // Collect every candidate strictly below the ceiling. Committing
        // an entry can neither add nor remove candidates within this
        // phase (an unparked core only resumes next phase A; timers'
        // later firings are enumerated here), so one collection pass is
        // equivalent to the old per-round min-scan.
        self.cands.clear();
        if self.scanning {
            let mut t = self.next_scan;
            while t < ceiling {
                self.cands.push(Cand {
                    time: t,
                    rank: 0,
                    core: 0,
                    kind: EntryKind::Scan,
                });
                t += self.scan_period;
            }
        }
        if self.rebuild_period > 0 {
            let mut t = self.next_rebuild;
            while t < ceiling {
                self.cands.push(Cand {
                    time: t,
                    rank: 1,
                    core: 0,
                    kind: EntryKind::Rebuild,
                });
                t += self.rebuild_period;
            }
        }
        for (i, slot) in shared.slots.iter().enumerate() {
            let s = slot.lock();
            if s.stamp >= ceiling {
                continue;
            }
            match s.status {
                Status::Fault { page, write } => self.cands.push(Cand {
                    time: s.stamp,
                    rank: 2,
                    core: i,
                    kind: EntryKind::Fault {
                        page,
                        write,
                        shard: 0,
                        shardable: false,
                    },
                }),
                Status::Syscall { call } => self.cands.push(Cand {
                    time: s.stamp,
                    rank: 2,
                    core: i,
                    kind: EntryKind::Syscall { call },
                }),
                _ => {}
            }
        }
        self.cands
            .sort_unstable_by_key(|c| (c.time, c.rank, c.core));

        // Conservative classification (DESIGN.md §14): the shardable
        // prefix ends at the first entry whose effects might escape its
        // commit shard. Within the prefix, a fault is shard-local iff
        // the scheme is PSPT (per-block directory shards + sharded PT
        // locks), the allocator is the fixed-size pool (the buddy pool
        // is one global resource), and the fault is either minor (block
        // resident: PTE copy only) or a *fresh* major — no backing copy
        // to DMA in, and within the epoch's free-block budget so no
        // eviction can fire. Classification runs at every thread count
        // so the scaling counters stay thread-invariant. Multi-node
        // NUMA runs are never shardable: every commit's home/spill and
        // replica decisions read the shared per-node books, so they all
        // take the sequential reconciliation tail (deterministic at any
        // thread count by construction — DESIGN.md §15).
        let sharded_scheme = vmm.config().scheme == SchemeChoice::Pspt
            && !vmm.config().adaptive
            && vmm.config().cost.numa.is_single();
        let budget = vmm.pool_free_blocks().unwrap_or(0);
        let mut majors = 0usize;
        let mut prefix = 0usize;
        for c in self.cands.iter_mut() {
            let EntryKind::Fault {
                page,
                ref mut shard,
                ref mut shardable,
                ..
            } = c.kind
            else {
                break;
            };
            if !sharded_scheme {
                break;
            }
            if vmm.block_resident(page) {
                // Minor: resident-map read + sibling PTE copy, all under
                // this block's stripe/directory/lock shard.
                *shard = vmm.commit_shard_of(page);
                *shardable = true;
            } else if !vmm.backing_contains(page) && majors < budget {
                // Fresh major: pool pop (no eviction possible within the
                // budget — nothing frees frames mid-prefix), map, insert.
                majors += 1;
                *shard = vmm.commit_shard_of(page);
                *shardable = true;
            } else {
                break;
            }
            prefix += 1;
        }
        self.scaling.committed += self.cands.len() as u64;
        self.scaling.shardable += prefix as u64;
        self.scaling.reconciled += (self.cands.len() - prefix) as u64;

        // Two extra barrier crossings only pay off when every worker
        // gets something to do.
        let go_parallel =
            !self.force_sequential && self.threads > 1 && prefix >= self.threads.max(2);
        if go_parallel {
            let base = vmm.reserve_policy_seqs(prefix as u64 * SEQ_STRIDE);
            // Suppress threshold flushes for the round: a flush drains
            // *all* cores' buffers, which must not happen while another
            // worker is mid-push. Decision-neutral (see the kernel's
            // batch-limit contract); restored before the tail commits.
            self.saved_batch = vmm.policy_batch_limit();
            vmm.set_policy_batch(usize::MAX);
            for (idx, c) in self.cands[..prefix].iter().enumerate() {
                let EntryKind::Fault {
                    page, write, shard, ..
                } = c.kind
                else {
                    unreachable!("prefix holds faults only");
                };
                shared.assignments[shard % self.threads]
                    .lock()
                    .push(ShardTask {
                        core: c.core,
                        page,
                        write,
                        seq_base: base + idx as u64 * SEQ_STRIDE,
                    });
            }
            self.tail_start = prefix;
            shared.parallel_rounds.fetch_add(1, Ordering::Relaxed);
            shared.parallel_round.store(true, Ordering::Release);
        } else {
            shared.parallel_round.store(false, Ordering::Relaxed);
            self.commit_range(vmm, shared, 0, self.cands.len());
            self.epilogue(vmm, shared);
        }
    }

    /// Parallel rounds only: restores the flush threshold, commits the
    /// reconciliation tail in stamp order, and closes the epoch.
    fn commit_tail<R: Recorder>(&mut self, vmm: &Vmm<R>, shared: &Shared) {
        vmm.set_policy_batch(self.saved_batch);
        self.commit_range(vmm, shared, self.tail_start, self.cands.len());
        shared.parallel_round.store(false, Ordering::Relaxed);
        self.epilogue(vmm, shared);
    }

    /// Commits `cands[from..to]` in order on this thread — the
    /// sequential fold over that range.
    fn commit_range<R: Recorder>(&mut self, vmm: &Vmm<R>, shared: &Shared, from: usize, to: usize) {
        for idx in from..to {
            let c = self.cands[idx];
            match c.kind {
                EntryKind::Scan => {
                    vmm.scan_tick();
                    self.next_scan += self.scan_period;
                }
                EntryKind::Rebuild => {
                    vmm.rebuild_pspt();
                    self.next_rebuild += self.rebuild_period;
                }
                EntryKind::Fault { page, write, .. } => {
                    // A commit earlier in this fold (another core's fault
                    // on the same block, under the shared regular table)
                    // may have installed the mapping since this core's
                    // walk failed in phase A. Hardware retries the walk
                    // on fault return — a now-present PTE means no fault
                    // is ever taken, so re-probe before charging one.
                    if vmm.translate(CoreId(c.core as u16), page).is_none() {
                        vmm.handle_fault(CoreId(c.core as u16), page, write);
                    }
                    shared.slots[c.core].lock().status = Status::Running;
                }
                EntryKind::Syscall { call } => {
                    vmm.offload_syscall(CoreId(c.core as u16), call);
                    shared.slots[c.core].lock().status = Status::Running;
                }
            }
        }
    }

    /// Epoch close-out: rendezvous release, finish detection, and the
    /// next ceiling (with the timer-free fast-forward).
    fn epilogue<R: Recorder>(&mut self, vmm: &Vmm<R>, shared: &Shared) {
        let mut live = 0usize;
        let mut waiting = 0usize;
        for slot in &shared.slots {
            match slot.lock().status {
                Status::Done => {}
                Status::Waiting => {
                    live += 1;
                    waiting += 1;
                }
                _ => live += 1,
            }
        }

        if live == 0 {
            vmm.flush_policy_events();
            shared.finished.store(true, Ordering::Release);
            return;
        }

        // Rendezvous release: all live cores resume at the maximum
        // arrival time, exactly like an OpenMP barrier in virtual time.
        // This happens *before* the ceiling recomputation so waiting
        // cores rejoin the min().
        if waiting == live {
            let release = shared
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.lock().status, Status::Waiting))
                .map(|(i, _)| vmm.clocks()[i].now())
                .max()
                .unwrap_or(0);
            for (i, slot) in shared.slots.iter().enumerate() {
                let mut s = slot.lock();
                if matches!(s.status, Status::Waiting) {
                    if R::ENABLED {
                        let arrived = vmm.clocks()[i].now();
                        vmm.tracer().record(
                            i as u16,
                            release,
                            EventKind::BarrierArrive,
                            self.barrier_seq,
                            release - arrived,
                        );
                    }
                    vmm.clocks()[i].advance_to(release);
                    s.status = Status::Running;
                }
            }
            self.barrier_seq += 1;
            self.scaling.releases += 1;
            // The batch boundary of the policy-event stream: residual
            // per-core buffers drain under one policy-lock acquisition
            // while the whole machine is synchronized anyway.
            vmm.flush_policy_events();
        }

        // Next ceiling: the earliest thing that can happen anywhere —
        // a running core's clock or a still-parked event (its stamp
        // overshot this ceiling) — plus the cross-core window. With no
        // timer armed, a lone straggler more than a window behind the
        // runner-up fast-forwards to the runner-up's horizon: the
        // skipped epochs would each have advanced only the straggler
        // (everyone else sits at or beyond the horizon), committed
        // nothing of anyone else's, and delivered nothing (posts only
        // happen at commits the straggler itself triggers, which end
        // its phase A anyway) — pure no-ops, so merging them cannot
        // move a byte (§14).
        let mut m1 = u64::MAX;
        let mut m2 = u64::MAX;
        for (i, slot) in shared.slots.iter().enumerate() {
            let s = slot.lock();
            let bound = match s.status {
                Status::Running => vmm.clocks()[i].now(),
                Status::Fault { .. } | Status::Syscall { .. } => s.stamp,
                Status::Waiting | Status::Done => continue,
                Status::Arrived => unreachable!("arrivals were folded above"),
            };
            if bound < m1 {
                m2 = m1;
                m1 = bound;
            } else if bound < m2 {
                m2 = bound;
            }
        }
        debug_assert_ne!(m1, u64::MAX, "a live core must bound the ceiling");
        let base = m1.saturating_add(self.window);
        let ceiling = if self.fast_forward && m2 > base {
            self.scaling.fast_forwards += 1;
            m2
        } else {
            base
        };
        shared.ceiling.store(ceiling, Ordering::Release);
    }
}

/// Commits one shard-local task: the same re-probe + handler the
/// sequential fold runs, with the entry's pre-assigned policy-event
/// stamp window active.
fn commit_shard_task<R: Recorder>(vmm: &Vmm<R>, shared: &Shared, t: ShardTask) {
    let core = CoreId(t.core as u16);
    vmm.begin_policy_seq_override(core, t.seq_base);
    if vmm.translate(core, t.page).is_none() {
        vmm.handle_fault(core, t.page, t.write);
    }
    let next = vmm.end_policy_seq_override(core);
    debug_assert!(
        next >= t.seq_base && next - t.seq_base <= SEQ_STRIDE,
        "shard-committed entry overflowed its stamp window"
    );
    shared.slots[t.core].lock().status = Status::Running;
}

/// One worker's loop: advance owned cores to the ceiling (phase A),
/// rendezvous, let worker 0 plan/commit (phase B) — with two extra
/// crossings bracketing the concurrent shard round when one is on —
/// rendezvous, repeat.
fn worker<R: Recorder, F: Fn(usize) + Sync>(
    id: usize,
    cores: &mut [(usize, CoreRunner)],
    vmm: &Vmm<R>,
    trace: &Trace,
    shared: &Shared,
    hook: &F,
    mut committer: Option<&mut Committer>,
) {
    let _poison = PoisonOnPanic(&shared.barrier);
    loop {
        hook(id);
        let ceiling = shared.ceiling.load(Ordering::Acquire);
        for (i, runner) in cores.iter_mut() {
            let i = *i;
            if !matches!(shared.slots[i].lock().status, Status::Running) {
                continue;
            }
            let pause = runner.advance(vmm, &trace.cores[i], ceiling);
            let mut slot = shared.slots[i].lock();
            slot.stamp = vmm.clocks()[i].now();
            slot.status = match pause {
                Pause::Ceiling => Status::Running,
                Pause::Fault { page, write } => Status::Fault { page, write },
                Pause::Syscall { call } => Status::Syscall { call },
                Pause::Barrier => Status::Arrived,
                Pause::Done => Status::Done,
            };
        }
        if !shared.barrier.wait() {
            return;
        }
        if let Some(c) = committer.as_mut() {
            c.plan_and_commit(vmm, shared);
        }
        if !shared.barrier.wait() {
            return;
        }
        if shared.parallel_round.load(Ordering::Acquire) {
            {
                let mut tasks = shared.assignments[id].lock();
                for t in tasks.drain(..) {
                    commit_shard_task(vmm, shared, t);
                }
            }
            if !shared.barrier.wait() {
                return;
            }
            if let Some(c) = committer.as_mut() {
                c.commit_tail(vmm, shared);
            }
            if !shared.barrier.wait() {
                return;
            }
        }
        if shared.finished.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Runs `trace` against `vmm` on `threads` host workers and returns the
/// report. The report is byte-identical for every `threads` value.
///
/// Panics if `threads == 0`, if the trace shape is invalid (mismatched
/// barrier counts), or if the trace's core count differs from the
/// kernel's.
pub fn run<R: Recorder>(vmm: &Vmm<R>, trace: &Trace, threads: usize) -> RunReport {
    run_with_host_stats(vmm, trace, threads).0
}

/// [`run`], additionally returning the host-side (thread- and
/// machine-dependent) scaling counters: barrier wait tiers and the
/// number of concurrently committed rounds.
pub fn run_with_host_stats<R: Recorder>(
    vmm: &Vmm<R>,
    trace: &Trace,
    threads: usize,
) -> (RunReport, HostScaling) {
    run_core(vmm, trace, threads, &|_| {}, EngineOptions::default())
}

/// [`run`] with a per-worker, per-epoch hook — a test seam for fault
/// injection into the host-threading layer (e.g. proving that a worker
/// panic surfaces instead of wedging the run).
#[doc(hidden)]
pub fn run_with_worker_hook<R: Recorder, F: Fn(usize) + Sync>(
    vmm: &Vmm<R>,
    trace: &Trace,
    threads: usize,
    hook: &F,
) -> RunReport {
    run_core(vmm, trace, threads, hook, EngineOptions::default()).0
}

/// [`run`] with explicit [`EngineOptions`] — the property-test seam for
/// comparing the sharded commit path against the pure sequential fold.
#[doc(hidden)]
pub fn run_with_options<R: Recorder>(
    vmm: &Vmm<R>,
    trace: &Trace,
    threads: usize,
    opts: EngineOptions,
) -> (RunReport, HostScaling) {
    run_core(vmm, trace, threads, &|_| {}, opts)
}

fn run_core<R: Recorder, F: Fn(usize) + Sync>(
    vmm: &Vmm<R>,
    trace: &Trace,
    threads: usize,
    hook: &F,
    opts: EngineOptions,
) -> (RunReport, HostScaling) {
    assert!(threads > 0, "engine thread count must be >= 1");
    trace.validate().expect("invalid trace");
    let n = trace.cores.len();
    assert_eq!(
        n,
        vmm.config().cores,
        "trace core count must match kernel config"
    );

    let window = vmm.cost().min_cross_core_latency();
    let threads = threads.min(n.max(1));
    let shared = Shared {
        slots: (0..n)
            .map(|_| {
                Mutex::new(Slot {
                    status: Status::Running,
                    stamp: 0,
                })
            })
            .collect(),
        // All clocks start at zero, so the first ceiling is the window.
        ceiling: AtomicU64::new(window),
        finished: AtomicBool::new(n == 0),
        barrier: PhaseBarrier::new(threads),
        parallel_round: AtomicBool::new(false),
        parallel_rounds: AtomicU64::new(0),
        assignments: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
    };
    let scanning = vmm.wants_periodic_scan();
    let rebuild_period = vmm.rebuild_period();
    let mut committer = Committer {
        window,
        scanning,
        scan_period: vmm.scan_period(),
        next_scan: vmm.scan_period(),
        rebuild_period,
        next_rebuild: rebuild_period,
        barrier_seq: 0,
        threads,
        force_sequential: opts.force_sequential_commit,
        fast_forward: !scanning && rebuild_period == 0,
        cands: Vec::new(),
        tail_start: 0,
        saved_batch: 0,
        scaling: EngineScaling::default(),
    };

    // Core i belongs to worker i % threads, like the old parallel
    // engine's chunking — neighbours spread across workers.
    let mut chunks: Vec<Vec<(usize, CoreRunner)>> = (0..threads).map(|_| Vec::new()).collect();
    for i in 0..n {
        chunks[i % threads].push((i, CoreRunner::new(CoreId(i as u16), vmm)));
    }

    if n > 0 {
        if threads == 1 {
            // The degenerate case: phase A and phase B alternate on this
            // thread with no spawns and free barriers — the deterministic
            // engine, by construction rather than by a separate code path.
            worker(
                0,
                &mut chunks[0],
                vmm,
                trace,
                &shared,
                hook,
                Some(&mut committer),
            );
        } else {
            let (chunk0, rest) = chunks.split_at_mut(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .enumerate()
                    .map(|(k, chunk)| {
                        let shared = &shared;
                        scope.spawn(move || worker(k + 1, chunk, vmm, trace, shared, hook, None))
                    })
                    .collect();
                worker(
                    0,
                    &mut chunk0[0],
                    vmm,
                    trace,
                    &shared,
                    hook,
                    Some(&mut committer),
                );
                // Join explicitly so a panicked worker's original payload
                // propagates (the scope's implicit join would replace it
                // with "a scoped thread panicked").
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    }

    let mut all: Vec<(usize, CoreRunner)> = chunks.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    let runners: Vec<CoreRunner> = all.into_iter().map(|(_, r)| r).collect();
    let mut report = RunReport::collect(vmm, &runners, &trace.label, &config_label(vmm));
    report.scaling = committer.scaling;
    let host = HostScaling {
        threads,
        parallel_rounds: shared.parallel_rounds.load(Ordering::Relaxed),
        barrier_spins: shared.barrier.spins.load(Ordering::Relaxed),
        barrier_yields: shared.barrier.yields.load(Ordering::Relaxed),
        barrier_sleeps: shared.barrier.sleeps.load(Ordering::Relaxed),
    };
    (report, host)
}

/// Runs `trace` against `vmm` single-threaded. Kept as the familiar
/// name for the bit-reproducible configuration; it is [`run`] with
/// `threads = 1`, not a separate engine.
pub fn run_deterministic<R: Recorder>(vmm: &Vmm<R>, trace: &Trace) -> RunReport {
    run(vmm, trace, 1)
}

/// Runs `trace` against `vmm` on `threads` host workers; `threads = 0`
/// selects the available parallelism. The report is byte-identical to
/// [`run_deterministic`]'s regardless of the count.
pub fn run_parallel<R: Recorder>(vmm: &Vmm<R>, trace: &Trace, threads: usize) -> RunReport {
    run(vmm, trace, resolve_threads(threads))
}

/// Resolves a thread-count request: `0` means "auto" — the host's
/// available parallelism (what `--threads auto` and
/// `SimulationBuilder::threads_auto` report in the run header).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

pub(crate) fn config_label<R: Recorder>(vmm: &Vmm<R>) -> String {
    let cfg = vmm.config();
    let mut label = format!(
        "{} + {} @ {}",
        cfg.scheme,
        cfg.policy.label(),
        cfg.block_size
    );
    if cfg.adaptive {
        label.push_str(" (adaptive)");
    }
    if !cfg.tiers().is_flat() {
        label.push_str(&format!(" [{} tiers]", cfg.tiers().tiers.len()));
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;
    use cmcp_arch::{PageSize, VirtPage};
    use cmcp_core::PolicyKind;
    use cmcp_kernel::KernelConfig;

    /// Two cores stream over private ranges with barriers between phases.
    fn private_sweep_trace(cores: usize, pages_per_core: u32, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "private-sweep");
        for c in 0..cores {
            let base = VirtPage((c as u64) << 20);
            for _ in 0..rounds {
                t.cores[c].ops.push(Op::Stream {
                    start: base,
                    pages: pages_per_core,
                    write: false,
                    work_per_page: 4,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    /// Cores share a hot range and write private ranges — eviction
    /// pressure with cross-core shootdown traffic when memory is tight.
    fn shared_and_private_trace(cores: usize, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "par-test");
        for c in 0..cores {
            let private = VirtPage(0x1000 + ((c as u64) << 8));
            for _ in 0..rounds {
                t.cores[c].ops.push(Op::Stream {
                    start: VirtPage(0),
                    pages: 16,
                    write: false,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Stream {
                    start: private,
                    pages: 32,
                    write: true,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    #[test]
    fn run_completes_and_reports() {
        let t = private_sweep_trace(2, 64, 3);
        let vmm = Vmm::new(KernelConfig::new(2, 256));
        let r = run_deterministic(&vmm, &t);
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.per_core[0].dtlb_accesses, 64 * 3);
        // Plenty of memory: only cold faults.
        assert_eq!(r.per_core[0].page_faults, 64);
        assert_eq!(r.global.evictions, 0);
        // The scaling counters balance and saw every fault commit.
        assert!(r.scaling.epochs > 0);
        assert_eq!(
            r.scaling.committed,
            r.scaling.shardable + r.scaling.reconciled
        );
        assert!(r.scaling.committed >= 128, "both cores' faults commit");
    }

    #[test]
    fn runs_are_bit_identical() {
        let t = private_sweep_trace(4, 128, 4);
        let run = || {
            let vmm = Vmm::new(KernelConfig::new(4, 96).with_policy(PolicyKind::Cmcp { p: 0.5 }));
            let r = run_deterministic(&vmm, &t);
            (r.runtime_cycles, r.avg_page_faults(), r.global.evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        // The tentpole invariant in miniature: eviction pressure, LRU
        // (scan timer live), shootdowns — and the full report rendering
        // must agree byte-for-byte at 1, 2, and 4 workers.
        let t = shared_and_private_trace(4, 4);
        let render = |threads: usize| {
            let vmm = Vmm::new(KernelConfig::new(4, 48).with_policy(PolicyKind::Lru));
            format!("{:?}", super::run(&vmm, &t, threads))
        };
        let base = render(1);
        assert_eq!(base, render(2), "threads=2 must match threads=1");
        assert_eq!(base, render(4), "threads=4 must match threads=1");
    }

    #[test]
    fn sharded_commit_rounds_fire_and_match_the_sequential_fold() {
        // Ample memory so every fault is shardable (minors + fresh
        // majors, no backing, no evictions): multi-thread runs must
        // actually take the concurrent shard-commit path and still
        // render byte-identically to the forced sequential fold.
        let t = shared_and_private_trace(8, 4);
        let mk = || Vmm::new(KernelConfig::new(8, 512).with_policy(PolicyKind::Cmcp { p: 0.5 }));
        let vmm = mk();
        let (sharded, host) = super::run_with_options(&vmm, &t, 4, EngineOptions::default());
        assert!(
            host.parallel_rounds > 0,
            "8 cores faulting under ample memory must trigger parallel rounds"
        );
        assert!(sharded.scaling.shardable > 0);
        let vmm = mk();
        let (reference, ref_host) = super::run_with_options(
            &vmm,
            &t,
            4,
            EngineOptions {
                force_sequential_commit: true,
            },
        );
        assert_eq!(ref_host.parallel_rounds, 0, "reference must never shard");
        assert_eq!(
            format!("{sharded:?}"),
            format!("{reference:?}"),
            "sharded commit must equal the sequential fold byte-for-byte"
        );
    }

    #[test]
    fn fast_forward_engages_without_timers_and_never_with_them() {
        // One straggler core works through a long private phase while
        // the other sits far ahead: with no scan timer armed the engine
        // must fast-forward instead of creeping window-by-window.
        let mut t = Trace::new(2, "straggle");
        t.cores[0].ops.push(Op::Stream {
            start: VirtPage(0),
            pages: 64,
            write: false,
            work_per_page: 8,
        });
        t.cores[1].ops.push(Op::Compute(200_000_000));
        t.cores[1].ops.push(Op::touch(VirtPage(1 << 20), false, 1));
        let vmm = Vmm::new(KernelConfig::new(2, 256));
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.scaling.fast_forwards > 0,
            "straggler phases must fast-forward: {:?}",
            r.scaling
        );
        // LRU arms the scan timer, which forbids fast-forwarding.
        let vmm = Vmm::new(KernelConfig::new(2, 256).with_policy(PolicyKind::Lru));
        let r = run_deterministic(&vmm, &t);
        assert_eq!(r.scaling.fast_forwards, 0, "timers disable fast-forward");
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let t = private_sweep_trace(2, 16, 1);
        let vmm = Vmm::new(KernelConfig::new(2, 64));
        let r = super::run(&vmm, &t, 64);
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.per_core[0].page_faults, 16);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_is_rejected() {
        let t = private_sweep_trace(1, 1, 1);
        let vmm = Vmm::new(KernelConfig::new(1, 4));
        super::run(&vmm, &t, 0);
    }

    #[test]
    fn resolve_threads_maps_zero_to_host_parallelism() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn panicking_worker_surfaces_the_panic() {
        // Regression for the PR 2 wedge class: a dead worker must not
        // leave the survivors spinning on a frozen horizon. The poisoned
        // phase barrier bails everyone out and the original panic
        // propagates through the scope join.
        let t = private_sweep_trace(4, 64, 2);
        let vmm = Vmm::new(KernelConfig::new(4, 256));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_worker_hook(&vmm, &t, 4, &|id| {
                if id == 2 {
                    panic!("injected worker panic");
                }
            })
        }));
        let payload = result.expect_err("the worker panic must propagate, not wedge");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("injected worker panic"),
            "original payload must survive: {msg:?}"
        );
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        // Core 1 computes 1M cycles before the barrier; core 0 nothing.
        let mut t = Trace::new(2, "skew");
        t.cores[0].ops.push(Op::Barrier);
        t.cores[1].ops.push(Op::Compute(1_000_000));
        t.cores[1].ops.push(Op::Barrier);
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        let vmm = Vmm::new(KernelConfig::new(2, 16));
        run_deterministic(&vmm, &t);
        assert!(
            vmm.clocks()[0].now() >= 1_000_000,
            "core0 waited at the barrier"
        );
    }

    #[test]
    fn memory_pressure_causes_evictions_and_refaults() {
        // One core sweeps 64 pages repeatedly with only 32 resident.
        let mut t = Trace::new(1, "thrash");
        for _ in 0..4 {
            t.cores[0].ops.push(Op::Stream {
                start: VirtPage(0),
                pages: 64,
                write: true,
                work_per_page: 2,
            });
        }
        let vmm = Vmm::new(KernelConfig::new(1, 32));
        let r = run_deterministic(&vmm, &t);
        assert!(r.global.evictions > 64, "sweep must thrash");
        assert!(r.per_core[0].page_faults > 64);
        assert!(r.dma_bytes.1 > 0, "dirty sweeps write back");
        assert!(r.global.refaults > 0);
        // Refaults DMA backing copies in: reconciliation class.
        assert!(r.scaling.reconciled > 0, "{:?}", r.scaling);
    }

    #[test]
    fn parallel_run_handles_memory_pressure() {
        let t = shared_and_private_trace(4, 4);
        // Footprint: 16 shared + 4×32 private = 144 pages; constrain to 64.
        let vmm = Vmm::new(KernelConfig::new(4, 64).with_policy(PolicyKind::Cmcp { p: 0.5 }));
        let r = super::run(&vmm, &t, 4);
        assert!(r.global.evictions > 0);
        assert!(r.runtime_cycles > 0);
        // Every core executed all its touches.
        for c in &r.per_core {
            assert_eq!(c.dtlb_accesses, 4 * (16 + 32));
        }
    }

    #[test]
    fn scan_timer_fires_under_lru() {
        let mut t = Trace::new(1, "scan");
        // Enough compute to cross several 10 ms scan periods.
        for _ in 0..5 {
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(11_000_000));
        }
        let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(PolicyKind::Lru));
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.scan_ticks >= 4,
            "timer must fire each period: {}",
            r.global.scan_ticks
        );
    }

    #[test]
    fn no_scan_ticks_for_fifo_or_cmcp() {
        for policy in [PolicyKind::Fifo, PolicyKind::Cmcp { p: 0.75 }] {
            let mut t = Trace::new(1, "noscan");
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(50_000_000));
            let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(policy));
            let r = run_deterministic(&vmm, &t);
            assert_eq!(r.global.scan_ticks, 0);
        }
    }

    #[test]
    fn config_label_mentions_all_knobs() {
        let vmm = Vmm::new(
            KernelConfig::new(1, 4)
                .with_policy(PolicyKind::Lru)
                .with_block_size(PageSize::K64),
        );
        let label = config_label(&vmm);
        assert!(label.contains("PSPT"));
        assert!(label.contains("LRU"));
        assert!(label.contains("64kB"));
    }

    #[test]
    fn syscall_op_blocks_the_core() {
        let mut t = Trace::new(1, "io");
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        t.cores[0].ops.push(Op::Syscall {
            service: 10_000,
            payload: 1 << 20,
            write: true,
        });
        let vmm = Vmm::new(KernelConfig::new(1, 8));
        run_deterministic(&vmm, &t);
        assert_eq!(vmm.offload().total_calls(), 1);
        assert_eq!(vmm.offload().total_payload(), 1 << 20);
        // A 1 MB IKC write is far more expensive than the page touch.
        assert!(vmm.clocks()[0].now() > 100_000);
    }

    #[test]
    fn rebuild_timer_tears_down_and_recovers() {
        // Two cores share a block; after the rebuild period passes, the
        // mappings are torn down and re-established via minor faults.
        let mut t = Trace::new(2, "rebuild");
        for c in 0..2 {
            for round in 0..6 {
                t.cores[c].ops.push(Op::touch(VirtPage(7), false, 1));
                t.cores[c].ops.push(Op::Compute(400_000 + round as u64));
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        let mut cfg = KernelConfig::new(2, 8);
        cfg.pspt_rebuild_period = 1_000_000;
        let vmm = Vmm::new(cfg);
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.rebuilds >= 1,
            "timer must fire: {}",
            r.global.rebuilds
        );
        // Extra faults beyond the 1 cold major + 1 minor: the re-mapping
        // after each rebuild.
        let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
        assert!(faults > 2, "rebuild forces re-faulting: {faults}");
        assert_eq!(r.global.evictions, 0, "frames never moved");
        assert_eq!(r.dma_bytes, (0, 0), "no data was transferred");
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_count_is_rejected() {
        let t = private_sweep_trace(2, 4, 1);
        let vmm = Vmm::new(KernelConfig::new(3, 16));
        run_deterministic(&vmm, &t);
    }
}
