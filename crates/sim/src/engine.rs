//! The unified sharded discrete-event engine.
//!
//! One event-advance code path serves every thread count; `threads = 1`
//! *is* the deterministic engine, and any other count produces the
//! byte-identical report. Execution alternates two phases separated by
//! host-side sense-reversing barriers:
//!
//! * **Phase A (parallel):** simulated cores are partitioned round-robin
//!   across workers; each worker advances its *running* cores freely
//!   until they reach the epoch ceiling or park at a kernel entry (a
//!   failed page walk, a syscall, a rendezvous barrier) — see
//!   [`crate::runner::Pause`]. Phase A touches only frozen kernel state:
//!   page-table reads, commutative accessed/dirty PTE bits, and each
//!   core's own TLB/clock/stats, so its outcome per core is independent
//!   of scheduling.
//! * **Phase B (sequential):** one committer executes every parked
//!   kernel event and every due maintenance timer strictly below the
//!   ceiling, ordered by `(virtual_time, event_rank, core_id)`. All
//!   cross-core effects — evictions, shootdowns, policy updates, frame
//!   movement — happen here, at exact reproducible stamps. Rendezvous
//!   barriers release when every live core is waiting; the per-core
//!   policy-event batches are flushed at each release and at run end.
//!
//! The epoch ceiling is `min(next event time) + W` where `W` is
//! [`cmcp_arch::CostModel::min_cross_core_latency`]: since every kernel
//! entry is stamp-ordered by phase B, the only cross-core channel that
//! can reach a core *outside* the kernel is a TLB shootdown, and real
//! hardware cannot deliver one in less than the IPI send + handle
//! latency. A core running up to `W` ahead of an eviction therefore
//! never uses a translation staler than the hardware would permit.
//!
//! Because the ceiling is a pure function of simulated state, phase A is
//! per-core independent, and phase B is a deterministic sequential fold,
//! `(seed, config) → byte-identical RunReport` at any thread count.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use cmcp_arch::{CoreId, Cycles, VirtPage};
use cmcp_kernel::{Syscall, Vmm};
use cmcp_trace::{EventKind, Recorder};

use crate::report::RunReport;
use crate::runner::{CoreRunner, Pause};
use crate::trace::Trace;

/// Where a core stands between epochs.
#[derive(Clone, Copy)]
enum Status {
    /// Advancing in phase A.
    Running,
    /// Parked in the fault trap; the committer runs the handler.
    Fault { page: VirtPage, write: bool },
    /// Parked on an offloaded syscall; the committer executes it.
    Syscall { call: Syscall },
    /// Arrived at its rendezvous barrier this epoch (not yet noted).
    Arrived,
    /// Waiting at the rendezvous; excluded from the ceiling until every
    /// live core arrives.
    Waiting,
    /// Trace exhausted.
    Done,
}

/// One core's parked state, written by its worker at the end of phase A
/// and read/updated by the committer in phase B. The mutex is never
/// contended across phases (the host barrier separates them); it exists
/// so the engine stays within `forbid(unsafe_code)`.
struct Slot {
    status: Status,
    /// Virtual time at which the core parked (== its clock then).
    stamp: Cycles,
}

/// Host-side sense-reversing spin barrier with a poison bit: a worker
/// that panics poisons it on unwind so the survivors return instead of
/// spinning forever, the scope join completes, and the original panic
/// propagates to the caller.
struct PhaseBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl PhaseBarrier {
    fn new(parties: usize) -> PhaseBarrier {
        PhaseBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all parties arrive. Returns `false` if the barrier
    /// was poisoned (a sibling worker panicked) — callers bail out.
    ///
    /// Ordering: each arrival's `AcqRel` RMW on `arrived` joins the
    /// release sequence, so the last arriver's `Release` store to
    /// `generation` publishes *every* party's prior writes; a waiter's
    /// `Acquire` load of the new generation therefore sees all phase
    /// work that preceded the barrier, and the `arrived` reset by the
    /// releaser happens-before any re-arrival at the next generation.
    fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        if self.parties == 1 {
            return true;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            true
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }
}

/// Poisons the phase barrier when a worker unwinds, so a panic surfaces
/// instead of wedging the surviving workers.
struct PoisonOnPanic<'a>(&'a PhaseBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// State shared by all workers for one run.
struct Shared {
    slots: Vec<Mutex<Slot>>,
    /// Epoch ceiling: phase A advances running cores while their clocks
    /// are strictly below it. Written by the committer, read by all.
    ceiling: AtomicU64,
    finished: AtomicBool,
    barrier: PhaseBarrier,
}

/// The sequential phase-B state: maintenance timers, the rendezvous
/// counter, and the epoch window. Owned by worker 0.
struct Committer {
    window: Cycles,
    scanning: bool,
    scan_period: Cycles,
    next_scan: Cycles,
    rebuild_period: Cycles,
    next_rebuild: Cycles,
    barrier_seq: u64,
}

/// Candidate ordering for phase B: `(time, rank, core)`. Rank orders
/// simultaneous events deterministically — the scan timer before the
/// rebuild timer before core events (a timer due at `t` conceptually
/// fired while the cores were still en route to `t`).
type Candidate = (Cycles, u8, usize);

fn consider(best: &mut Option<Candidate>, cand: Candidate) {
    let replace = match best {
        Some(b) => cand < *b,
        None => true,
    };
    if replace {
        *best = Some(cand);
    }
}

impl Committer {
    /// Executes every kernel event and timer strictly below the epoch
    /// ceiling in stamp order, releases the rendezvous barrier if every
    /// live core is waiting, and publishes the next ceiling (or the
    /// finished flag). Runs with every worker parked at the host
    /// barrier, so it owns all simulated state.
    fn commit<R: Recorder>(&mut self, vmm: &Vmm<R>, shared: &Shared) {
        let ceiling = shared.ceiling.load(Ordering::Relaxed);

        // Note this epoch's rendezvous arrivals.
        for slot in &shared.slots {
            let mut s = slot.lock();
            if matches!(s.status, Status::Arrived) {
                s.status = Status::Waiting;
            }
        }

        // Stamp-ordered kernel commits below the ceiling. Each round
        // either advances a timer or unparks a core, so the loop is
        // finite; a handled fault may re-park next epoch (refault) but
        // cannot re-enter this round.
        loop {
            let mut best: Option<Candidate> = None;
            if self.scanning && self.next_scan < ceiling {
                consider(&mut best, (self.next_scan, 0, 0));
            }
            if self.rebuild_period > 0 && self.next_rebuild < ceiling {
                consider(&mut best, (self.next_rebuild, 1, 0));
            }
            for (i, slot) in shared.slots.iter().enumerate() {
                let s = slot.lock();
                if matches!(s.status, Status::Fault { .. } | Status::Syscall { .. })
                    && s.stamp < ceiling
                {
                    consider(&mut best, (s.stamp, 2, i));
                }
            }
            let Some((_, rank, i)) = best else { break };
            match rank {
                0 => {
                    vmm.scan_tick();
                    self.next_scan += self.scan_period;
                }
                1 => {
                    vmm.rebuild_pspt();
                    self.next_rebuild += self.rebuild_period;
                }
                _ => {
                    let mut s = shared.slots[i].lock();
                    match s.status {
                        Status::Fault { page, write } => {
                            // A commit earlier in this fold (another
                            // core's fault on the same block, under the
                            // shared regular table) may have installed
                            // the mapping since this core's walk failed
                            // in phase A. Hardware retries the walk on
                            // fault return — a now-present PTE means no
                            // fault is ever taken, so re-probe before
                            // charging one.
                            if vmm.translate(CoreId(i as u16), page).is_none() {
                                vmm.handle_fault(CoreId(i as u16), page, write);
                            }
                        }
                        Status::Syscall { call } => {
                            vmm.offload_syscall(CoreId(i as u16), call);
                        }
                        _ => unreachable!("candidate must be parked"),
                    }
                    s.status = Status::Running;
                }
            }
        }

        let mut live = 0usize;
        let mut waiting = 0usize;
        for slot in &shared.slots {
            match slot.lock().status {
                Status::Done => {}
                Status::Waiting => {
                    live += 1;
                    waiting += 1;
                }
                _ => live += 1,
            }
        }

        if live == 0 {
            vmm.flush_policy_events();
            shared.finished.store(true, Ordering::Release);
            return;
        }

        // Rendezvous release: all live cores resume at the maximum
        // arrival time, exactly like an OpenMP barrier in virtual time.
        // This happens *before* the ceiling recomputation so waiting
        // cores rejoin the min().
        if waiting == live {
            let release = shared
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.lock().status, Status::Waiting))
                .map(|(i, _)| vmm.clocks()[i].now())
                .max()
                .unwrap_or(0);
            for (i, slot) in shared.slots.iter().enumerate() {
                let mut s = slot.lock();
                if matches!(s.status, Status::Waiting) {
                    if R::ENABLED {
                        let arrived = vmm.clocks()[i].now();
                        vmm.tracer().record(
                            i as u16,
                            release,
                            EventKind::BarrierArrive,
                            self.barrier_seq,
                            release - arrived,
                        );
                    }
                    vmm.clocks()[i].advance_to(release);
                    s.status = Status::Running;
                }
            }
            self.barrier_seq += 1;
            // The batch boundary of the policy-event stream: residual
            // per-core buffers drain under one policy-lock acquisition
            // while the whole machine is synchronized anyway.
            vmm.flush_policy_events();
        }

        // Next ceiling: the earliest thing that can happen anywhere —
        // a running core's clock or a still-parked event (its stamp
        // overshot this ceiling) — plus the cross-core window.
        let mut min_next = u64::MAX;
        for (i, slot) in shared.slots.iter().enumerate() {
            let s = slot.lock();
            match s.status {
                Status::Running => min_next = min_next.min(vmm.clocks()[i].now()),
                Status::Fault { .. } | Status::Syscall { .. } => {
                    min_next = min_next.min(s.stamp);
                }
                Status::Waiting | Status::Done => {}
                Status::Arrived => unreachable!("arrivals were folded above"),
            }
        }
        debug_assert_ne!(min_next, u64::MAX, "a live core must bound the ceiling");
        shared
            .ceiling
            .store(min_next.saturating_add(self.window), Ordering::Release);
    }
}

/// One worker's loop: advance owned cores to the ceiling (phase A),
/// rendezvous, let worker 0 commit (phase B), rendezvous, repeat.
fn worker<R: Recorder, F: Fn(usize) + Sync>(
    id: usize,
    cores: &mut [(usize, CoreRunner)],
    vmm: &Vmm<R>,
    trace: &Trace,
    shared: &Shared,
    hook: &F,
    mut committer: Option<&mut Committer>,
) {
    let _poison = PoisonOnPanic(&shared.barrier);
    loop {
        hook(id);
        let ceiling = shared.ceiling.load(Ordering::Acquire);
        for (i, runner) in cores.iter_mut() {
            let i = *i;
            if !matches!(shared.slots[i].lock().status, Status::Running) {
                continue;
            }
            let pause = runner.advance(vmm, &trace.cores[i], ceiling);
            let mut slot = shared.slots[i].lock();
            slot.stamp = vmm.clocks()[i].now();
            slot.status = match pause {
                Pause::Ceiling => Status::Running,
                Pause::Fault { page, write } => Status::Fault { page, write },
                Pause::Syscall { call } => Status::Syscall { call },
                Pause::Barrier => Status::Arrived,
                Pause::Done => Status::Done,
            };
        }
        if !shared.barrier.wait() {
            return;
        }
        if let Some(c) = committer.as_mut() {
            c.commit(vmm, shared);
        }
        if !shared.barrier.wait() {
            return;
        }
        if shared.finished.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Runs `trace` against `vmm` on `threads` host workers and returns the
/// report. The report is byte-identical for every `threads` value.
///
/// Panics if `threads == 0`, if the trace shape is invalid (mismatched
/// barrier counts), or if the trace's core count differs from the
/// kernel's.
pub fn run<R: Recorder>(vmm: &Vmm<R>, trace: &Trace, threads: usize) -> RunReport {
    run_with_worker_hook(vmm, trace, threads, &|_| {})
}

/// [`run`] with a per-worker, per-epoch hook — a test seam for fault
/// injection into the host-threading layer (e.g. proving that a worker
/// panic surfaces instead of wedging the run).
#[doc(hidden)]
pub fn run_with_worker_hook<R: Recorder, F: Fn(usize) + Sync>(
    vmm: &Vmm<R>,
    trace: &Trace,
    threads: usize,
    hook: &F,
) -> RunReport {
    assert!(threads > 0, "engine thread count must be >= 1");
    trace.validate().expect("invalid trace");
    let n = trace.cores.len();
    assert_eq!(
        n,
        vmm.config().cores,
        "trace core count must match kernel config"
    );

    let window = vmm.cost().min_cross_core_latency();
    let threads = threads.min(n.max(1));
    let shared = Shared {
        slots: (0..n)
            .map(|_| {
                Mutex::new(Slot {
                    status: Status::Running,
                    stamp: 0,
                })
            })
            .collect(),
        // All clocks start at zero, so the first ceiling is the window.
        ceiling: AtomicU64::new(window),
        finished: AtomicBool::new(n == 0),
        barrier: PhaseBarrier::new(threads),
    };
    let mut committer = Committer {
        window,
        scanning: vmm.wants_periodic_scan(),
        scan_period: vmm.scan_period(),
        next_scan: vmm.scan_period(),
        rebuild_period: vmm.rebuild_period(),
        next_rebuild: vmm.rebuild_period(),
        barrier_seq: 0,
    };

    // Core i belongs to worker i % threads, like the old parallel
    // engine's chunking — neighbours spread across workers.
    let mut chunks: Vec<Vec<(usize, CoreRunner)>> = (0..threads).map(|_| Vec::new()).collect();
    for i in 0..n {
        chunks[i % threads].push((i, CoreRunner::new(CoreId(i as u16), vmm)));
    }

    if n > 0 {
        if threads == 1 {
            // The degenerate case: phase A and phase B alternate on this
            // thread with no spawns and free barriers — the deterministic
            // engine, by construction rather than by a separate code path.
            worker(
                0,
                &mut chunks[0],
                vmm,
                trace,
                &shared,
                hook,
                Some(&mut committer),
            );
        } else {
            let (chunk0, rest) = chunks.split_at_mut(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .enumerate()
                    .map(|(k, chunk)| {
                        let shared = &shared;
                        scope.spawn(move || worker(k + 1, chunk, vmm, trace, shared, hook, None))
                    })
                    .collect();
                worker(
                    0,
                    &mut chunk0[0],
                    vmm,
                    trace,
                    &shared,
                    hook,
                    Some(&mut committer),
                );
                // Join explicitly so a panicked worker's original payload
                // propagates (the scope's implicit join would replace it
                // with "a scoped thread panicked").
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    }

    let mut all: Vec<(usize, CoreRunner)> = chunks.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    let runners: Vec<CoreRunner> = all.into_iter().map(|(_, r)| r).collect();
    RunReport::collect(vmm, &runners, &trace.label, &config_label(vmm))
}

/// Runs `trace` against `vmm` single-threaded. Kept as the familiar
/// name for the bit-reproducible configuration; it is [`run`] with
/// `threads = 1`, not a separate engine.
pub fn run_deterministic<R: Recorder>(vmm: &Vmm<R>, trace: &Trace) -> RunReport {
    run(vmm, trace, 1)
}

/// Runs `trace` against `vmm` on `threads` host workers; `threads = 0`
/// selects the available parallelism. The report is byte-identical to
/// [`run_deterministic`]'s regardless of the count.
pub fn run_parallel<R: Recorder>(vmm: &Vmm<R>, trace: &Trace, threads: usize) -> RunReport {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        threads
    };
    run(vmm, trace, threads)
}

pub(crate) fn config_label<R: Recorder>(vmm: &Vmm<R>) -> String {
    let cfg = vmm.config();
    let mut label = format!(
        "{} + {} @ {}",
        cfg.scheme,
        cfg.policy.label(),
        cfg.block_size
    );
    if cfg.adaptive {
        label.push_str(" (adaptive)");
    }
    if !cfg.tiers().is_flat() {
        label.push_str(&format!(" [{} tiers]", cfg.tiers().tiers.len()));
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;
    use cmcp_arch::{PageSize, VirtPage};
    use cmcp_core::PolicyKind;
    use cmcp_kernel::KernelConfig;

    /// Two cores stream over private ranges with barriers between phases.
    fn private_sweep_trace(cores: usize, pages_per_core: u32, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "private-sweep");
        for c in 0..cores {
            let base = VirtPage((c as u64) << 20);
            for _ in 0..rounds {
                t.cores[c].ops.push(Op::Stream {
                    start: base,
                    pages: pages_per_core,
                    write: false,
                    work_per_page: 4,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    /// Cores share a hot range and write private ranges — eviction
    /// pressure with cross-core shootdown traffic when memory is tight.
    fn shared_and_private_trace(cores: usize, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "par-test");
        for c in 0..cores {
            let private = VirtPage(0x1000 + ((c as u64) << 8));
            for _ in 0..rounds {
                t.cores[c].ops.push(Op::Stream {
                    start: VirtPage(0),
                    pages: 16,
                    write: false,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Stream {
                    start: private,
                    pages: 32,
                    write: true,
                    work_per_page: 2,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    #[test]
    fn run_completes_and_reports() {
        let t = private_sweep_trace(2, 64, 3);
        let vmm = Vmm::new(KernelConfig::new(2, 256));
        let r = run_deterministic(&vmm, &t);
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.per_core[0].dtlb_accesses, 64 * 3);
        // Plenty of memory: only cold faults.
        assert_eq!(r.per_core[0].page_faults, 64);
        assert_eq!(r.global.evictions, 0);
    }

    #[test]
    fn runs_are_bit_identical() {
        let t = private_sweep_trace(4, 128, 4);
        let run = || {
            let vmm = Vmm::new(KernelConfig::new(4, 96).with_policy(PolicyKind::Cmcp { p: 0.5 }));
            let r = run_deterministic(&vmm, &t);
            (r.runtime_cycles, r.avg_page_faults(), r.global.evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        // The tentpole invariant in miniature: eviction pressure, LRU
        // (scan timer live), shootdowns — and the full report rendering
        // must agree byte-for-byte at 1, 2, and 4 workers.
        let t = shared_and_private_trace(4, 4);
        let render = |threads: usize| {
            let vmm = Vmm::new(KernelConfig::new(4, 48).with_policy(PolicyKind::Lru));
            format!("{:?}", super::run(&vmm, &t, threads))
        };
        let base = render(1);
        assert_eq!(base, render(2), "threads=2 must match threads=1");
        assert_eq!(base, render(4), "threads=4 must match threads=1");
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let t = private_sweep_trace(2, 16, 1);
        let vmm = Vmm::new(KernelConfig::new(2, 64));
        let r = super::run(&vmm, &t, 64);
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.per_core[0].page_faults, 16);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_is_rejected() {
        let t = private_sweep_trace(1, 1, 1);
        let vmm = Vmm::new(KernelConfig::new(1, 4));
        super::run(&vmm, &t, 0);
    }

    #[test]
    fn panicking_worker_surfaces_the_panic() {
        // Regression for the PR 2 wedge class: a dead worker must not
        // leave the survivors spinning on a frozen horizon. The poisoned
        // phase barrier bails everyone out and the original panic
        // propagates through the scope join.
        let t = private_sweep_trace(4, 64, 2);
        let vmm = Vmm::new(KernelConfig::new(4, 256));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_worker_hook(&vmm, &t, 4, &|id| {
                if id == 2 {
                    panic!("injected worker panic");
                }
            })
        }));
        let payload = result.expect_err("the worker panic must propagate, not wedge");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("injected worker panic"),
            "original payload must survive: {msg:?}"
        );
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        // Core 1 computes 1M cycles before the barrier; core 0 nothing.
        let mut t = Trace::new(2, "skew");
        t.cores[0].ops.push(Op::Barrier);
        t.cores[1].ops.push(Op::Compute(1_000_000));
        t.cores[1].ops.push(Op::Barrier);
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        let vmm = Vmm::new(KernelConfig::new(2, 16));
        run_deterministic(&vmm, &t);
        assert!(
            vmm.clocks()[0].now() >= 1_000_000,
            "core0 waited at the barrier"
        );
    }

    #[test]
    fn memory_pressure_causes_evictions_and_refaults() {
        // One core sweeps 64 pages repeatedly with only 32 resident.
        let mut t = Trace::new(1, "thrash");
        for _ in 0..4 {
            t.cores[0].ops.push(Op::Stream {
                start: VirtPage(0),
                pages: 64,
                write: true,
                work_per_page: 2,
            });
        }
        let vmm = Vmm::new(KernelConfig::new(1, 32));
        let r = run_deterministic(&vmm, &t);
        assert!(r.global.evictions > 64, "sweep must thrash");
        assert!(r.per_core[0].page_faults > 64);
        assert!(r.dma_bytes.1 > 0, "dirty sweeps write back");
        assert!(r.global.refaults > 0);
    }

    #[test]
    fn parallel_run_handles_memory_pressure() {
        let t = shared_and_private_trace(4, 4);
        // Footprint: 16 shared + 4×32 private = 144 pages; constrain to 64.
        let vmm = Vmm::new(KernelConfig::new(4, 64).with_policy(PolicyKind::Cmcp { p: 0.5 }));
        let r = super::run(&vmm, &t, 4);
        assert!(r.global.evictions > 0);
        assert!(r.runtime_cycles > 0);
        // Every core executed all its touches.
        for c in &r.per_core {
            assert_eq!(c.dtlb_accesses, 4 * (16 + 32));
        }
    }

    #[test]
    fn scan_timer_fires_under_lru() {
        let mut t = Trace::new(1, "scan");
        // Enough compute to cross several 10 ms scan periods.
        for _ in 0..5 {
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(11_000_000));
        }
        let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(PolicyKind::Lru));
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.scan_ticks >= 4,
            "timer must fire each period: {}",
            r.global.scan_ticks
        );
    }

    #[test]
    fn no_scan_ticks_for_fifo_or_cmcp() {
        for policy in [PolicyKind::Fifo, PolicyKind::Cmcp { p: 0.75 }] {
            let mut t = Trace::new(1, "noscan");
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(50_000_000));
            let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(policy));
            let r = run_deterministic(&vmm, &t);
            assert_eq!(r.global.scan_ticks, 0);
        }
    }

    #[test]
    fn config_label_mentions_all_knobs() {
        let vmm = Vmm::new(
            KernelConfig::new(1, 4)
                .with_policy(PolicyKind::Lru)
                .with_block_size(PageSize::K64),
        );
        let label = config_label(&vmm);
        assert!(label.contains("PSPT"));
        assert!(label.contains("LRU"));
        assert!(label.contains("64kB"));
    }

    #[test]
    fn syscall_op_blocks_the_core() {
        let mut t = Trace::new(1, "io");
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        t.cores[0].ops.push(Op::Syscall {
            service: 10_000,
            payload: 1 << 20,
            write: true,
        });
        let vmm = Vmm::new(KernelConfig::new(1, 8));
        run_deterministic(&vmm, &t);
        assert_eq!(vmm.offload().total_calls(), 1);
        assert_eq!(vmm.offload().total_payload(), 1 << 20);
        // A 1 MB IKC write is far more expensive than the page touch.
        assert!(vmm.clocks()[0].now() > 100_000);
    }

    #[test]
    fn rebuild_timer_tears_down_and_recovers() {
        // Two cores share a block; after the rebuild period passes, the
        // mappings are torn down and re-established via minor faults.
        let mut t = Trace::new(2, "rebuild");
        for c in 0..2 {
            for round in 0..6 {
                t.cores[c].ops.push(Op::touch(VirtPage(7), false, 1));
                t.cores[c].ops.push(Op::Compute(400_000 + round as u64));
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        let mut cfg = KernelConfig::new(2, 8);
        cfg.pspt_rebuild_period = 1_000_000;
        let vmm = Vmm::new(cfg);
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.rebuilds >= 1,
            "timer must fire: {}",
            r.global.rebuilds
        );
        // Extra faults beyond the 1 cold major + 1 minor: the re-mapping
        // after each rebuild.
        let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
        assert!(faults > 2, "rebuild forces re-faulting: {faults}");
        assert_eq!(r.global.evictions, 0, "frames never moved");
        assert_eq!(r.dma_bytes, (0, 0), "no data was transferred");
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_count_is_rejected() {
        let t = private_sweep_trace(2, 4, 1);
        let vmm = Vmm::new(KernelConfig::new(3, 16));
        run_deterministic(&vmm, &t);
    }
}
