//! The deterministic engine.
//!
//! Always advances the core with the *smallest* virtual clock, so the
//! interleaving — and therefore every policy decision, every queueing
//! delay, every statistic — is a pure function of the trace and the
//! configuration. All experiments and tests run on this engine.
//!
//! Barriers are rendezvous: a core reaching its `k`-th barrier parks
//! until every live core arrives, then all resume at the maximum arrival
//! time, exactly like an OpenMP barrier in virtual time.
//!
//! The accessed-bit scan timer fires whenever simulated time (the
//! minimum core clock, which is the engine's notion of "now") crosses a
//! multiple of the scan period — the paper's 10 ms timer on dedicated
//! hyperthreads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cmcp_arch::CoreId;
use cmcp_kernel::Vmm;
use cmcp_trace::{EventKind, Recorder};

use crate::report::RunReport;
use crate::runner::{CoreRunner, StepResult};
use crate::trace::Trace;

/// Runs `trace` against `vmm` deterministically and returns the report.
///
/// Panics if the trace shape is invalid (mismatched barrier counts or a
/// core count different from the kernel's).
pub fn run_deterministic<R: Recorder>(vmm: &Vmm<R>, trace: &Trace) -> RunReport {
    trace.validate().expect("invalid trace");
    let n = trace.cores.len();
    assert_eq!(
        n,
        vmm.config().cores,
        "trace core count must match kernel config"
    );

    let mut runners: Vec<CoreRunner> = (0..n)
        .map(|c| CoreRunner::new(CoreId(c as u16), vmm))
        .collect();

    // Min-heap of (clock, core); ties broken by core id for determinism.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n).map(|c| Reverse((0u64, c))).collect();
    let mut waiting: Vec<usize> = Vec::new(); // cores parked at the barrier
    let mut done = 0usize;
    let scan_period = vmm.scan_period();
    let scanning = vmm.wants_periodic_scan();
    let mut next_scan = scan_period;
    let rebuild_period = vmm.rebuild_period();
    let mut next_rebuild = rebuild_period;
    let mut barrier_seq = 0u64;

    while let Some(Reverse((clock, core))) = heap.pop() {
        // Fire the statistics timer for every period boundary "now" has
        // crossed (now = the smallest clock, which is this core's).
        if scanning {
            while clock >= next_scan {
                vmm.scan_tick();
                next_scan += scan_period;
            }
        }
        if rebuild_period > 0 {
            while clock >= next_rebuild {
                vmm.rebuild_pspt();
                next_rebuild += rebuild_period;
            }
        }
        match runners[core].step(vmm, &trace.cores[core]) {
            StepResult::Ran => {
                heap.push(Reverse((vmm.clocks()[core].now(), core)));
            }
            StepResult::AtBarrier => {
                waiting.push(core);
                // Everyone still running must reach the barrier: live
                // cores = n - done; all of them are either in the heap or
                // waiting.
                if waiting.len() == n - done {
                    debug_assert!(heap.is_empty(), "live cores must all be parked");
                    let release = waiting
                        .iter()
                        .map(|&c| vmm.clocks()[c].now())
                        .max()
                        .unwrap_or(clock);
                    for &c in &waiting {
                        if R::ENABLED {
                            let arrived = vmm.clocks()[c].now();
                            vmm.tracer().record(
                                c as u16,
                                release,
                                EventKind::BarrierArrive,
                                barrier_seq,
                                release - arrived,
                            );
                        }
                        vmm.clocks()[c].advance_to(release);
                        heap.push(Reverse((release, c)));
                    }
                    barrier_seq += 1;
                    waiting.clear();
                }
            }
            StepResult::Done => {
                done += 1;
                // A finished core can release a barrier only if every
                // other live core is already waiting — but a well-formed
                // trace has equal barrier counts, so nobody can be
                // waiting for a core that already finished.
                debug_assert!(
                    waiting.is_empty() || done < n,
                    "barrier deadlock: cores waiting while others finished"
                );
            }
        }
    }
    assert_eq!(done, n, "all cores must finish");

    RunReport::collect(vmm, &runners, &trace.label, &config_label(vmm))
}

pub(crate) fn config_label<R: Recorder>(vmm: &Vmm<R>) -> String {
    let cfg = vmm.config();
    format!(
        "{} + {} @ {}",
        cfg.scheme,
        cfg.policy.label(),
        cfg.block_size
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;
    use cmcp_arch::{PageSize, VirtPage};
    use cmcp_core::PolicyKind;
    use cmcp_kernel::KernelConfig;

    /// Two cores stream over private ranges with barriers between phases.
    fn private_sweep_trace(cores: usize, pages_per_core: u32, rounds: usize) -> Trace {
        let mut t = Trace::new(cores, "private-sweep");
        for c in 0..cores {
            let base = VirtPage((c as u64) << 20);
            for _ in 0..rounds {
                t.cores[c].ops.push(Op::Stream {
                    start: base,
                    pages: pages_per_core,
                    write: false,
                    work_per_page: 4,
                });
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        t
    }

    #[test]
    fn run_completes_and_reports() {
        let t = private_sweep_trace(2, 64, 3);
        let vmm = Vmm::new(KernelConfig::new(2, 256));
        let r = run_deterministic(&vmm, &t);
        assert!(r.runtime_cycles > 0);
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.per_core[0].dtlb_accesses, 64 * 3);
        // Plenty of memory: only cold faults.
        assert_eq!(r.per_core[0].page_faults, 64);
        assert_eq!(r.global.evictions, 0);
    }

    #[test]
    fn runs_are_bit_identical() {
        let t = private_sweep_trace(4, 128, 4);
        let run = || {
            let vmm = Vmm::new(KernelConfig::new(4, 96).with_policy(PolicyKind::Cmcp { p: 0.5 }));
            let r = run_deterministic(&vmm, &t);
            (r.runtime_cycles, r.avg_page_faults(), r.global.evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        // Core 1 computes 1M cycles before the barrier; core 0 nothing.
        let mut t = Trace::new(2, "skew");
        t.cores[0].ops.push(Op::Barrier);
        t.cores[1].ops.push(Op::Compute(1_000_000));
        t.cores[1].ops.push(Op::Barrier);
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        let vmm = Vmm::new(KernelConfig::new(2, 16));
        run_deterministic(&vmm, &t);
        assert!(
            vmm.clocks()[0].now() >= 1_000_000,
            "core0 waited at the barrier"
        );
    }

    #[test]
    fn memory_pressure_causes_evictions_and_refaults() {
        // One core sweeps 64 pages repeatedly with only 32 resident.
        let mut t = Trace::new(1, "thrash");
        for _ in 0..4 {
            t.cores[0].ops.push(Op::Stream {
                start: VirtPage(0),
                pages: 64,
                write: true,
                work_per_page: 2,
            });
        }
        let vmm = Vmm::new(KernelConfig::new(1, 32));
        let r = run_deterministic(&vmm, &t);
        assert!(r.global.evictions > 64, "sweep must thrash");
        assert!(r.per_core[0].page_faults > 64);
        assert!(r.dma_bytes.1 > 0, "dirty sweeps write back");
        assert!(r.global.refaults > 0);
    }

    #[test]
    fn scan_timer_fires_under_lru() {
        let mut t = Trace::new(1, "scan");
        // Enough compute to cross several 10 ms scan periods.
        for _ in 0..5 {
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(11_000_000));
        }
        let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(PolicyKind::Lru));
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.scan_ticks >= 4,
            "timer must fire each period: {}",
            r.global.scan_ticks
        );
    }

    #[test]
    fn no_scan_ticks_for_fifo_or_cmcp() {
        for policy in [PolicyKind::Fifo, PolicyKind::Cmcp { p: 0.75 }] {
            let mut t = Trace::new(1, "noscan");
            t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
            t.cores[0].ops.push(Op::Compute(50_000_000));
            let vmm = Vmm::new(KernelConfig::new(1, 16).with_policy(policy));
            let r = run_deterministic(&vmm, &t);
            assert_eq!(r.global.scan_ticks, 0);
        }
    }

    #[test]
    fn config_label_mentions_all_knobs() {
        let vmm = Vmm::new(
            KernelConfig::new(1, 4)
                .with_policy(PolicyKind::Lru)
                .with_block_size(PageSize::K64),
        );
        let label = config_label(&vmm);
        assert!(label.contains("PSPT"));
        assert!(label.contains("LRU"));
        assert!(label.contains("64kB"));
    }

    #[test]
    fn syscall_op_blocks_the_core() {
        let mut t = Trace::new(1, "io");
        t.cores[0].ops.push(Op::touch(VirtPage(1), false, 1));
        t.cores[0].ops.push(Op::Syscall {
            service: 10_000,
            payload: 1 << 20,
            write: true,
        });
        let vmm = Vmm::new(KernelConfig::new(1, 8));
        run_deterministic(&vmm, &t);
        assert_eq!(vmm.offload().total_calls(), 1);
        assert_eq!(vmm.offload().total_payload(), 1 << 20);
        // A 1 MB IKC write is far more expensive than the page touch.
        assert!(vmm.clocks()[0].now() > 100_000);
    }

    #[test]
    fn rebuild_timer_tears_down_and_recovers() {
        // Two cores share a block; after the rebuild period passes, the
        // mappings are torn down and re-established via minor faults.
        let mut t = Trace::new(2, "rebuild");
        for c in 0..2 {
            for round in 0..6 {
                t.cores[c].ops.push(Op::touch(VirtPage(7), false, 1));
                t.cores[c].ops.push(Op::Compute(400_000 + round as u64));
                t.cores[c].ops.push(Op::Barrier);
            }
        }
        let mut cfg = KernelConfig::new(2, 8);
        cfg.pspt_rebuild_period = 1_000_000;
        let vmm = Vmm::new(cfg);
        let r = run_deterministic(&vmm, &t);
        assert!(
            r.global.rebuilds >= 1,
            "timer must fire: {}",
            r.global.rebuilds
        );
        // Extra faults beyond the 1 cold major + 1 minor: the re-mapping
        // after each rebuild.
        let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
        assert!(faults > 2, "rebuild forces re-faulting: {faults}");
        assert_eq!(r.global.evictions, 0, "frames never moved");
        assert_eq!(r.dma_bytes, (0, 0), "no data was transferred");
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_count_is_rejected() {
        let t = private_sweep_trace(2, 4, 1);
        let vmm = Vmm::new(KernelConfig::new(3, 16));
        run_deterministic(&vmm, &t);
    }
}
