//! Per-core access logging with page-run coalescing.
//!
//! Workload kernels log *element-level* accesses; the logger folds them
//! into the page-granular [`Op`] stream the engines consume. Two
//! foldings keep traces compact without losing anything the TLB or the
//! paging subsystem could observe:
//!
//! * consecutive accesses to the *same* page merge into one op with
//!   accumulated work (they could not miss the TLB separately);
//! * accesses marching through *adjacent* pages in the same direction
//!   with the same kind merge into one [`Op::Stream`] run.

use cmcp_arch::VirtPage;
use cmcp_sim::{CoreTrace, Op, Trace};

use crate::layout::Region;

/// Builds one core's op stream.
#[derive(Debug, Default)]
pub struct CoreLogger {
    ops: Vec<Op>,
    /// Coalescing window for the op being built.
    pending: Option<Pending>,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    start: VirtPage,
    pages: u32,
    write: bool,
    work_total: u64,
}

impl CoreLogger {
    fn flush(&mut self) {
        if let Some(p) = self.pending.take() {
            let work_per_page = (p.work_total / p.pages as u64).max(1) as u32;
            self.ops.push(Op::Stream {
                start: p.start,
                pages: p.pages,
                write: p.write,
                work_per_page,
            });
        }
    }

    /// Logs one access to `page`.
    pub fn touch_page(&mut self, page: VirtPage, write: bool, work: u32) {
        match &mut self.pending {
            Some(p) if p.write == write => {
                let last = p.start.0 + p.pages as u64 - 1;
                if page.0 == last {
                    // Same page: fold the work in.
                    p.work_total += work as u64;
                    return;
                }
                if page.0 == last + 1 {
                    // Next page in a forward march: extend the run.
                    p.pages += 1;
                    p.work_total += work as u64;
                    return;
                }
                self.flush();
            }
            Some(_) => self.flush(),
            None => {}
        }
        self.pending = Some(Pending {
            start: page,
            pages: 1,
            write,
            work_total: work as u64,
        });
    }

    /// Logs an access to element `idx` of `region`.
    pub fn element(&mut self, region: &Region, idx: u64, write: bool, work: u32) {
        self.touch_page(region.page_of(idx), write, work);
    }

    /// Logs a dense sweep over elements `[lo, hi)` of `region`, charging
    /// `work_per_elem` per element.
    pub fn range(&mut self, region: &Region, lo: u64, hi: u64, write: bool, work_per_elem: u32) {
        if lo >= hi {
            return;
        }
        let (start, pages) = region.page_range(lo, hi);
        let elems = hi - lo;
        let work_per_page = ((elems * work_per_elem as u64) / pages).max(1) as u32;
        self.flush();
        self.ops.push(Op::Stream {
            start,
            pages: pages as u32,
            write,
            work_per_page,
        });
    }

    /// Logs pure compute time.
    pub fn compute(&mut self, cycles: u64) {
        self.flush();
        self.ops.push(Op::Compute(cycles));
    }

    /// Logs a host-offloaded system call (e.g. SCALE's history writes).
    pub fn syscall(&mut self, service: u64, payload: u64, write: bool) {
        self.flush();
        self.ops.push(Op::Syscall {
            service,
            payload,
            write,
        });
    }

    /// Logs a barrier.
    pub fn barrier(&mut self) {
        self.flush();
        self.ops.push(Op::Barrier);
    }

    /// Finalizes into a [`CoreTrace`].
    pub fn finish(mut self) -> CoreTrace {
        self.flush();
        CoreTrace { ops: self.ops }
    }
}

/// Builds a full multi-core [`Trace`].
#[derive(Debug)]
pub struct TraceLogger {
    cores: Vec<CoreLogger>,
    label: String,
}

impl TraceLogger {
    /// A logger for `n` cores.
    pub fn new(n: usize, label: impl Into<String>) -> TraceLogger {
        TraceLogger {
            cores: (0..n).map(|_| CoreLogger::default()).collect(),
            label: label.into(),
        }
    }

    /// The logger for one core.
    pub fn core(&mut self, c: usize) -> &mut CoreLogger {
        &mut self.cores[c]
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Inserts a barrier on every core (an OpenMP barrier).
    pub fn barrier_all(&mut self) {
        for c in &mut self.cores {
            c.barrier();
        }
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        Trace {
            cores: self.cores.into_iter().map(CoreLogger::finish).collect(),
            label: self.label,
            declared_pages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AddressSpace;

    #[test]
    fn same_page_accesses_coalesce() {
        let mut l = CoreLogger::default();
        for _ in 0..10 {
            l.touch_page(VirtPage(5), false, 2);
        }
        let t = l.finish();
        assert_eq!(t.ops.len(), 1);
        assert_eq!(
            t.ops[0],
            Op::Stream {
                start: VirtPage(5),
                pages: 1,
                write: false,
                work_per_page: 20
            }
        );
    }

    #[test]
    fn forward_march_coalesces_into_stream() {
        let mut l = CoreLogger::default();
        for p in 10..20u64 {
            l.touch_page(VirtPage(p), true, 3);
        }
        let t = l.finish();
        assert_eq!(t.ops.len(), 1);
        assert_eq!(
            t.ops[0],
            Op::Stream {
                start: VirtPage(10),
                pages: 10,
                write: true,
                work_per_page: 3
            }
        );
    }

    #[test]
    fn kind_change_breaks_the_run() {
        let mut l = CoreLogger::default();
        l.touch_page(VirtPage(1), false, 1);
        l.touch_page(VirtPage(2), true, 1); // switch to write
        l.touch_page(VirtPage(3), true, 1);
        let t = l.finish();
        assert_eq!(t.ops.len(), 2);
    }

    #[test]
    fn random_jumps_emit_separate_ops() {
        let mut l = CoreLogger::default();
        l.touch_page(VirtPage(100), false, 1);
        l.touch_page(VirtPage(7), false, 1);
        l.touch_page(VirtPage(53), false, 1);
        let t = l.finish();
        assert_eq!(t.ops.len(), 3);
    }

    #[test]
    fn range_emits_one_stream() {
        let mut a = AddressSpace::new();
        let r = a.alloc("v", 4096, 8);
        let mut l = CoreLogger::default();
        l.range(&r, 0, 4096, false, 2);
        let t = l.finish();
        assert_eq!(t.ops.len(), 1);
        match t.ops[0] {
            Op::Stream {
                pages,
                write,
                work_per_page,
                ..
            } => {
                assert_eq!(pages, 8);
                assert!(!write);
                // 4096 elems × 2 work / 8 pages = 1024 per page.
                assert_eq!(work_per_page, 1024);
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn barrier_all_lines_up() {
        let mut tl = TraceLogger::new(3, "t");
        tl.core(0).touch_page(VirtPage(1), false, 1);
        tl.barrier_all();
        let t = tl.finish();
        assert!(t.validate().is_ok());
        for c in &t.cores {
            assert_eq!(c.barriers(), 1);
        }
    }

    #[test]
    fn element_uses_region_geometry() {
        let mut a = AddressSpace::new();
        let r = a.alloc("v", 1024, 8); // 512 per page
        let mut l = CoreLogger::default();
        l.element(&r, 0, false, 1);
        l.element(&r, 511, false, 1); // same page → coalesce
        l.element(&r, 512, false, 1); // next page → extend
        let t = l.finish();
        assert_eq!(t.ops.len(), 1);
        assert_eq!(t.touches(), 2);
    }
}
