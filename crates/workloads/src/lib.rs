//! # cmcp-workloads — the paper's applications, as trace generators
//!
//! The evaluation workloads (paper §5.1): three NAS Parallel Benchmarks —
//! CG, LU, BT — and RIKEN's SCALE stencil code. The originals are
//! Fortran/OpenMP programs far too large to reproduce verbatim; what the
//! memory-management experiments need is their *memory behaviour*:
//! per-core page access streams with the right sharing structure
//! (Figure 6), reuse structure (what LRU protects), and footprint.
//!
//! Each workload here is built from the same loop nests and domain
//! partitioning as the original, at scaled-down problem sizes:
//!
//! * [`cg`] — conjugate gradient on a random sparse SPD matrix (CSR),
//!   rows partitioned across cores. The matrix streams privately; the
//!   search vector `p` is gathered at random columns by *every* core —
//!   producing CG's signature sharing histogram (>50 % private pages, a
//!   small tail mapped by all cores).
//! * [`lu`] — SSOR-style forward/backward wavefront sweeps over a 3-D
//!   grid in j-slabs, with nearest-slab boundary reads.
//! * [`bt`] — line solves along the three axes with *different* domain
//!   partitions per axis, the source of BT's broader 1–6-core sharing.
//! * [`scale`] — a 2-D halo-exchange stencil integrator (weather/climate
//!   kernel shape): private interiors, 2-core halo rows.
//! * [`synthetic`] — parameterized patterns, including the adversarial
//!   anti-CMCP workload the paper concedes can be constructed (§3).
//! * [`ep`], [`mg`] — the NPB workloads the paper *excludes* (§5.1),
//!   implemented so the exclusions are demonstrable: EP's footprint is
//!   trivially small; MG streams its whole grid hierarchy with so little
//!   reuse that out-of-core execution collapses.
//!
//! The *numerics* of each kernel are also implemented ([`sparse`],
//! [`grid`]) and unit-tested (CG converges, SSOR reduces residual, line
//! solves are exact, the stencil conserves heat), so the loop structure
//! the traces are derived from is demonstrably the real algorithm, not a
//! hand-painted histogram.
//!
//! [`suite`] packages everything into the paper's named configurations
//! (`cg.B`, `lu.C`, `SCALE (sml)`, ...).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The numeric kernels index with explicit loop variables (stencils and
// wavefronts read neighbours at i±1) and group literal seeds mnemonically.
#![allow(clippy::needless_range_loop, clippy::unusual_byte_groupings)]

pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod grid;
pub mod is;
pub mod layout;
pub mod logger;
pub mod lu;
pub mod mg;
pub mod scale;
pub mod sparse;
pub mod suite;
pub mod synthetic;

pub use layout::{AddressSpace, Region};
pub use logger::TraceLogger;
pub use suite::{Workload, WorkloadClass};
