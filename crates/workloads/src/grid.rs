//! Structured grids and the numerical kernels behind LU, BT and SCALE.
//!
//! * [`Grid3`] — a 3-D grid with x-fastest (Fortran-like) layout and slab
//!   partitioning helpers, shared by the LU and BT trace generators.
//! * [`ssor_sweep`] — the symmetric successive over-relaxation iteration
//!   (forward + backward wavefront) that NPB LU applies to the 7-point
//!   Laplacian; tested to reduce the residual.
//! * [`solve_tridiagonal`] — the Thomas algorithm line solver BT applies
//!   along each axis (NPB BT uses 5×5 blocks; the scaled reproduction
//!   uses scalar lines, which preserves the memory pattern exactly);
//!   tested for exactness.
//! * [`stencil_step`] — the 5-point diffusion step behind the SCALE-like
//!   workload; tested to conserve total heat with periodic boundaries.

/// A 3-D grid descriptor, x-fastest layout: `idx = (k·ny + j)·nx + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Extent in x (fastest-varying).
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z (slowest-varying).
    pub nz: usize,
}

impl Grid3 {
    /// Total cells.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Splits `0..extent` into `parts` contiguous chunks (first chunks one
    /// larger when it does not divide evenly). Returns `(lo, hi)` of
    /// chunk `part`.
    pub fn partition(extent: usize, parts: usize, part: usize) -> (usize, usize) {
        assert!(part < parts && parts > 0);
        let base = extent / parts;
        let extra = extent % parts;
        let lo = part * base + part.min(extra);
        let hi = lo + base + usize::from(part < extra);
        (lo, hi.min(extent))
    }
}

/// One SSOR sweep (forward then backward) of the 7-point Laplacian
/// relaxation `u ← u + ω·(rhs − A·u)/a_ii` over the grid interior.
/// Returns the residual 2-norm after the sweep.
pub fn ssor_sweep(grid: Grid3, u: &mut [f64], rhs: &[f64], omega: f64) -> f64 {
    assert_eq!(u.len(), grid.cells());
    assert_eq!(rhs.len(), grid.cells());
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let diag = 6.0;
    let relax = |u: &mut [f64], i: usize, j: usize, k: usize| {
        let c = grid.idx(i, j, k);
        let neighbours = u[grid.idx(i - 1, j, k)]
            + u[grid.idx(i + 1, j, k)]
            + u[grid.idx(i, j - 1, k)]
            + u[grid.idx(i, j + 1, k)]
            + u[grid.idx(i, j, k - 1)]
            + u[grid.idx(i, j, k + 1)];
        let resid = rhs[c] - (diag * u[c] - neighbours);
        u[c] += omega * resid / diag;
    };
    // Forward wavefront.
    for k in 1..nz - 1 {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                relax(u, i, j, k);
            }
        }
    }
    // Backward wavefront.
    for k in (1..nz - 1).rev() {
        for j in (1..ny - 1).rev() {
            for i in (1..nx - 1).rev() {
                relax(u, i, j, k);
            }
        }
    }
    // Residual over the interior.
    let mut norm = 0.0;
    for k in 1..nz - 1 {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let c = grid.idx(i, j, k);
                let neighbours = u[grid.idx(i - 1, j, k)]
                    + u[grid.idx(i + 1, j, k)]
                    + u[grid.idx(i, j - 1, k)]
                    + u[grid.idx(i, j + 1, k)]
                    + u[grid.idx(i, j, k - 1)]
                    + u[grid.idx(i, j, k + 1)];
                let r = rhs[c] - (diag * u[c] - neighbours);
                norm += r * r;
            }
        }
    }
    norm.sqrt()
}

/// Thomas algorithm: solves the tridiagonal system
/// `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]` in place, returning `x`
/// in `d`. Requires `b` strictly dominant (no pivoting).
pub fn solve_tridiagonal(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = d.len();
    assert!(n > 0 && a.len() == n && b.len() == n && c.len() == n);
    let mut c_star = vec![0.0; n];
    c_star[0] = c[0] / b[0];
    d[0] /= b[0];
    for i in 1..n {
        let m = b[i] - a[i] * c_star[i - 1];
        c_star[i] = c[i] / m;
        d[i] = (d[i] - a[i] * d[i - 1]) / m;
    }
    for i in (0..n - 1).rev() {
        d[i] -= c_star[i] * d[i + 1];
    }
}

/// One explicit 5-point diffusion step on a 2-D periodic grid:
/// `next = u + α·∇²u`. Conserves total heat exactly (up to rounding).
pub fn stencil_step(nx: usize, ny: usize, u: &[f64], next: &mut [f64], alpha: f64) {
    assert_eq!(u.len(), nx * ny);
    assert_eq!(next.len(), nx * ny);
    for j in 0..ny {
        let jm = (j + ny - 1) % ny;
        let jp = (j + 1) % ny;
        for i in 0..nx {
            let im = (i + nx - 1) % nx;
            let ip = (i + 1) % nx;
            let c = j * nx + i;
            let lap =
                u[j * nx + im] + u[j * nx + ip] + u[jm * nx + i] + u[jp * nx + i] - 4.0 * u[c];
            next[c] = u[c] + alpha * lap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_x_fastest() {
        let g = Grid3 {
            nx: 4,
            ny: 3,
            nz: 2,
        };
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 12);
        assert_eq!(g.cells(), 24);
    }

    #[test]
    fn partition_covers_without_overlap() {
        for (extent, parts) in [(100, 7), (64, 8), (10, 10), (5, 3)] {
            let mut covered = 0;
            let mut prev_hi = 0;
            for p in 0..parts {
                let (lo, hi) = Grid3::partition(extent, parts, p);
                assert_eq!(lo, prev_hi, "chunks must be contiguous");
                covered += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(covered, extent);
        }
    }

    #[test]
    fn ssor_reduces_residual() {
        let g = Grid3 {
            nx: 14,
            ny: 12,
            nz: 10,
        };
        let mut u = vec![0.0; g.cells()];
        let rhs: Vec<f64> = (0..g.cells())
            .map(|c| ((c * 29) % 13) as f64 / 13.0 - 0.5)
            .collect();
        let r1 = ssor_sweep(g, &mut u, &rhs, 1.2);
        let mut r_last = r1;
        for _ in 0..10 {
            r_last = ssor_sweep(g, &mut u, &rhs, 1.2);
        }
        assert!(
            r_last < r1 * 0.2,
            "SSOR must reduce the residual: {r1} → {r_last}"
        );
    }

    #[test]
    fn tridiagonal_solver_is_exact() {
        // Build a known system and verify round-trip.
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -1.0 }).collect();
        let b = vec![4.0; n];
        let c: Vec<f64> = (0..n)
            .map(|i| if i == n - 1 { 0.0 } else { -1.0 })
            .collect();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        // d = A·x_true
        let mut d = vec![0.0; n];
        for i in 0..n {
            d[i] = b[i] * x_true[i];
            if i > 0 {
                d[i] += a[i] * x_true[i - 1];
            }
            if i < n - 1 {
                d[i] += c[i] * x_true[i + 1];
            }
        }
        solve_tridiagonal(&a, &b, &c, &mut d);
        for i in 0..n {
            assert!((d[i] - x_true[i]).abs() < 1e-10, "x[{i}]");
        }
    }

    #[test]
    fn stencil_conserves_heat() {
        let (nx, ny) = (32, 24);
        let mut u: Vec<f64> = (0..nx * ny).map(|c| ((c * 17) % 101) as f64).collect();
        let total: f64 = u.iter().sum();
        let mut next = vec![0.0; nx * ny];
        for _ in 0..20 {
            stencil_step(nx, ny, &u, &mut next, 0.2);
            std::mem::swap(&mut u, &mut next);
        }
        let total_after: f64 = u.iter().sum();
        assert!((total - total_after).abs() < 1e-6 * total.abs());
    }

    #[test]
    fn stencil_smooths_toward_uniform() {
        let (nx, ny) = (16, 16);
        let mut u = vec![0.0; nx * ny];
        u[0] = 256.0;
        let mut next = vec![0.0; nx * ny];
        for _ in 0..200 {
            stencil_step(nx, ny, &u, &mut next, 0.2);
            std::mem::swap(&mut u, &mut next);
        }
        let mean = 256.0 / (nx * ny) as f64;
        let var: f64 = u.iter().map(|v| (v - mean).powi(2)).sum();
        assert!(var < 1.0, "diffusion must smooth the spike: var={var}");
    }
}
