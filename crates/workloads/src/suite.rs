//! The paper's named workload configurations.
//!
//! §5.1: "Small configuration, i.e., B class NPB benchmarks and 512
//! megabytes memory requirement for SCALE … were used for experiments
//! using only 4kB pages, while C class NPB benchmarks and a 1.2GB setup
//! of SCALE … were utilized for the comparison on the impact of
//! different page sizes."
//!
//! Problem sizes are scaled down to simulator throughput; all memory
//! constraints in the harness are expressed *relative to the measured
//! footprint*, exactly as the paper's percentages are.

use cmcp_sim::Trace;

use crate::bt::{bt_trace, BtConfig};
use crate::cg::{cg_trace, CgConfig};
use crate::lu::{lu_trace, LuConfig};
use crate::scale::{scale_trace, ScaleConfig};

/// Size class, mirroring NPB's B/C naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Small: the paper's 4 kB-page experiments (Figures 6–9, Table 1).
    B,
    /// Large: the paper's page-size study (Figure 10).
    C,
}

/// The four applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// NPB Conjugate Gradient.
    Cg(WorkloadClass),
    /// NPB Lower-Upper symmetric Gauss-Seidel.
    Lu(WorkloadClass),
    /// NPB Block Tridiagonal.
    Bt(WorkloadClass),
    /// RIKEN SCALE stencil (B ↔ "sml", C ↔ "big").
    Scale(WorkloadClass),
}

impl Workload {
    /// All four workloads in the given class, in the paper's order.
    pub fn all(class: WorkloadClass) -> [Workload; 4] {
        [
            Workload::Bt(class),
            Workload::Lu(class),
            Workload::Cg(class),
            Workload::Scale(class),
        ]
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Cg(WorkloadClass::B) => "cg.B",
            Workload::Cg(WorkloadClass::C) => "cg.C",
            Workload::Lu(WorkloadClass::B) => "lu.B",
            Workload::Lu(WorkloadClass::C) => "lu.C",
            Workload::Bt(WorkloadClass::B) => "bt.B",
            Workload::Bt(WorkloadClass::C) => "bt.C",
            Workload::Scale(WorkloadClass::B) => "SCALE (sml)",
            Workload::Scale(WorkloadClass::C) => "SCALE (big)",
        }
    }

    /// Generates the trace for `cores` cores.
    pub fn trace(&self, cores: usize) -> Trace {
        let mut t = match self {
            Workload::Cg(WorkloadClass::B) => cg_trace(cores, &CgConfig::class_b()),
            Workload::Cg(WorkloadClass::C) => cg_trace(cores, &CgConfig::class_c()),
            Workload::Lu(WorkloadClass::B) => lu_trace(cores, &LuConfig::class_b()),
            Workload::Lu(WorkloadClass::C) => lu_trace(cores, &LuConfig::class_c()),
            Workload::Bt(WorkloadClass::B) => bt_trace(cores, &BtConfig::class_b()),
            Workload::Bt(WorkloadClass::C) => bt_trace(cores, &BtConfig::class_c()),
            Workload::Scale(WorkloadClass::B) => scale_trace(cores, &ScaleConfig::small()),
            Workload::Scale(WorkloadClass::C) => scale_trace(cores, &ScaleConfig::big()),
        };
        t.label = self.label().to_string();
        t
    }

    /// The memory constraint (fraction of footprint resident) the paper
    /// selects for the policy experiments, tuned per application so that
    /// PSPT+FIFO lands at ~50–60 % of no-data-movement performance
    /// (§5.4: 64 % for BT, 66 % for LU, 37 % for CG, ~50 % for SCALE).
    pub fn paper_constraint(&self) -> f64 {
        match self {
            Workload::Bt(_) => 0.64,
            Workload::Lu(_) => 0.66,
            Workload::Cg(_) => 0.37,
            Workload::Scale(_) => 0.50,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Workload::Cg(WorkloadClass::B).label(), "cg.B");
        assert_eq!(Workload::Scale(WorkloadClass::C).label(), "SCALE (big)");
    }

    #[test]
    fn c_class_is_larger_than_b() {
        for (b, c) in [
            (
                Workload::Cg(WorkloadClass::B),
                Workload::Cg(WorkloadClass::C),
            ),
            (
                Workload::Lu(WorkloadClass::B),
                Workload::Lu(WorkloadClass::C),
            ),
        ] {
            let tb = b.trace(2);
            let tc = c.trace(2);
            assert!(
                tc.footprint_pages() > tb.footprint_pages(),
                "{c} must outsize {b}"
            );
        }
    }

    #[test]
    fn constraints_match_section_5_4() {
        assert_eq!(Workload::Bt(WorkloadClass::B).paper_constraint(), 0.64);
        assert_eq!(Workload::Cg(WorkloadClass::B).paper_constraint(), 0.37);
    }

    #[test]
    fn all_returns_paper_order() {
        let labels: Vec<&str> = Workload::all(WorkloadClass::B)
            .iter()
            .map(|w| w.label())
            .collect();
        assert_eq!(labels, vec!["bt.B", "lu.B", "cg.B", "SCALE (sml)"]);
    }
}
