//! Synthetic access patterns for unit experiments and ablations.
//!
//! Includes the **adversarial anti-CMCP pattern** the paper concedes is
//! constructible (§3: "one could intentionally construct memory access
//! patterns for which this heuristic wouldn't work well"): pages touched
//! once by many cores but never reused (high core-map count, worthless),
//! alongside core-private pages reused constantly (low count, precious).
//! CMCP pins the worthless shared pages in its priority group and evicts
//! the precious private ones.

use cmcp_arch::VirtPage;
use cmcp_sim::{Op, Trace};

use crate::logger::TraceLogger;

/// Every core streams over a private range, `rounds` times.
pub fn private_stream(cores: usize, pages_per_core: u32, rounds: usize) -> Trace {
    let mut log = TraceLogger::new(cores, "synthetic-private");
    for _ in 0..rounds {
        for c in 0..cores {
            let base = VirtPage(0x10_0000 + ((c as u64) << 24 >> 12));
            let core = log.core(c);
            for k in 0..pages_per_core as u64 {
                core.touch_page(base.add(k), true, 8);
            }
        }
        log.barrier_all();
    }
    log.finish()
}

/// A hot region read by every core each round plus private cold streams.
pub fn shared_hot(cores: usize, shared_pages: u32, private_pages: u32, rounds: usize) -> Trace {
    let mut log = TraceLogger::new(cores, "synthetic-shared-hot");
    let shared_base = VirtPage(0x10_0000);
    for round in 0..rounds {
        for c in 0..cores {
            let core = log.core(c);
            // Everybody re-reads the hot shared region.
            for k in 0..shared_pages as u64 {
                core.touch_page(shared_base.add(k), false, 4);
            }
            // Private cold stream, different pages every round.
            let base =
                VirtPage(0x20_0000 + ((c as u64) << 20) + round as u64 * private_pages as u64);
            for k in 0..private_pages as u64 {
                core.touch_page(base.add(k), true, 4);
            }
        }
        log.barrier_all();
    }
    log.finish()
}

/// The adversarial pattern: widely-shared pages that are touched once
/// and never again, while private pages are reused every round.
pub fn adversarial_cmcp(
    cores: usize,
    shared_dead_pages: u32,
    private_hot_pages: u32,
    rounds: usize,
) -> Trace {
    let mut log = TraceLogger::new(cores, "synthetic-adversarial");
    for round in 0..rounds {
        for c in 0..cores {
            let core = log.core(c);
            // Dead-on-arrival shared pages: all cores touch this round's
            // fresh batch exactly once (high map count, zero reuse).
            let batch = VirtPage(0x10_0000 + (round as u64 * shared_dead_pages as u64));
            for k in 0..shared_dead_pages as u64 {
                core.touch_page(batch.add(k), false, 1);
            }
            // Hot private working set, reused every round.
            let base = VirtPage(0x40_0000 + ((c as u64) << 20));
            for k in 0..private_hot_pages as u64 {
                core.touch_page(base.add(k), true, 8);
            }
        }
        log.barrier_all();
    }
    log.finish()
}

/// A uniform random page stream (seeded), for policy stress tests.
pub fn random_uniform(
    cores: usize,
    distinct_pages: u64,
    touches_per_core: u64,
    seed: u64,
) -> Trace {
    let mut log = TraceLogger::new(cores, "synthetic-random");
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for c in 0..cores {
        let core = log.core(c);
        for _ in 0..touches_per_core {
            let p = VirtPage(0x10_0000 + next() % distinct_pages);
            core.touch_page(p, next() % 4 == 0, 2);
        }
    }
    log.barrier_all();
    log.finish()
}

/// Counts ops across all cores (testing aid).
pub fn op_count(t: &Trace) -> usize {
    t.cores.iter().map(|c| c.ops.len()).sum()
}

/// Returns the per-page sharer-count histogram of a trace: index `k`
/// holds the number of pages touched by exactly `k + 1` cores.
pub fn sharing_histogram(t: &Trace) -> Vec<usize> {
    let mut sharers = std::collections::HashMap::new();
    for c in &t.cores {
        for p in c.page_set() {
            *sharers.entry(p).or_insert(0usize) += 1;
        }
    }
    let mut hist = vec![0usize; t.cores.len()];
    for &n in sharers.values() {
        hist[n - 1] += 1;
    }
    hist
}

/// A trace with explicit per-core op lists (testing aid).
pub fn from_ops(ops_per_core: Vec<Vec<Op>>, label: &str) -> Trace {
    Trace {
        cores: ops_per_core
            .into_iter()
            .map(|ops| cmcp_sim::CoreTrace { ops })
            .collect(),
        label: label.to_string(),
        declared_pages: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_stream_has_no_sharing() {
        let t = private_stream(4, 16, 2);
        let hist = sharing_histogram(&t);
        assert_eq!(hist[0], 64, "all pages private");
        assert_eq!(hist[1..].iter().sum::<usize>(), 0);
    }

    #[test]
    fn shared_hot_pages_map_all_cores() {
        let t = shared_hot(4, 8, 4, 2);
        let hist = sharing_histogram(&t);
        assert_eq!(hist[3], 8, "shared region maps all 4 cores");
        assert!(hist[0] >= 4 * 4 * 2, "private streams stay private");
    }

    #[test]
    fn adversarial_shares_dead_pages_widely() {
        let t = adversarial_cmcp(4, 8, 4, 3);
        let hist = sharing_histogram(&t);
        assert_eq!(hist[3], 3 * 8, "every dead batch maps all cores");
        assert_eq!(hist[0], 4 * 4, "hot sets stay private");
    }

    #[test]
    fn random_uniform_is_seed_deterministic() {
        let a = random_uniform(2, 100, 500, 9);
        let b = random_uniform(2, 100, 500, 9);
        assert_eq!(a.total_touches(), b.total_touches());
        assert_eq!(a.footprint_pages(), b.footprint_pages());
        let c = random_uniform(2, 100, 500, 10);
        assert_ne!(
            a.cores[0].page_set(),
            c.cores[0].page_set(),
            "different seeds differ"
        );
    }

    #[test]
    fn traces_validate() {
        for t in [
            private_stream(3, 4, 2),
            shared_hot(3, 4, 4, 2),
            adversarial_cmcp(3, 4, 4, 2),
            random_uniform(3, 50, 100, 1),
        ] {
            assert!(t.validate().is_ok(), "{} invalid", t.label);
        }
    }
}
