//! The BT workload: NPB's block-tridiagonal solver, scaled.
//!
//! Each BT iteration factors and solves tridiagonal systems along lines
//! in x, then y, then z. The OpenMP version parallelizes each phase over
//! an outer dimension, and crucially the *effective domain partition
//! differs between phases*: x- and y-lines parallelize naturally over
//! z-slabs, while z-lines parallelize over y-slabs. A page therefore has
//! an owner under each partition, and pages near partition boundaries
//! pick up further sharers — giving BT the broadest (1–6+ core) sharing
//! histogram of the NPB trio (paper Figure 6c).
//!
//! The line solver being traced is [`crate::grid::solve_tridiagonal`]
//! (Thomas algorithm), verified exact in its tests. NPB uses 5×5 blocks
//! per cell; the scalar scaled version preserves the memory pattern while
//! shrinking the constant work per cell.

use cmcp_sim::Trace;

use crate::grid::Grid3;
use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// BT workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct BtConfig {
    /// Grid extents.
    pub grid: Grid3,
    /// Outer iterations traced.
    pub iterations: usize,
}

impl BtConfig {
    /// Scaled stand-in for NPB class B.
    pub fn class_b() -> BtConfig {
        BtConfig {
            grid: Grid3 {
                nx: 64,
                ny: 64,
                nz: 64,
            },
            iterations: 3,
        }
    }

    /// Scaled stand-in for NPB class C.
    pub fn class_c() -> BtConfig {
        BtConfig {
            grid: Grid3 {
                nx: 96,
                ny: 96,
                nz: 96,
            },
            iterations: 2,
        }
    }
}

/// Generates the BT trace for `cores` cores.
pub fn bt_trace(cores: usize, cfg: &BtConfig) -> Trace {
    let g = cfg.grid;
    let cells = g.cells() as u64;
    let mut space = AddressSpace::new();
    // NPB stores 5 solution components per cell (u[5][k][j][i]):
    // 40-byte cells, so an x-row of 64 cells spans ~2.5 kB — the page
    // geometry behind the paper's Figure 6 sharing histograms.
    let u = space.alloc("u", cells, 40);
    let rhs = space.alloc("rhs", cells, 40);

    let mut log = TraceLogger::new(cores, "bt");
    let row = |j: usize, k: usize| g.idx(0, j, k) as u64;

    // Initialization over z-slabs.
    for c in 0..cores {
        let (klo, khi) = Grid3::partition(g.nz, cores, c);
        if klo < khi {
            let core = log.core(c);
            core.range(
                &u,
                row(0, klo),
                row(g.ny - 1, khi - 1) + g.nx as u64,
                true,
                1,
            );
            core.range(
                &rhs,
                row(0, klo),
                row(g.ny - 1, khi - 1) + g.nx as u64,
                true,
                1,
            );
        }
    }
    log.barrier_all();

    for _ in 0..cfg.iterations {
        // --- x-solve: lines along x; parallel over z-slabs. ---
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(g.nz, cores, c);
            let core = log.core(c);
            for k in klo..khi {
                for j in 0..g.ny {
                    // Forward + back-substitution over the x-line: one
                    // read-modify-write pass over rhs, reads of u. NPB
                    // BT factors/solves 5×5 blocks (~250 flops/cell);
                    // the work charges reflect that.
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, false, 130);
                    core.range(&rhs, row(j, k), row(j, k) + g.nx as u64, true, 130);
                }
            }
        }
        log.barrier_all();
        // --- y-solve: lines along y; still over z-slabs. ---
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(g.nz, cores, c);
            let core = log.core(c);
            for k in klo..khi {
                // A y-line visits every j for fixed (i, k); sweeping j
                // touches the same row pages as sweeping rows in order.
                for j in 0..g.ny {
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, false, 130);
                    core.range(&rhs, row(j, k), row(j, k) + g.nx as u64, true, 130);
                }
            }
        }
        log.barrier_all();
        // --- z-solve: lines along z; parallel over *y*-slabs. ---
        for c in 0..cores {
            let (jlo, jhi) = Grid3::partition(g.ny, cores, c);
            let core = log.core(c);
            // Forward elimination: march k upward touching this core's
            // j-rows in every z-plane (large strides between planes).
            for k in 0..g.nz {
                for j in jlo..jhi {
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, false, 130);
                    core.range(&rhs, row(j, k), row(j, k) + g.nx as u64, true, 130);
                }
            }
            // Back substitution: march k downward.
            for k in (0..g.nz).rev() {
                for j in jlo..jhi {
                    core.range(&rhs, row(j, k), row(j, k) + g.nx as u64, true, 85);
                }
            }
        }
        log.barrier_all();
        // --- add: u += rhs over z-slabs (the partition flips back). ---
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(g.nz, cores, c);
            if klo < khi {
                let core = log.core(c);
                core.range(
                    &u,
                    row(0, klo),
                    row(g.ny - 1, khi - 1) + g.nx as u64,
                    true,
                    35,
                );
                core.range(
                    &rhs,
                    row(0, klo),
                    row(g.ny - 1, khi - 1) + g.nx as u64,
                    false,
                    18,
                );
            }
        }
        log.barrier_all();
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BtConfig {
        BtConfig {
            grid: Grid3 {
                nx: 32,
                ny: 32,
                nz: 16,
            },
            iterations: 2,
        }
    }

    #[test]
    fn trace_is_well_formed() {
        let t = bt_trace(4, &small());
        assert!(t.validate().is_ok());
        assert!(t.total_touches() > 0);
    }

    #[test]
    fn cross_partition_phases_broaden_sharing() {
        // BT's signature: more multi-core pages than a single-partition
        // workload like LU, because the z-solve uses a different
        // decomposition.
        let bt = bt_trace(8, &small());
        let sharer_histogram = |t: &Trace| {
            let mut sharers = std::collections::HashMap::new();
            for c in &t.cores {
                for p in c.page_set() {
                    *sharers.entry(p).or_insert(0usize) += 1;
                }
            }
            let total = sharers.len() as f64;
            let multi = sharers.values().filter(|&&n| n >= 2).count() as f64;
            multi / total
        };
        let bt_multi = sharer_histogram(&bt);
        assert!(bt_multi > 0.5, "BT pages are mostly multi-core: {bt_multi}");
        // But the counts stay small (bounded by the two partitions plus
        // boundary effects), not all-cores.
        let mut sharers = std::collections::HashMap::new();
        for c in &bt.cores {
            for p in c.page_set() {
                *sharers.entry(p).or_insert(0usize) += 1;
            }
        }
        let all_cores = sharers.values().filter(|&&n| n == 8).count();
        assert!(
            (all_cores as f64) < 0.2 * sharers.len() as f64,
            "few pages mapped by all 8 cores: {all_cores}/{}",
            sharers.len()
        );
    }

    #[test]
    fn footprint_is_two_arrays() {
        let cfg = small();
        let t = bt_trace(2, &cfg);
        let expect = 2 * cfg.grid.cells() as u64 * 40 / 4096;
        let got = t.footprint_pages() as u64;
        assert!(got >= expect && got <= expect + 4, "{got} vs ~{expect}");
    }

    #[test]
    fn deterministic_generation() {
        let a = bt_trace(3, &small());
        let b = bt_trace(3, &small());
        assert_eq!(a.total_touches(), b.total_touches());
    }
}
