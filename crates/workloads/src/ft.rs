//! The FT workload: NPB 3-D Fast Fourier Transform.
//!
//! Like MG, FT is excluded from the paper's evaluation as "highly memory
//! intensive" (§5.1, citing Saini et al.): each time step applies 1-D
//! FFTs along all three axes, and the axis passes amount to full-array
//! transposes — every element is touched in two different orders with no
//! locality between passes, the canonical out-of-core worst case.
//!
//! The real numerics — an iterative radix-2 Cooley-Tukey FFT — live in
//! [`fft_inplace`], unit-tested for the inverse round trip, Parseval's
//! identity and a known analytic spectrum.

use cmcp_sim::Trace;

use crate::grid::Grid3;
use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// FT workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Grid extent per axis (power of two).
    pub n: usize,
    /// Time steps traced (each = 3 axis passes + evolve).
    pub steps: usize,
}

impl FtConfig {
    /// A scaled class-B stand-in.
    pub fn class_b() -> FtConfig {
        FtConfig { n: 64, steps: 2 }
    }
}

/// In-place iterative radix-2 FFT of `(re, im)`; `inverse` selects the
/// conjugate transform (scaled by 1/n on the inverse).
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let (tr, ti) = (re[b] * cr - im[b] * ci, re[b] * ci + im[b] * cr);
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let next_cr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = next_cr;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in re.iter_mut().chain(im.iter_mut()) {
            *v *= inv;
        }
    }
}

/// Generates the FT trace: per step, an evolve pass (private z-slabs),
/// x/y-axis FFT passes over z-slabs, then the z-axis pass which reads
/// the array in transposed order across *all* slabs — the all-to-all
/// that makes FT infeasible out-of-core.
pub fn ft_trace(cores: usize, cfg: &FtConfig) -> Trace {
    let g = Grid3 {
        nx: cfg.n,
        ny: cfg.n,
        nz: cfg.n,
    };
    let cells = g.cells() as u64;
    let mut space = AddressSpace::new();
    // Complex field (re+im interleaved, 16 B/cell) and a scratch array
    // for the transpose — NPB FT keeps several of these.
    let u = space.alloc("ft_u", cells, 16);
    let scratch = space.alloc("ft_scratch", cells, 16);

    let mut log = TraceLogger::new(cores, "ft");
    let row = |j: usize, k: usize| g.idx(0, j, k) as u64;

    // Initial condition over z-slabs.
    for c in 0..cores {
        let (klo, khi) = Grid3::partition(g.nz, cores, c);
        if klo < khi {
            log.core(c).range(
                &u,
                row(0, klo),
                row(g.ny - 1, khi - 1) + g.nx as u64,
                true,
                4,
            );
        }
    }
    log.barrier_all();

    for _ in 0..cfg.steps {
        // Evolve + x-FFT + y-FFT: all within private z-slabs (lines along
        // x and y stay inside a plane). ~5·n·log2(n) flops per line.
        let fft_work = (5 * (cfg.n as u64).ilog2() as u64) as u32;
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(g.nz, cores, c);
            let core = log.core(c);
            for k in klo..khi {
                for j in 0..g.ny {
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, true, 2 * fft_work);
                }
            }
        }
        log.barrier_all();
        // z-FFT: transpose into scratch (read u across ALL z for the
        // core's y-rows — strides over every slab), FFT the contiguous
        // lines, transpose back.
        for c in 0..cores {
            let (jlo, jhi) = Grid3::partition(g.ny, cores, c);
            let core = log.core(c);
            for k in 0..g.nz {
                for j in jlo..jhi {
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, false, 2);
                    core.range(&scratch, row(j, k), row(j, k) + g.nx as u64, true, 2);
                }
            }
            for k in 0..g.nz {
                for j in jlo..jhi {
                    core.range(&scratch, row(j, k), row(j, k) + g.nx as u64, true, fft_work);
                }
            }
            for k in 0..g.nz {
                for j in jlo..jhi {
                    core.range(&u, row(j, k), row(j, k) + g.nx as u64, true, 2);
                }
            }
        }
        log.barrier_all();
        // Checksum reduction (a few cells per core).
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(g.nz, cores, c);
            if klo < khi {
                log.core(c)
                    .range(&u, row(0, klo), row(0, klo) + g.nx as u64, false, 2);
            }
        }
        log.barrier_all();
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_inverse_round_trips() {
        let n = 256;
        let orig_re: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 23) as f64 / 23.0 - 0.4)
            .collect();
        let orig_im: Vec<f64> = (0..n)
            .map(|i| ((i * 11) % 19) as f64 / 19.0 - 0.6)
            .collect();
        let mut re = orig_re.clone();
        let mut im = orig_im.clone();
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - orig_re[i]).abs() < 1e-10, "re[{i}]");
            assert!((im[i] - orig_im[i]).abs() < 1e-10, "im[{i}]");
        }
    }

    #[test]
    fn fft_of_pure_tone_is_a_spike() {
        let n = 128usize;
        let freq = 5;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        // Energy concentrates in bins ±freq with magnitude n/2.
        for (k, (r, i)) in re.iter().zip(&im).enumerate() {
            let mag = (r * r + i * i).sqrt();
            if k == freq || k == n - freq {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k}: {mag}");
            } else {
                assert!(mag < 1e-9, "bin {k} should be empty: {mag}");
            }
        }
    }

    #[test]
    fn parseval_identity_holds() {
        let n = 64usize;
        let re0: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let im0 = vec![0.0; n];
        let time_energy: f64 = re0.iter().map(|v| v * v).sum();
        let mut re = re0;
        let mut im = im0;
        fft_inplace(&mut re, &mut im, false);
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn trace_is_memory_intensive_with_low_reuse() {
        let t = ft_trace(8, &FtConfig { n: 32, steps: 1 });
        assert!(t.validate().is_ok());
        // Two complex arrays: 2 × n³ × 16 B.
        let expect = 2 * 32u64 * 32 * 32 * 16 / 4096;
        let got = t.footprint_pages() as u64;
        assert!(got >= expect && got <= expect + 8, "{got} vs ~{expect}");
        // Whole-array passes with transposes: touches/page stays small.
        let reuse = t.total_touches() as f64 / t.footprint_pages() as f64;
        assert!(
            reuse < 24.0,
            "FT streams the arrays: {reuse:.1} touches/page"
        );
    }

    #[test]
    fn transpose_pass_shares_pages_across_partitions() {
        // The z-pass reads pages owned by the z-slab partition under the
        // y partition: pages end up multi-core.
        let t = ft_trace(4, &FtConfig { n: 16, steps: 1 });
        let hist = crate::synthetic::sharing_histogram(&t);
        let multi: usize = hist[1..].iter().sum();
        let total: usize = hist.iter().sum();
        assert!(
            multi * 2 > total,
            "most FT pages are multi-core: {multi}/{total}"
        );
    }
}
