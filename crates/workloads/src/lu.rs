//! The LU workload: NPB's SSOR solver, scaled.
//!
//! NPB LU applies symmetric successive over-relaxation sweeps (a forward
//! and a backward wavefront) to a 3-D grid, with OpenMP threads owning
//! j-slabs and a pipelined wavefront over k-planes. Each relaxation of a
//! row reads the j−1 and j+1 rows — at slab boundaries those belong to
//! the neighbouring cores, which is what gives LU its 2–6-core page
//! sharing (paper Figure 6b): with many cores a 4 kB page spans several
//! thin slabs.
//!
//! The numerics being traced are [`crate::grid::ssor_sweep`], verified to
//! reduce the residual of the 7-point Laplacian system.

use cmcp_sim::Trace;

use crate::grid::Grid3;
use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// LU workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct LuConfig {
    /// Grid extents (cubic in NPB).
    pub grid: Grid3,
    /// SSOR sweeps traced.
    pub sweeps: usize,
}

impl LuConfig {
    /// Scaled stand-in for NPB class B.
    pub fn class_b() -> LuConfig {
        LuConfig {
            grid: Grid3 {
                nx: 64,
                ny: 64,
                nz: 64,
            },
            sweeps: 3,
        }
    }

    /// Scaled stand-in for NPB class C.
    pub fn class_c() -> LuConfig {
        LuConfig {
            grid: Grid3 {
                nx: 96,
                ny: 96,
                nz: 96,
            },
            sweeps: 2,
        }
    }
}

/// Generates the LU trace for `cores` cores.
pub fn lu_trace(cores: usize, cfg: &LuConfig) -> Trace {
    let g = cfg.grid;
    let cells = g.cells() as u64;
    let mut space = AddressSpace::new();
    // NPB stores 5 solution components per cell (u[5][k][j][i]):
    // 40-byte cells, so an x-row of 64 cells spans ~2.5 kB — the page
    // geometry behind the paper's Figure 6 sharing histograms.
    let u = space.alloc("u", cells, 40);
    let rhs = space.alloc("rhs", cells, 40);

    let mut log = TraceLogger::new(cores, "lu");
    let slabs: Vec<(usize, usize)> = (0..cores)
        .map(|c| Grid3::partition(g.ny, cores, c))
        .collect();

    // Row (j, k) occupies elements [row_base, row_base + nx).
    let row = |j: usize, k: usize| (g.idx(0, j, k)) as u64;

    // Initialization: each core fills its slab of u and rhs. A j-slab
    // is NOT contiguous in the x-fastest layout, so walk plane by plane.
    for c in 0..cores {
        let (jlo, jhi) = slabs[c];
        if jlo < jhi {
            let core = log.core(c);
            for k in 0..g.nz {
                core.range(&u, row(jlo, k), row(jhi - 1, k) + g.nx as u64, true, 1);
                core.range(&rhs, row(jlo, k), row(jhi - 1, k) + g.nx as u64, true, 1);
            }
        }
    }
    log.barrier_all();

    for _ in 0..cfg.sweeps {
        for backward in [false, true] {
            // Pipelined wavefront over k-planes, one barrier per plane.
            let ks: Vec<usize> = if backward {
                (1..g.nz - 1).rev().collect()
            } else {
                (1..g.nz - 1).collect()
            };
            for &k in &ks {
                for c in 0..cores {
                    let (jlo, jhi) = slabs[c];
                    let jlo = jlo.max(1);
                    let jhi = jhi.min(g.ny - 1);
                    if jlo >= jhi {
                        continue;
                    }
                    let core = log.core(c);
                    let js: Vec<usize> = if backward {
                        (jlo..jhi).rev().collect()
                    } else {
                        (jlo..jhi).collect()
                    };
                    for j in js {
                        // Current row: read-modify-write of u, read rhs.
                        // NPB LU relaxes 5×5 blocks (~200 flops/cell on
                        // an in-order core); the work charges reflect
                        // that, not the scalar stand-in's flop count.
                        core.range(&u, row(j, k), row(j, k) + g.nx as u64, true, 120);
                        core.range(&rhs, row(j, k), row(j, k) + g.nx as u64, false, 30);
                        // j-neighbours (the slab-boundary reads).
                        core.range(&u, row(j - 1, k), row(j - 1, k) + g.nx as u64, false, 30);
                        core.range(&u, row(j + 1, k), row(j + 1, k) + g.nx as u64, false, 30);
                        // k-neighbours (private: same slab, other planes).
                        core.range(&u, row(j, k - 1), row(j, k - 1) + g.nx as u64, false, 30);
                        core.range(&u, row(j, k + 1), row(j, k + 1) + g.nx as u64, false, 30);
                    }
                }
                log.barrier_all();
            }
        }
        // Residual norm: read the whole slab (plane by plane) + reduce.
        for c in 0..cores {
            let (jlo, jhi) = slabs[c];
            if jlo < jhi {
                let core = log.core(c);
                for k in 0..g.nz {
                    core.range(&u, row(jlo, k), row(jhi - 1, k) + g.nx as u64, false, 1);
                }
            }
        }
        log.barrier_all();
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LuConfig {
        LuConfig {
            grid: Grid3 {
                nx: 32,
                ny: 32,
                nz: 16,
            },
            sweeps: 2,
        }
    }

    #[test]
    fn trace_is_well_formed() {
        let t = lu_trace(4, &small());
        assert!(t.validate().is_ok());
        assert!(t.total_touches() > 0);
    }

    #[test]
    fn neighbouring_slabs_share_boundary_pages() {
        let t = lu_trace(4, &small());
        let sets: Vec<std::collections::HashSet<u64>> =
            t.cores.iter().map(|c| c.page_set()).collect();
        // Adjacent cores overlap...
        for c in 0..3 {
            let shared = sets[c].intersection(&sets[c + 1]).count();
            assert!(
                shared > 0,
                "cores {c} and {} must share boundary pages",
                c + 1
            );
        }
        // ...but most pages stay within a small sharer count.
        let mut sharers = std::collections::HashMap::new();
        for s in &sets {
            for &p in s {
                *sharers.entry(p).or_insert(0usize) += 1;
            }
        }
        let total = sharers.len();
        let few = sharers.values().filter(|&&n| n <= 3).count();
        assert!(few * 2 > total, "most LU pages map ≤3 cores: {few}/{total}");
    }

    #[test]
    fn more_cores_thinner_slabs_more_sharing() {
        let sharing_avg = |cores: usize| {
            let t = lu_trace(cores, &small());
            let mut sharers = std::collections::HashMap::new();
            for c in &t.cores {
                for p in c.page_set() {
                    *sharers.entry(p).or_insert(0usize) += 1;
                }
            }
            sharers.values().sum::<usize>() as f64 / sharers.len() as f64
        };
        assert!(sharing_avg(8) > sharing_avg(2));
    }

    #[test]
    fn footprint_matches_two_arrays() {
        let cfg = small();
        let t = lu_trace(2, &cfg);
        let cells = cfg.grid.cells() as u64;
        let expect = 2 * cells * 40 / 4096; // u + rhs, 5 components each
        let got = t.footprint_pages() as u64;
        assert!(
            got >= expect && got <= expect + 4,
            "footprint {got} pages vs expected ~{expect}"
        );
    }

    #[test]
    fn barrier_count_scales_with_planes_and_sweeps() {
        let cfg = small();
        let t = lu_trace(2, &cfg);
        // init + sweeps × (2 directions × (nz−2) planes + 1 residual)
        let expect = 1 + cfg.sweeps * (2 * (cfg.grid.nz - 2) + 1);
        assert_eq!(t.cores[0].barriers(), expect);
    }
}
