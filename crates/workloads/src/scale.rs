//! The SCALE workload: RIKEN's climate/weather stencil code, scaled.
//!
//! SCALE is "a complex stencil computation application, which operates on
//! multiple data grids" (paper §5.1). The reproduction integrates several
//! 2-D fields with a 5-point stencil: threads own y-slabs, read two halo
//! rows from each neighbour per step, and periodically reduce a domain
//! statistic. The result is the paper's Figure 6d histogram: more than
//! half the pages core-private, nearly all the rest shared by exactly two
//! neighbouring cores.
//!
//! The numerics being traced are [`crate::grid::stencil_step`], verified
//! to conserve heat and smooth perturbations.

use cmcp_sim::Trace;

use crate::grid::Grid3;
use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// SCALE workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Grid extent in x (row length; rows are contiguous).
    pub nx: usize,
    /// Grid extent in y (partitioned across cores).
    pub ny: usize,
    /// Number of prognostic fields (density, momenta, energy, tracers…).
    pub fields: usize,
    /// Time steps traced.
    pub steps: usize,
}

impl ScaleConfig {
    /// The paper's "SCALE (sml)" 512 MB setup, scaled down.
    pub fn small() -> ScaleConfig {
        ScaleConfig {
            nx: 1024,
            ny: 512,
            fields: 6,
            steps: 6,
        }
    }

    /// The paper's "SCALE (big)" 1.2 GB setup, scaled down.
    pub fn big() -> ScaleConfig {
        ScaleConfig {
            nx: 1536,
            ny: 1024,
            fields: 8,
            steps: 4,
        }
    }
}

/// Generates the SCALE trace for `cores` cores.
pub fn scale_trace(cores: usize, cfg: &ScaleConfig) -> Trace {
    let cells = (cfg.nx * cfg.ny) as u64;
    let mut space = AddressSpace::new();
    let fields: Vec<_> = (0..cfg.fields)
        .map(|f| space.alloc(&format!("field{f}"), cells, 8))
        .collect();
    // Double buffer for the updated fields.
    let next: Vec<_> = (0..cfg.fields)
        .map(|f| space.alloc(&format!("next{f}"), cells, 8))
        .collect();
    // SCALE allocates many diagnostic/history variables that the time
    // loop rarely touches; they inflate the declared memory requirement
    // without joining the per-step working set — why the paper's SCALE
    // holds full performance down to ~55 % memory (Figure 8).
    for f in 0..(cfg.fields * 5).div_ceil(3) {
        space.alloc(&format!("diag{f}"), cells, 8);
    }

    let mut log = TraceLogger::new(cores, "scale");
    let slabs: Vec<(usize, usize)> = (0..cores)
        .map(|c| Grid3::partition(cfg.ny, cores, c))
        .collect();
    let row = |j: usize| (j * cfg.nx) as u64;
    let nx = cfg.nx as u64;

    // Initialization: each core fills its slab of every field.
    for c in 0..cores {
        let (jlo, jhi) = slabs[c];
        if jlo < jhi {
            let core = log.core(c);
            for f in &fields {
                core.range(f, row(jlo), row(jhi - 1) + nx, true, 1);
            }
        }
    }
    log.barrier_all();

    for step in 0..cfg.steps {
        // The real code's dynamics/physics phases visit the fields in
        // different orders; alternate the sweep direction per step so
        // the page reference stream is not purely cyclic.
        let order: Vec<usize> = if step % 2 == 0 {
            (0..cfg.fields).collect()
        } else {
            (0..cfg.fields).rev().collect()
        };
        for &fi in &order {
            let (f, fnext) = (&fields[fi], &next[fi]);
            for c in 0..cores {
                let (jlo, jhi) = slabs[c];
                if jlo >= jhi {
                    continue;
                }
                let core = log.core(c);
                // Halo reads from the neighbours (periodic domain):
                // two rows each side, as the high-order advection
                // scheme requires. With thin slabs at 56 cores this
                // makes ~40 % of a slab's pages 2-core shared — the
                // paper's Figure 6d profile.
                for h in 1..=2usize {
                    let below = (jlo + cfg.ny - h) % cfg.ny;
                    let above = (jhi + h - 1) % cfg.ny;
                    core.range(f, row(below), row(below) + nx, false, 9);
                    core.range(f, row(above), row(above) + nx, false, 9);
                }
                // Interior: full prognostic physics per cell (~300 flops
                // on an in-order core), write the new buffer.
                core.range(f, row(jlo), row(jhi - 1) + nx, false, 36);
                core.range(fnext, row(jlo), row(jhi - 1) + nx, true, 18);
            }
        }
        log.barrier_all();
        // Every other step: a domain statistic (reads own slab of one
        // field, then reduces) followed by a history write — SCALE's
        // file output, which the lightweight kernel offloads to the
        // host over IKC (paper §2.1).
        if step % 2 == 1 {
            for c in 0..cores {
                let (jlo, jhi) = slabs[c];
                if jlo < jhi {
                    let core = log.core(c);
                    core.range(&next[0], row(jlo), row(jhi - 1) + nx, false, 6);
                    let slab_bytes = ((jhi - jlo) * cfg.nx) as u64 * 8;
                    core.syscall(12_000, slab_bytes / 16, true);
                }
            }
            log.barrier_all();
        }
        // Buffer swap is a pointer swap — no memory traffic, but the
        // roles of `fields` and `next` alternate. Model by continuing to
        // read from `next` on odd steps via a swap of the handles.
        // (Handles are Regions — cheap copies.)
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleConfig {
        ScaleConfig {
            nx: 256,
            ny: 64,
            fields: 3,
            steps: 4,
        }
    }

    #[test]
    fn trace_is_well_formed() {
        let t = scale_trace(4, &small());
        assert!(t.validate().is_ok());
        assert!(t.total_touches() > 0);
    }

    #[test]
    fn over_half_the_pages_are_private() {
        // Figure 6d: SCALE has >50 % core-private pages and the rest
        // shared mostly by 2 cores.
        let t = scale_trace(8, &small());
        let mut sharers = std::collections::HashMap::new();
        for c in &t.cores {
            for p in c.page_set() {
                *sharers.entry(p).or_insert(0usize) += 1;
            }
        }
        let total = sharers.len();
        let private = sharers.values().filter(|&&n| n == 1).count();
        let two = sharers.values().filter(|&&n| n == 2).count();
        let more = sharers.values().filter(|&&n| n > 3).count();
        assert!(private * 2 > total, "majority private: {private}/{total}");
        assert!(two > 0, "halo pages shared by 2 cores");
        assert!(
            (more as f64) < 0.1 * total as f64,
            ">3-core pages must be rare: {more}/{total}"
        );
    }

    #[test]
    fn footprint_scales_with_fields() {
        let t3 = scale_trace(2, &small());
        let t6 = scale_trace(
            2,
            &ScaleConfig {
                fields: 6,
                ..small()
            },
        );
        assert!(t6.footprint_pages() > t3.footprint_pages() * 3 / 2);
    }

    #[test]
    fn neighbours_share_halo_pages() {
        let t = scale_trace(4, &small());
        let sets: Vec<std::collections::HashSet<u64>> =
            t.cores.iter().map(|c| c.page_set()).collect();
        for c in 0..3 {
            assert!(
                sets[c].intersection(&sets[c + 1]).count() > 0,
                "cores {c},{} share halos",
                c + 1
            );
        }
    }
}
