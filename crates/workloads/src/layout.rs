//! Virtual address space layout for workload arrays.
//!
//! Mirrors what the paper's runtime does: computation data is explicitly
//! memory-mapped into the PSPT-managed area ("we interface a C block with
//! the Fortran code which explicitly memory maps allocations to the
//! desired area", §5.1). Regions are 2 MB-aligned so a single mapping
//! block never spans two arrays regardless of the page size under test.

use cmcp_arch::{PageSize, VirtAddr, VirtPage};

/// One array's placement: a contiguous, 2 MB-aligned page range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First 4 kB page.
    pub base: VirtPage,
    /// Length in 4 kB pages.
    pub pages: u64,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Number of elements.
    pub len: u64,
}

impl Region {
    /// The 4 kB page containing element `idx`.
    #[inline]
    pub fn page_of(&self, idx: u64) -> VirtPage {
        debug_assert!(idx < self.len, "element {idx} out of bounds ({})", self.len);
        VirtPage(self.base.0 + idx * self.elem_bytes / 4096)
    }

    /// The inclusive page range covering elements `[lo, hi)`.
    #[inline]
    pub fn page_range(&self, lo: u64, hi: u64) -> (VirtPage, u64) {
        debug_assert!(lo < hi && hi <= self.len);
        let first = self.page_of(lo);
        let last = VirtPage(self.base.0 + (hi * self.elem_bytes - 1) / 4096);
        (first, last.0 - first.0 + 1)
    }

    /// Virtual address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: u64) -> VirtAddr {
        VirtAddr(self.base.base_addr().0 + idx * self.elem_bytes)
    }
}

/// A bump allocator over the computation area.
#[derive(Debug)]
pub struct AddressSpace {
    next_page: u64,
    regions: Vec<(String, Region)>,
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace::new()
    }
}

impl AddressSpace {
    /// An empty layout starting at the computation-area base (1 GB, clear
    /// of the kernel/regular mappings which PSPT leaves shared).
    pub fn new() -> AddressSpace {
        AddressSpace {
            next_page: (1u64 << 30) >> 12,
            regions: Vec::new(),
        }
    }

    /// Reserves a region for `len` elements of `elem_bytes` each.
    pub fn alloc(&mut self, name: &str, len: u64, elem_bytes: u64) -> Region {
        assert!(len > 0 && elem_bytes > 0, "empty region {name}");
        let span_2m = PageSize::M2.pages_4k() as u64;
        // Align the base up to a 2 MB boundary.
        let base = self.next_page.div_ceil(span_2m) * span_2m;
        let bytes = len * elem_bytes;
        let pages = bytes.div_ceil(4096);
        self.next_page = base + pages;
        let region = Region {
            base: VirtPage(base),
            pages,
            elem_bytes,
            len,
        };
        self.regions.push((name.to_string(), region));
        region
    }

    /// All regions in allocation order.
    pub fn regions(&self) -> &[(String, Region)] {
        &self.regions
    }

    /// Total footprint in 4 kB pages (actual data pages, not alignment
    /// padding).
    pub fn footprint_pages(&self) -> u64 {
        self.regions.iter().map(|(_, r)| r.pages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_2m_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc("x", 1000, 8);
        let r2 = a.alloc("y", 1000, 8);
        assert!(r1.base.is_aligned(PageSize::M2));
        assert!(r2.base.is_aligned(PageSize::M2));
        assert!(r2.base.0 >= r1.base.0 + r1.pages);
    }

    #[test]
    fn page_of_walks_elements() {
        let mut a = AddressSpace::new();
        let r = a.alloc("v", 4096, 8); // 512 f64 per page → 8 pages
        assert_eq!(r.pages, 8);
        assert_eq!(r.page_of(0), r.base);
        assert_eq!(r.page_of(511), r.base);
        assert_eq!(r.page_of(512), VirtPage(r.base.0 + 1));
        assert_eq!(r.page_of(4095), VirtPage(r.base.0 + 7));
    }

    #[test]
    fn page_range_is_inclusive_of_partial_pages() {
        let mut a = AddressSpace::new();
        let r = a.alloc("v", 2048, 8);
        let (first, n) = r.page_range(0, 2048);
        assert_eq!(first, r.base);
        assert_eq!(n, 4);
        let (first, n) = r.page_range(500, 520); // straddles pages 0 and 1
        assert_eq!(first, r.base);
        assert_eq!(n, 2);
    }

    #[test]
    fn footprint_sums_data_pages() {
        let mut a = AddressSpace::new();
        a.alloc("a", 512, 8); // 1 page
        a.alloc("b", 1024, 4); // 1 page
        assert_eq!(a.footprint_pages(), 2);
        assert_eq!(a.regions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_assert! is compiled out in release builds"
    )]
    fn page_of_bounds_checked_in_debug() {
        let mut a = AddressSpace::new();
        let r = a.alloc("v", 10, 8);
        r.page_of(10);
    }
}
