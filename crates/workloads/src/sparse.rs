//! Sparse matrices and the conjugate-gradient solver: the real numerics
//! behind the CG workload.
//!
//! NPB CG builds a random sparse symmetric positive-definite matrix and
//! runs conjugate-gradient iterations against it. We reproduce the same
//! construction at scaled sizes: a random sparsity pattern with geometric
//! clustering around the diagonal, symmetrized, with a diagonal shift
//! that guarantees strict diagonal dominance (hence SPD).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Row pointers, `n + 1` entries.
    pub row_ptr: Vec<u64>,
    /// Column indices, `nnz` entries.
    pub col_idx: Vec<u32>,
    /// Values, `nnz` entries.
    pub vals: Vec<f64>,
    /// Dimension.
    pub n: usize,
}

impl CsrMatrix {
    /// A random SPD matrix in the NPB-CG style: `nnz_per_row` off-diagonal
    /// entries per row drawn with geometric clustering near the diagonal,
    /// symmetrized by construction, plus a dominant diagonal.
    pub fn random_spd(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        assert!(n > 1 && nnz_per_row >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Collect symmetric off-diagonal pattern as (row, col, val).
        let mut cols_per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..nnz_per_row.div_ceil(2) {
                // Geometric distance from the diagonal (cluster like NPB's
                // makea), occasionally jumping far (the long-range tail).
                let far = rng.gen_bool(0.15);
                let dist = if far {
                    rng.gen_range(1..n as u64)
                } else {
                    let span = (n as u64 / 64).max(2);
                    1 + (rng.gen_range(0.0f64..1.0).powi(3) * (span - 1) as f64) as u64
                };
                let j = ((i as u64 + dist) % n as u64) as usize;
                if j == i {
                    continue;
                }
                let v = rng.gen_range(-0.5f64..0.5);
                cols_per_row[i].push((j as u32, v));
                cols_per_row[j].push((i as u32, v));
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for (i, row) in cols_per_row.iter_mut().enumerate() {
            row.sort_by_key(|&(c, _)| c);
            row.dedup_by_key(|&mut (c, _)| c);
            // Strict diagonal dominance ⇒ SPD for a symmetric matrix.
            let offdiag_sum: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
            let mut inserted_diag = false;
            for &(c, v) in row.iter() {
                if !inserted_diag && c as usize > i {
                    col_idx.push(i as u32);
                    vals.push(offdiag_sum + 1.0);
                    inserted_diag = true;
                }
                col_idx.push(c);
                vals.push(v);
            }
            if !inserted_diag {
                col_idx.push(i as u32);
                vals.push(offdiag_sum + 1.0);
            }
            row_ptr.push(col_idx.len() as u64);
        }
        CsrMatrix {
            row_ptr,
            col_idx,
            vals,
            n,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                acc += self.vals[k] * x[self.col_idx[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Checks structural symmetry (testing aid).
    pub fn is_symmetric(&self) -> bool {
        // Sample-based check for big matrices, exact for small ones.
        for i in 0..self.n {
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                let j = self.col_idx[k] as usize;
                let v = self.vals[k];
                let mut found = false;
                for kk in self.row_ptr[j] as usize..self.row_ptr[j + 1] as usize {
                    if self.col_idx[kk] as usize == i {
                        if (self.vals[kk] - v).abs() > 1e-12 {
                            return false;
                        }
                        found = true;
                        break;
                    }
                }
                if !found {
                    return false;
                }
            }
        }
        true
    }
}

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Residual 2-norm per iteration (including the initial residual).
    pub residuals: Vec<f64>,
}

/// Plain conjugate gradient for `A·x = b`, `iters` iterations.
///
/// This is the same iteration the CG trace generator walks; tests verify
/// it converges on the generated SPD matrices, grounding the trace in a
/// real algorithm.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], iters: usize) -> CgResult {
    let n = a.n;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    let mut residuals = vec![rho.sqrt()];
    for _ in 0..iters {
        a.spmv(&p, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        if pq.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        residuals.push(rho.sqrt());
    }
    CgResult { x, residuals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_spd_is_symmetric_with_dominant_diagonal() {
        let a = CsrMatrix::random_spd(200, 8, 42);
        assert!(a.is_symmetric());
        for i in 0..a.n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in a.row_ptr[i] as usize..a.row_ptr[i + 1] as usize {
                if a.col_idx[k] as usize == i {
                    diag = a.vals[k];
                } else {
                    off += a.vals[k].abs();
                }
            }
            assert!(diag > off, "row {i} not strictly dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn spmv_identity_like_behaviour() {
        // A·e_i recovers column i; check against a dense reconstruction
        // on a tiny matrix.
        let a = CsrMatrix::random_spd(10, 3, 7);
        let mut dense = vec![vec![0.0; 10]; 10];
        for i in 0..10 {
            for k in a.row_ptr[i] as usize..a.row_ptr[i + 1] as usize {
                dense[i][a.col_idx[k] as usize] = a.vals[k];
            }
        }
        let x: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let mut y = vec![0.0; 10];
        a.spmv(&x, &mut y);
        for i in 0..10 {
            let want: f64 = (0..10).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cg_converges_on_spd_system() {
        let a = CsrMatrix::random_spd(500, 10, 1);
        let b: Vec<f64> = (0..500).map(|i| ((i * 37) % 17) as f64 / 17.0).collect();
        let res = conjugate_gradient(&a, &b, 40);
        let first = res.residuals[0];
        let last = *res.residuals.last().unwrap();
        assert!(
            last < first * 1e-6,
            "CG must converge: {first} → {last} over {} iters",
            res.residuals.len() - 1
        );
        // And the returned x really solves the system.
        let mut ax = vec![0.0; 500];
        a.spmv(&res.x, &mut ax);
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "residual check failed: {err}");
    }

    #[test]
    fn residuals_are_monotone_enough() {
        // CG residuals can wobble, but over windows they must shrink.
        let a = CsrMatrix::random_spd(300, 6, 9);
        let b = vec![1.0; 300];
        let res = conjugate_gradient(&a, &b, 20);
        let half = res.residuals[res.residuals.len() / 2];
        assert!(half < res.residuals[0]);
    }

    #[test]
    fn nnz_scales_with_requested_density() {
        let a = CsrMatrix::random_spd(1000, 4, 3);
        let b = CsrMatrix::random_spd(1000, 16, 3);
        assert!(b.nnz() > a.nnz() * 2);
    }

    #[test]
    fn same_seed_same_matrix() {
        let a = CsrMatrix::random_spd(100, 5, 11);
        let b = CsrMatrix::random_spd(100, 5, 11);
        assert_eq!(a.col_idx, b.col_idx);
        assert_eq!(a.row_ptr, b.row_ptr);
    }
}
