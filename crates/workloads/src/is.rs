//! The IS workload: NPB Integer Sort.
//!
//! The paper drops IS with one line: it "doesn't appear to have high
//! importance for our study" (§5.1). Implemented here for completeness
//! of the NPB set: a parallel counting/bucket sort whose memory
//! behaviour — a random-scatter histogram over a shared key range — is
//! unlike any of the retained workloads, which is presumably why it
//! added nothing to the paper's analysis.
//!
//! The real numerics live in [`bucket_sort_ranks`]: keys are ranked via
//! per-bucket counting exactly like NPB IS, unit-tested against a
//! reference sort.

use cmcp_sim::Trace;

use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// IS workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsConfig {
    /// log2 of the number of keys.
    pub total_keys_log2: u32,
    /// log2 of the key range (max key value).
    pub max_key_log2: u32,
    /// Ranking iterations.
    pub iterations: usize,
    /// Key-stream seed.
    pub seed: u64,
}

impl IsConfig {
    /// A scaled class-B stand-in.
    pub fn class_b() -> IsConfig {
        IsConfig {
            total_keys_log2: 20,
            max_key_log2: 16,
            iterations: 3,
            seed: 314_159,
        }
    }
}

fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Generates the NPB-IS-style key array.
pub fn generate_keys(n: usize, max_key: u32, seed: u64) -> Vec<u32> {
    let mut state = seed.max(1);
    // NPB IS uses an average of four uniform deviates to approximate a
    // Gaussian-ish key distribution; do the same.
    (0..n)
        .map(|_| {
            let sum: u64 = (0..4).map(|_| next(&mut state) % max_key as u64).sum();
            (sum / 4) as u32
        })
        .collect()
}

/// Ranks `keys` by counting sort: returns `rank[i]` = the position of
/// `keys[i]` in the sorted order (stable).
pub fn bucket_sort_ranks(keys: &[u32], max_key: u32) -> Vec<u32> {
    let mut counts = vec![0u32; max_key as usize + 1];
    for &k in keys {
        counts[k as usize] += 1;
    }
    // Exclusive prefix sum.
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    let mut ranks = vec![0u32; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        ranks[i] = counts[k as usize];
        counts[k as usize] += 1;
    }
    ranks
}

/// Generates the IS trace: per iteration, each core streams its slice of
/// the key array and scatters increments into a shared histogram (random
/// single-element writes across the whole bucket range), then the prefix
/// sum and permutation passes.
pub fn is_trace(cores: usize, cfg: &IsConfig) -> Trace {
    let n = 1u64 << cfg.total_keys_log2;
    let buckets = 1u64 << cfg.max_key_log2;
    let mut space = AddressSpace::new();
    let keys = space.alloc("is_keys", n, 4);
    let hist = space.alloc("is_hist", buckets, 4);
    let ranks = space.alloc("is_ranks", n, 4);

    // Sample the real key stream so the scatter pattern is genuine, but
    // trace only every `stride`-th scatter (the skipped ones land on the
    // same pages with overwhelming probability at 4 kB granularity; the
    // work charge carries their cost).
    let stride = 64u64;
    let mut state = cfg.seed.max(1);
    let mut sample_key = |_i: u64| {
        let sum: u64 = (0..4).map(|_| next(&mut state) % buckets).sum();
        sum / 4
    };

    let mut log = TraceLogger::new(cores, "is");
    let per_core = n / cores as u64;
    for _ in 0..cfg.iterations {
        // Scatter phase: stream own keys, scatter into the shared
        // histogram.
        for c in 0..cores {
            let lo = c as u64 * per_core;
            let hi = if c + 1 == cores { n } else { lo + per_core };
            let core = log.core(c);
            let mut i = lo;
            while i < hi {
                core.range(&keys, i, (i + stride).min(hi), false, 2);
                let k = sample_key(i);
                core.element(&hist, k, true, (stride * 3) as u32);
                i += stride;
            }
        }
        log.barrier_all();
        // Prefix sum over the histogram, partitioned by bucket ranges.
        for c in 0..cores {
            let blo = c as u64 * buckets / cores as u64;
            let bhi = (c as u64 + 1) * buckets / cores as u64;
            if blo < bhi {
                log.core(c).range(&hist, blo, bhi, true, 3);
            }
        }
        log.barrier_all();
        // Rank write-out: stream keys again, write ranks.
        for c in 0..cores {
            let lo = c as u64 * per_core;
            let hi = if c + 1 == cores { n } else { lo + per_core };
            let core = log.core(c);
            core.range(&keys, lo, hi, false, 1);
            core.range(&ranks, lo, hi, true, 2);
        }
        log.barrier_all();
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_agree_with_reference_sort() {
        let keys = generate_keys(5000, 1 << 10, 9);
        let ranks = bucket_sort_ranks(&keys, 1 << 10);
        // Scatter keys to their ranks: the result must be sorted, and a
        // permutation (every rank used exactly once).
        let mut sorted = vec![u32::MAX; keys.len()];
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(sorted[r as usize], u32::MAX, "rank {r} used twice");
            sorted[r as usize] = keys[i];
        }
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn ranking_is_stable() {
        let keys = vec![5, 3, 5, 3, 5];
        let ranks = bucket_sort_ranks(&keys, 8);
        // Equal keys keep input order: the two 3s rank 0,1; the 5s 2,3,4.
        assert_eq!(ranks, vec![2, 0, 3, 1, 4]);
    }

    #[test]
    fn key_distribution_is_centered() {
        // The average-of-four construction concentrates keys around
        // max_key × 3/8 (mean of min(u,...)·avg): just check the extreme
        // tails are rare, as in NPB IS.
        let max_key = 1u32 << 12;
        let keys = generate_keys(20_000, max_key, 3);
        let hi_tail = keys.iter().filter(|&&k| k > max_key * 7 / 8).count();
        let lo_mid = keys
            .iter()
            .filter(|&&k| k > max_key / 8 && k < max_key * 6 / 8)
            .count();
        assert!(hi_tail < keys.len() / 50, "heavy high tail: {hi_tail}");
        assert!(lo_mid > keys.len() / 2, "mass must sit mid-range: {lo_mid}");
    }

    #[test]
    fn trace_shares_the_histogram_widely() {
        let t = is_trace(
            8,
            &IsConfig {
                total_keys_log2: 14,
                max_key_log2: 12,
                iterations: 1,
                seed: 1,
            },
        );
        assert!(t.validate().is_ok());
        let hist = crate::synthetic::sharing_histogram(&t);
        // The histogram pages are scattered into by every core.
        assert!(hist[7] > 0, "some pages mapped by all 8 cores: {hist:?}");
    }
}
