//! The EP workload: NPB Embarrassingly Parallel.
//!
//! The paper *excludes* EP from its evaluation because it "uses \[a\] very
//! small amount of memory and thus hierarchical memory management is not
//! necessary" (§5.1). We implement it anyway so the claim is testable:
//! the `ablation_excluded` bench shows EP's fault count equals its (tiny)
//! cold footprint at any memory constraint the paper would impose.
//!
//! EP generates pairs of uniform deviates, applies the Marsaglia polar
//! acceptance test, and tallies the accepted Gaussian pairs into ten
//! annulus counters — almost pure compute over a per-core table of a few
//! pages. The real math lives in [`ep_gaussian_counts`], unit-tested for
//! the expected acceptance rate (π/4) and tally conservation.

use cmcp_sim::Trace;

use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// EP workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// log2 of the number of random pairs per core.
    pub m: u32,
    /// Seed for the deviate stream.
    pub seed: u64,
}

impl EpConfig {
    /// A scaled class-B stand-in.
    pub fn class_b() -> EpConfig {
        EpConfig {
            m: 18,
            seed: 271_828_183,
        }
    }
}

/// xorshift64* generator matching the trace/compute implementations.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform deviate in (-1, 1).
fn deviate(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// The real EP computation: generates `pairs` candidate pairs, returns
/// (accepted count, per-annulus tallies) of the Marsaglia polar method.
pub fn ep_gaussian_counts(pairs: u64, seed: u64) -> (u64, [u64; 10]) {
    let mut state = seed.max(1);
    let mut accepted = 0u64;
    let mut tallies = [0u64; 10];
    for _ in 0..pairs {
        let x = deviate(&mut state);
        let y = deviate(&mut state);
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            accepted += 1;
            let f = (-2.0 * t.ln() / t).sqrt();
            let (gx, gy) = (x * f, y * f);
            let bin = gx.abs().max(gy.abs()).floor() as usize;
            tallies[bin.min(9)] += 1;
        }
    }
    (accepted, tallies)
}

/// Generates the EP trace: per-core deviate state + tally table (a few
/// pages), a long compute phase, one reduction at the end.
pub fn ep_trace(cores: usize, cfg: &EpConfig) -> Trace {
    let mut space = AddressSpace::new();
    // Per-core state: deviate buffer (a few pages) + tallies.
    let buffers: Vec<_> = (0..cores)
        .map(|c| space.alloc(&format!("ep_buf{c}"), 2048, 8))
        .collect();
    let tallies = space.alloc("ep_tallies", (cores * 16) as u64, 8);

    let mut log = TraceLogger::new(cores, "ep");
    let pairs_per_core = 1u64 << cfg.m;
    // ~60 cycles of work per pair on an in-order core; charged in
    // buffer-sized batches that re-touch the per-core pages.
    let batches = 64u64;
    let work_per_batch = pairs_per_core / batches * 15; // work units
    for c in 0..cores {
        let core = log.core(c);
        for _ in 0..batches {
            core.range(
                &buffers[c],
                0,
                2048,
                true,
                (work_per_batch / 2048).max(1) as u32,
            );
        }
        // Tally write (own slice) + reduction read of everyone's.
        core.range(&tallies, (c * 16) as u64, (c * 16 + 16) as u64, true, 4);
    }
    log.barrier_all();
    for c in 0..cores {
        log.core(c)
            .range(&tallies, 0, (cores * 16) as u64, false, 1);
    }
    log.barrier_all();
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let pairs = 200_000;
        let (accepted, _) = ep_gaussian_counts(pairs, 42);
        let rate = accepted as f64 / pairs as f64;
        let expected = std::f64::consts::FRAC_PI_4;
        assert!(
            (rate - expected).abs() < 0.01,
            "acceptance {rate:.4} should be ≈ π/4 = {expected:.4}"
        );
    }

    #[test]
    fn tallies_conserve_accepted_pairs() {
        let (accepted, tallies) = ep_gaussian_counts(50_000, 7);
        assert_eq!(tallies.iter().sum::<u64>(), accepted);
        // max(|x|,|y|) of a standard Gaussian pair: P(<1) ≈ 0.466,
        // P(<2) ≈ 0.911.
        assert!(
            tallies[0] > accepted * 2 / 5,
            "bin0 {} of {accepted}",
            tallies[0]
        );
        assert!(
            tallies[0] + tallies[1] > accepted * 85 / 100,
            "bins 0-1 cover ~91%: {} of {accepted}",
            tallies[0] + tallies[1]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(ep_gaussian_counts(10_000, 3), ep_gaussian_counts(10_000, 3));
        assert_ne!(
            ep_gaussian_counts(10_000, 3).1,
            ep_gaussian_counts(10_000, 4).1
        );
    }

    #[test]
    fn footprint_is_tiny_and_compute_heavy() {
        let t = ep_trace(8, &EpConfig { m: 14, seed: 1 });
        assert!(t.validate().is_ok());
        // A few pages per core: hierarchical memory management has
        // nothing to do here — the paper's reason for excluding EP.
        assert!(
            t.footprint_pages() < 8 * 8,
            "footprint {} pages",
            t.footprint_pages()
        );
        assert!(t.total_touches() > 1000, "but plenty of compute batches");
    }
}
