//! The MG workload: NPB MultiGrid.
//!
//! The paper *excludes* MG because it is "highly memory intensive" and
//! "without algorithmic modifications … running these applications in an
//! out-of-core fashion is not feasible" (§5.1, citing Saini et al. and
//! Toledo's out-of-core survey). We implement it anyway so the claim is
//! demonstrable: the `ablation_excluded` bench shows MG's relative
//! performance collapsing far below the other workloads at the same
//! memory constraint, because every V-cycle sweeps the *entire* grid
//! hierarchy with almost no reuse between levels.
//!
//! The real numerics — a V-cycle for the 3-D Poisson equation with
//! Jacobi smoothing, full-weighting restriction and trilinear
//! prolongation — live in [`v_cycle`] and are unit-tested to beat plain
//! Jacobi iteration on the same budget.

use cmcp_sim::Trace;

use crate::grid::Grid3;
use crate::layout::AddressSpace;
use crate::logger::TraceLogger;

/// MG workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Finest grid extent (power of two).
    pub n: usize,
    /// V-cycles traced.
    pub cycles: usize,
}

impl MgConfig {
    /// A scaled class-B stand-in.
    pub fn class_b() -> MgConfig {
        MgConfig { n: 64, cycles: 2 }
    }
}

/// One *weighted* Jacobi smoothing sweep (ω = 6/7, the classic smoother
/// weight for the 3-D 7-point stencil) of `u` toward `∇²u = rhs` on an
/// `n³` periodic grid; returns the updated field. Unweighted Jacobi does
/// not damp the highest-frequency mode on a periodic grid (amplification
/// −1), which would defeat the multigrid coarse-grid correction.
fn jacobi_sweep(n: usize, u: &[f64], rhs: &[f64]) -> Vec<f64> {
    const OMEGA: f64 = 6.0 / 7.0;
    let g = Grid3 {
        nx: n,
        ny: n,
        nz: n,
    };
    let mut out = vec![0.0; u.len()];
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let idx = |i: usize, j: usize, k: usize| g.idx(i % n, j % n, k % n);
                let sum = u[idx(i + 1, j, k)]
                    + u[idx(i + n - 1, j, k)]
                    + u[idx(i, j + 1, k)]
                    + u[idx(i, j + n - 1, k)]
                    + u[idx(i, j, k + 1)]
                    + u[idx(i, j, k + n - 1)];
                let c = g.idx(i, j, k);
                out[c] = (1.0 - OMEGA) * u[c] + OMEGA * (sum - rhs[c]) / 6.0;
            }
        }
    }
    out
}

/// Residual 2-norm of `∇²u − rhs` (7-point, periodic).
pub fn residual_norm(n: usize, u: &[f64], rhs: &[f64]) -> f64 {
    let g = Grid3 {
        nx: n,
        ny: n,
        nz: n,
    };
    let mut norm = 0.0;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let idx = |i: usize, j: usize, k: usize| g.idx(i % n, j % n, k % n);
                let lap = u[idx(i + 1, j, k)]
                    + u[idx(i + n - 1, j, k)]
                    + u[idx(i, j + 1, k)]
                    + u[idx(i, j + n - 1, k)]
                    + u[idx(i, j, k + 1)]
                    + u[idx(i, j, k + n - 1)]
                    - 6.0 * u[g.idx(i, j, k)];
                let r = lap - rhs[g.idx(i, j, k)];
                norm += r * r;
            }
        }
    }
    norm.sqrt()
}

/// Full-weighting restriction to the next-coarser (n/2)³ grid.
fn restrict(n: usize, fine: &[f64]) -> Vec<f64> {
    let half = n / 2;
    let gf = Grid3 {
        nx: n,
        ny: n,
        nz: n,
    };
    let gc = Grid3 {
        nx: half,
        ny: half,
        nz: half,
    };
    let mut coarse = vec![0.0; half * half * half];
    for k in 0..half {
        for j in 0..half {
            for i in 0..half {
                // Average of the 2×2×2 fine cell block.
                let mut acc = 0.0;
                for dk in 0..2 {
                    for dj in 0..2 {
                        for di in 0..2 {
                            acc += fine[gf.idx(2 * i + di, 2 * j + dj, 2 * k + dk)];
                        }
                    }
                }
                coarse[gc.idx(i, j, k)] = acc / 8.0;
            }
        }
    }
    coarse
}

/// Cell-centered trilinear prolongation back to the fine grid, added to
/// `u`. (Transfer-operator orders must sum above the operator order 2:
/// piecewise-constant interpolation is not enough for a convergent
/// V-cycle, trilinear is.)
fn prolong_add(n: usize, coarse: &[f64], u: &mut [f64]) {
    let half = n / 2;
    let gf = Grid3 {
        nx: n,
        ny: n,
        nz: n,
    };
    let gc = Grid3 {
        nx: half,
        ny: half,
        nz: half,
    };
    // Fine cell 2i sits 1/4 before coarse centre i, fine cell 2i+1 sits
    // 1/4 past it: weights (3/4, 1/4) toward the neighbour on that side.
    let pair = |x: usize| -> [(usize, f64); 2] {
        let c = x / 2;
        let nb = if x.is_multiple_of(2) {
            (c + half - 1) % half
        } else {
            (c + 1) % half
        };
        [(c, 0.75), (nb, 0.25)]
    };
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for (ci, wi) in pair(i) {
                    for (cj, wj) in pair(j) {
                        for (ck, wk) in pair(k) {
                            acc += wi * wj * wk * coarse[gc.idx(ci, cj, ck)];
                        }
                    }
                }
                u[gf.idx(i, j, k)] += acc;
            }
        }
    }
}

/// One multigrid V-cycle for `∇²u = rhs` down to a 4³ coarsest grid.
pub fn v_cycle(n: usize, u: &mut Vec<f64>, rhs: &[f64]) {
    // Pre-smooth.
    *u = jacobi_sweep(n, u, rhs);
    if n <= 4 {
        // Coarsest level: a few extra smoothing sweeps stand in for the
        // exact solve.
        for _ in 0..4 {
            *u = jacobi_sweep(n, u, rhs);
        }
        return;
    }
    // Residual, restrict, recurse, prolong, post-smooth.
    let g = Grid3 {
        nx: n,
        ny: n,
        nz: n,
    };
    let mut resid = vec![0.0; u.len()];
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let idx = |i: usize, j: usize, k: usize| g.idx(i % n, j % n, k % n);
                let lap = u[idx(i + 1, j, k)]
                    + u[idx(i + n - 1, j, k)]
                    + u[idx(i, j + 1, k)]
                    + u[idx(i, j + n - 1, k)]
                    + u[idx(i, j, k + 1)]
                    + u[idx(i, j, k + n - 1)]
                    - 6.0 * u[g.idx(i, j, k)];
                resid[g.idx(i, j, k)] = rhs[g.idx(i, j, k)] - lap;
            }
        }
    }
    // The stencil is algebraic (no 1/h² factor), so halving the grid
    // scales the operator by (2h/h)² = 4: the coarse right-hand side
    // must carry the factor for the correction to have the right
    // magnitude.
    let coarse_rhs: Vec<f64> = restrict(n, &resid).into_iter().map(|v| 4.0 * v).collect();
    let mut coarse_u = vec![0.0; coarse_rhs.len()];
    v_cycle(n / 2, &mut coarse_u, &coarse_rhs);
    prolong_add(n, &coarse_u, u);
    *u = jacobi_sweep(n, u, rhs);
}

/// Generates the MG trace: per V-cycle, smoothing/residual sweeps over
/// every level of the hierarchy (z-slab partitioned), restriction and
/// prolongation between adjacent levels.
pub fn mg_trace(cores: usize, cfg: &MgConfig) -> Trace {
    let mut space = AddressSpace::new();
    // One u and one rhs array per level, n down to 4.
    let mut levels = Vec::new();
    let mut n = cfg.n;
    while n >= 4 {
        let cells = (n * n * n) as u64;
        let u = space.alloc(&format!("mg_u{n}"), cells, 8);
        let r = space.alloc(&format!("mg_r{n}"), cells, 8);
        levels.push((n, u, r));
        n /= 2;
    }

    let mut log = TraceLogger::new(cores, "mg");
    let sweep = |log: &mut TraceLogger,
                 level: &(usize, crate::layout::Region, crate::layout::Region),
                 writes_u: bool| {
        let (n, u, r) = level;
        for c in 0..cores {
            let (klo, khi) = Grid3::partition(*n, cores, c);
            if klo >= khi {
                continue;
            }
            let lo = (klo * n * n) as u64;
            let hi = (khi * n * n) as u64;
            let core = log.core(c);
            core.range(u, lo, hi, writes_u, 8);
            core.range(r, lo, hi, false, 2);
        }
        log.barrier_all();
    };

    for _ in 0..cfg.cycles {
        // Down-sweep: smooth + residual + restrict at every level.
        for li in 0..levels.len() {
            sweep(&mut log, &levels[li], true); // pre-smooth
            sweep(&mut log, &levels[li], false); // residual
            if li + 1 < levels.len() {
                // Restriction writes the next level's rhs.
                let (n_c, _, r_c) = &levels[li + 1];
                for c in 0..cores {
                    let (klo, khi) = Grid3::partition(*n_c, cores, c);
                    if klo >= khi {
                        continue;
                    }
                    log.core(c).range(
                        r_c,
                        (klo * n_c * n_c) as u64,
                        (khi * n_c * n_c) as u64,
                        true,
                        6,
                    );
                }
                log.barrier_all();
            }
        }
        // Up-sweep: prolong + post-smooth.
        for li in (0..levels.len() - 1).rev() {
            sweep(&mut log, &levels[li], true);
        }
    }
    let mut trace = log.finish();
    trace.declared_pages = space.footprint_pages();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_problem(n: usize) -> (Vec<f64>, Vec<f64>) {
        // A smooth, low-frequency right-hand side: the regime where
        // plain relaxation stalls (error modes with eigenvalues near 1)
        // and the coarse-grid correction is what converges. Zero-mean by
        // construction, so the periodic problem is solvable.
        let g = Grid3 {
            nx: n,
            ny: n,
            nz: n,
        };
        let mut rhs = vec![0.0; n * n * n];
        let w = 2.0 * std::f64::consts::PI / n as f64;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    rhs[g.idx(i, j, k)] =
                        (w * i as f64).sin() * (w * j as f64).sin() * (w * k as f64).cos();
                }
            }
        }
        (vec![0.0; n * n * n], rhs)
    }

    #[test]
    fn v_cycle_reduces_residual() {
        let n = 16;
        let (mut u, rhs) = test_problem(n);
        let r0 = residual_norm(n, &u, &rhs);
        v_cycle(n, &mut u, &rhs);
        let r1 = residual_norm(n, &u, &rhs);
        v_cycle(n, &mut u, &rhs);
        let r2 = residual_norm(n, &u, &rhs);
        assert!(r1 < r0, "first V-cycle reduces the residual: {r0} → {r1}");
        assert!(r2 < r1, "and keeps converging: {r1} → {r2}");
    }

    #[test]
    fn v_cycle_beats_plain_jacobi_per_work() {
        let n = 16;
        let (mut u_mg, rhs) = test_problem(n);
        let (mut u_j, _) = test_problem(n);
        // One V-cycle costs ≈ 2 fine sweeps + residual + the coarse
        // hierarchy (≤ 1/7 of fine work) ≈ 4 sweep-equivalents; give
        // Jacobi 6 to be generous.
        v_cycle(n, &mut u_mg, &rhs);
        for _ in 0..6 {
            u_j = jacobi_sweep(n, &u_j, &rhs);
        }
        let r_mg = residual_norm(n, &u_mg, &rhs);
        let r_j = residual_norm(n, &u_j, &rhs);
        assert!(
            r_mg < r_j,
            "multigrid must out-converge equal-work Jacobi: {r_mg} vs {r_j}"
        );
    }

    #[test]
    fn restriction_preserves_mean() {
        let n = 8;
        let fine: Vec<f64> = (0..n * n * n).map(|c| c as f64).collect();
        let coarse = restrict(n, &fine);
        let mf: f64 = fine.iter().sum::<f64>() / fine.len() as f64;
        let mc: f64 = coarse.iter().sum::<f64>() / coarse.len() as f64;
        assert!((mf - mc).abs() < 1e-9);
    }

    #[test]
    fn trace_covers_the_hierarchy() {
        let t = mg_trace(4, &MgConfig { n: 16, cycles: 1 });
        assert!(t.validate().is_ok());
        // Footprint ≈ 2 arrays × (16³ + 8³ + 4³) cells × 8 B.
        let cells = 16 * 16 * 16 + 8 * 8 * 8 + 4 * 4 * 4;
        let expect = (2 * cells * 8) / 4096;
        let got = t.footprint_pages();
        assert!(
            got >= expect && got <= expect + 8,
            "footprint {got} vs expected ~{expect}"
        );
    }

    #[test]
    fn mg_has_poor_reuse_structure() {
        // The exclusion argument in numbers: touches per distinct page is
        // small (each level swept a handful of times per cycle).
        let t = mg_trace(4, &MgConfig { n: 32, cycles: 1 });
        let reuse = t.total_touches() as f64 / t.footprint_pages() as f64;
        assert!(
            reuse < 16.0,
            "MG streams the hierarchy with little reuse: {reuse:.1} touches/page"
        );
    }
}
