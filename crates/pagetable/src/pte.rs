//! Page table entries, in the x86 long-mode layout the Xeon Phi uses.
//!
//! The interesting part is the experimental 64 kB page encoding (paper
//! §4, Figure 5): there is no separate 64 kB leaf level. Instead the OS
//! writes 16 ordinary 4 kB PTEs — a naturally aligned, physically
//! contiguous run — and sets a *hint bit* in each of them. A core's TLB
//! then caches the whole run as a single 64 kB entry. Hardware-set
//! attributes behave unusually: the accessed/dirty bit lands in the 4 kB
//! sub-entry that was actually touched, not in the head entry, so the OS
//! must iterate all 16 sub-entries when collecting statistics.

use std::fmt;

use cmcp_arch::PhysFrame;

/// Software-visible PTE flag bits (bit positions follow x86 long mode;
/// the 64 kB hint uses one of the ignored bits, as the real extension
/// did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags(u16);

impl PteFlags {
    /// P — the translation is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// R/W — writes allowed.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// A — set by hardware on first access since last clear.
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// D — set by hardware on first write since last clear.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// PS — this PD-level entry maps a 2 MB page.
    pub const LARGE: PteFlags = PteFlags(1 << 7);
    /// The Xeon Phi 64 kB hint: cache this PTE as part of a 64 kB run.
    pub const HINT_64K: PteFlags = PteFlags(1 << 11);

    /// The empty flag set.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// Whether every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Difference (`self` minus `other`).
    #[inline]
    #[must_use]
    pub const fn difference(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        for (bit, ch) in [
            (PteFlags::PRESENT, 'P'),
            (PteFlags::WRITABLE, 'W'),
            (PteFlags::ACCESSED, 'A'),
            (PteFlags::DIRTY, 'D'),
            (PteFlags::LARGE, 'L'),
            (PteFlags::HINT_64K, 'H'),
        ] {
            s.push(if self.contains(bit) { ch } else { '-' });
        }
        f.write_str(&s)
    }
}

/// One page table entry: a frame number plus flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    frame: PhysFrame,
    flags: PteFlags,
}

impl Pte {
    /// A present entry pointing at `frame`.
    pub fn new(frame: PhysFrame, flags: PteFlags) -> Pte {
        Pte {
            frame,
            flags: flags | PteFlags::PRESENT,
        }
    }

    /// The referenced physical frame.
    #[inline]
    pub fn frame(&self) -> PhysFrame {
        self.frame
    }

    /// All flags.
    #[inline]
    pub fn flags(&self) -> PteFlags {
        self.flags
    }

    /// Whether the translation is valid.
    #[inline]
    pub fn present(&self) -> bool {
        self.flags.contains(PteFlags::PRESENT)
    }

    /// Whether writes are allowed.
    #[inline]
    pub fn writable(&self) -> bool {
        self.flags.contains(PteFlags::WRITABLE)
    }

    /// Whether hardware has recorded an access since the last clear.
    #[inline]
    pub fn accessed(&self) -> bool {
        self.flags.contains(PteFlags::ACCESSED)
    }

    /// Whether hardware has recorded a write since the last clear.
    #[inline]
    pub fn dirty(&self) -> bool {
        self.flags.contains(PteFlags::DIRTY)
    }

    /// Whether this entry carries the 64 kB hint bit.
    #[inline]
    pub fn hint_64k(&self) -> bool {
        self.flags.contains(PteFlags::HINT_64K)
    }

    /// Whether this is a 2 MB PD-level leaf.
    #[inline]
    pub fn large(&self) -> bool {
        self.flags.contains(PteFlags::LARGE)
    }

    /// Hardware behaviour on an access: set A, and D too if a write.
    #[inline]
    pub fn mark_accessed(&mut self, write: bool) {
        self.flags = self.flags | PteFlags::ACCESSED;
        if write {
            self.flags = self.flags | PteFlags::DIRTY;
        }
    }

    /// OS behaviour during an accessed-bit scan: read-and-clear A.
    /// Returns whether A was set.
    #[inline]
    pub fn test_and_clear_accessed(&mut self) -> bool {
        let was = self.accessed();
        self.flags = self.flags.difference(PteFlags::ACCESSED);
        was
    }

    /// Clears the dirty bit (after write-back). Returns whether D was set.
    #[inline]
    pub fn test_and_clear_dirty(&mut self) -> bool {
        let was = self.dirty();
        self.flags = self.flags.difference(PteFlags::DIRTY);
        was
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.frame, self.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_present() {
        let p = Pte::new(PhysFrame(9), PteFlags::WRITABLE);
        assert!(p.present());
        assert!(p.writable());
        assert!(!p.accessed());
        assert!(!p.dirty());
        assert_eq!(p.frame(), PhysFrame(9));
    }

    #[test]
    fn mark_accessed_read_vs_write() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::WRITABLE);
        p.mark_accessed(false);
        assert!(p.accessed());
        assert!(!p.dirty());
        p.mark_accessed(true);
        assert!(p.dirty());
    }

    #[test]
    fn test_and_clear_accessed_round_trip() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::empty());
        assert!(!p.test_and_clear_accessed());
        p.mark_accessed(false);
        assert!(p.test_and_clear_accessed());
        assert!(!p.accessed());
        assert!(!p.test_and_clear_accessed());
    }

    #[test]
    fn clear_dirty_preserves_accessed() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::WRITABLE);
        p.mark_accessed(true);
        assert!(p.test_and_clear_dirty());
        assert!(p.accessed());
        assert!(!p.dirty());
    }

    #[test]
    fn hint_bit_is_independent() {
        let p = Pte::new(PhysFrame(2), PteFlags::HINT_64K | PteFlags::WRITABLE);
        assert!(p.hint_64k());
        assert!(!p.large());
    }

    #[test]
    fn flags_display() {
        let p = Pte::new(PhysFrame(0), PteFlags::WRITABLE | PteFlags::HINT_64K);
        assert_eq!(p.flags().to_string(), "PW---H");
    }

    #[test]
    fn flag_set_algebra() {
        let a = PteFlags::PRESENT | PteFlags::DIRTY;
        assert!(a.contains(PteFlags::PRESENT));
        assert!(!a.contains(PteFlags::PRESENT | PteFlags::WRITABLE));
        assert_eq!(a.difference(PteFlags::DIRTY), PteFlags::PRESENT);
        assert_eq!(PteFlags::empty().union(a), a);
    }
}
