//! Page table entries, in the x86 long-mode layout the Xeon Phi uses —
//! packed into a single 64-bit word exactly as hardware stores them.
//!
//! The interesting part is the experimental 64 kB page encoding (paper
//! §4, Figure 5): there is no separate 64 kB leaf level. Instead the OS
//! writes 16 ordinary 4 kB PTEs — a naturally aligned, physically
//! contiguous run — and sets a *hint bit* in each of them. A core's TLB
//! then caches the whole run as a single 64 kB entry. Hardware-set
//! attributes behave unusually: the accessed/dirty bit lands in the 4 kB
//! sub-entry that was actually touched, not in the head entry, so the OS
//! must iterate all 16 sub-entries when collecting statistics.
//!
//! ## Bit layout
//!
//! One PTE is one `u64` (see DESIGN.md §11 for the rationale):
//!
//! | bits  | field        | meaning                                     |
//! |-------|--------------|---------------------------------------------|
//! | 0     | `P`          | present — the translation is valid          |
//! | 1     | `W`          | writable                                    |
//! | 5     | `A`          | accessed (hardware-set)                     |
//! | 6     | `D`          | dirty (hardware-set on write)               |
//! | 7     | `PS`         | 2 MB PD-level leaf                          |
//! | 9     | `Q`          | quarantined backing frame (software, ign.)  |
//! | 11    | `H`          | Xeon Phi 64 kB hint                         |
//! | 12–43 | frame        | physical 4 kB frame number (32 bits)        |
//! | 44–52 | map count    | PSPT: cores mapping the block (≤ 256)       |
//! | 53–63 | —            | reserved, must be zero                      |
//!
//! The all-zero word is the canonical non-present entry, which is what
//! lets the radix table store leaves as dense `[Pte; 512]` arrays with
//! no `Option` discriminant.

use std::fmt;

use cmcp_arch::PhysFrame;

/// Software-visible PTE flag bits (bit positions follow x86 long mode;
/// the 64 kB hint uses one of the ignored bits, as the real extension
/// did, and the quarantine marker sits in the ignored bit 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags(u16);

impl PteFlags {
    /// P — the translation is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// R/W — writes allowed.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// A — set by hardware on first access since last clear.
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// D — set by hardware on first write since last clear.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// PS — this PD-level entry maps a 2 MB page.
    pub const LARGE: PteFlags = PteFlags(1 << 7);
    /// Software marker (ignored bit 9): the backing frame was poisoned by
    /// an unrecoverable page-in error and parked in the pool quarantine.
    pub const QUARANTINE: PteFlags = PteFlags(1 << 9);
    /// The Xeon Phi 64 kB hint: cache this PTE as part of a 64 kB run.
    pub const HINT_64K: PteFlags = PteFlags(1 << 11);

    /// The empty flag set.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// All defined flag bits (what [`Pte::flags`] extracts from the word).
    pub const fn all() -> PteFlags {
        PteFlags(
            PteFlags::PRESENT.0
                | PteFlags::WRITABLE.0
                | PteFlags::ACCESSED.0
                | PteFlags::DIRTY.0
                | PteFlags::LARGE.0
                | PteFlags::QUARANTINE.0
                | PteFlags::HINT_64K.0,
        )
    }

    /// The raw bit pattern (low 12 bits of the PTE word).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Whether every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Difference (`self` minus `other`).
    #[inline]
    #[must_use]
    pub const fn difference(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        for (bit, ch) in [
            (PteFlags::PRESENT, 'P'),
            (PteFlags::WRITABLE, 'W'),
            (PteFlags::ACCESSED, 'A'),
            (PteFlags::DIRTY, 'D'),
            (PteFlags::LARGE, 'L'),
            (PteFlags::QUARANTINE, 'Q'),
            (PteFlags::HINT_64K, 'H'),
        ] {
            s.push(if self.contains(bit) { ch } else { '-' });
        }
        f.write_str(&s)
    }
}

/// First bit of the frame field.
pub const FRAME_SHIFT: u32 = 12;
/// Width of the frame field: `PhysFrame` is 32 bits.
pub const FRAME_BITS: u32 = 32;
/// First bit of the PSPT map-count field.
pub const MAP_COUNT_SHIFT: u32 = 44;
/// Width of the map-count field: counts up to `MAX_CORES` (256) mappers.
pub const MAP_COUNT_BITS: u32 = 9;

const FLAG_MASK: u64 = (1 << FRAME_SHIFT) - 1;
const FRAME_MASK: u64 = ((1 << FRAME_BITS) - 1) << FRAME_SHIFT;
const MAP_COUNT_MASK: u64 = ((1 << MAP_COUNT_BITS) - 1) << MAP_COUNT_SHIFT;

/// One page table entry: flags, frame number, and (under PSPT) the
/// block's core-map count packed into a single 64-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Pte(u64);

impl Pte {
    /// The canonical non-present entry: the all-zero word.
    pub const EMPTY: Pte = Pte(0);

    /// A present entry pointing at `frame`.
    #[inline]
    pub fn new(frame: PhysFrame, flags: PteFlags) -> Pte {
        Pte(((frame.0 as u64) << FRAME_SHIFT) | (flags.0 | PteFlags::PRESENT.0) as u64 & FLAG_MASK)
    }

    /// Reconstructs an entry from its raw word (inverse of
    /// [`Pte::to_bits`]; reserved bits are preserved verbatim).
    #[inline]
    pub const fn from_bits(bits: u64) -> Pte {
        Pte(bits)
    }

    /// The raw 64-bit word exactly as the hardware would store it.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// The referenced physical frame.
    #[inline]
    pub fn frame(&self) -> PhysFrame {
        PhysFrame(((self.0 & FRAME_MASK) >> FRAME_SHIFT) as u32)
    }

    /// All flags.
    #[inline]
    pub fn flags(&self) -> PteFlags {
        PteFlags((self.0 & FLAG_MASK) as u16 & PteFlags::all().0)
    }

    /// PSPT bookkeeping: number of cores currently mapping this block
    /// (meaningful on the head entry only; 0 outside PSPT).
    #[inline]
    pub fn map_count(&self) -> usize {
        ((self.0 & MAP_COUNT_MASK) >> MAP_COUNT_SHIFT) as usize
    }

    /// Overwrites the packed map count (saturating at the field width —
    /// 511, above `MAX_CORES`, so saturation never triggers in practice).
    #[inline]
    pub fn set_map_count(&mut self, count: usize) {
        let c = (count as u64).min((1 << MAP_COUNT_BITS) - 1);
        self.0 = (self.0 & !MAP_COUNT_MASK) | (c << MAP_COUNT_SHIFT);
    }

    #[inline]
    fn flag(&self, f: PteFlags) -> bool {
        self.0 & f.0 as u64 != 0
    }

    /// Whether the translation is valid.
    #[inline]
    pub fn present(&self) -> bool {
        self.flag(PteFlags::PRESENT)
    }

    /// Whether writes are allowed.
    #[inline]
    pub fn writable(&self) -> bool {
        self.flag(PteFlags::WRITABLE)
    }

    /// Whether hardware has recorded an access since the last clear.
    #[inline]
    pub fn accessed(&self) -> bool {
        self.flag(PteFlags::ACCESSED)
    }

    /// Whether hardware has recorded a write since the last clear.
    #[inline]
    pub fn dirty(&self) -> bool {
        self.flag(PteFlags::DIRTY)
    }

    /// Whether this entry carries the 64 kB hint bit.
    #[inline]
    pub fn hint_64k(&self) -> bool {
        self.flag(PteFlags::HINT_64K)
    }

    /// Whether this is a 2 MB PD-level leaf.
    #[inline]
    pub fn large(&self) -> bool {
        self.flag(PteFlags::LARGE)
    }

    /// Whether the backing frame has been marked quarantined.
    #[inline]
    pub fn quarantined(&self) -> bool {
        self.flag(PteFlags::QUARANTINE)
    }

    /// Sets the software quarantine marker.
    #[inline]
    pub fn set_quarantined(&mut self) {
        self.0 |= PteFlags::QUARANTINE.0 as u64;
    }

    /// Sets the 64 kB hint bit (used when sixteen 4 kB entries are
    /// merged into one 64 kB run).
    #[inline]
    pub fn set_hint_64k(&mut self) {
        self.0 |= PteFlags::HINT_64K.0 as u64;
    }

    /// Clears the 64 kB hint bit (used when a 64 kB run is split back
    /// into independent 4 kB mappings).
    #[inline]
    pub fn clear_hint_64k(&mut self) {
        self.0 &= !(PteFlags::HINT_64K.0 as u64);
    }

    /// Hardware behaviour on an access: set A, and D too if a write.
    #[inline]
    pub fn mark_accessed(&mut self, write: bool) {
        self.0 |= PteFlags::ACCESSED.0 as u64;
        if write {
            self.0 |= PteFlags::DIRTY.0 as u64;
        }
    }

    /// OS behaviour during an accessed-bit scan: read-and-clear A.
    /// Returns whether A was set.
    #[inline]
    pub fn test_and_clear_accessed(&mut self) -> bool {
        let was = self.accessed();
        self.0 &= !(PteFlags::ACCESSED.0 as u64);
        was
    }

    /// Clears the dirty bit (after write-back). Returns whether D was set.
    #[inline]
    pub fn test_and_clear_dirty(&mut self) -> bool {
        let was = self.dirty();
        self.0 &= !(PteFlags::DIRTY.0 as u64);
        was
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.frame(), self.flags())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_present() {
        let p = Pte::new(PhysFrame(9), PteFlags::WRITABLE);
        assert!(p.present());
        assert!(p.writable());
        assert!(!p.accessed());
        assert!(!p.dirty());
        assert_eq!(p.frame(), PhysFrame(9));
    }

    #[test]
    fn empty_word_is_not_present() {
        assert!(!Pte::EMPTY.present());
        assert_eq!(Pte::EMPTY.to_bits(), 0);
        assert_eq!(Pte::default(), Pte::EMPTY);
    }

    #[test]
    fn mark_accessed_read_vs_write() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::WRITABLE);
        p.mark_accessed(false);
        assert!(p.accessed());
        assert!(!p.dirty());
        p.mark_accessed(true);
        assert!(p.dirty());
    }

    #[test]
    fn test_and_clear_accessed_round_trip() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::empty());
        assert!(!p.test_and_clear_accessed());
        p.mark_accessed(false);
        assert!(p.test_and_clear_accessed());
        assert!(!p.accessed());
        assert!(!p.test_and_clear_accessed());
    }

    #[test]
    fn clear_dirty_preserves_accessed() {
        let mut p = Pte::new(PhysFrame(1), PteFlags::WRITABLE);
        p.mark_accessed(true);
        assert!(p.test_and_clear_dirty());
        assert!(p.accessed());
        assert!(!p.dirty());
    }

    #[test]
    fn hint_bit_is_independent() {
        let p = Pte::new(PhysFrame(2), PteFlags::HINT_64K | PteFlags::WRITABLE);
        assert!(p.hint_64k());
        assert!(!p.large());
    }

    #[test]
    fn flags_display() {
        let p = Pte::new(PhysFrame(0), PteFlags::WRITABLE | PteFlags::HINT_64K);
        assert_eq!(p.flags().to_string(), "PW----H");
    }

    #[test]
    fn flag_set_algebra() {
        let a = PteFlags::PRESENT | PteFlags::DIRTY;
        assert!(a.contains(PteFlags::PRESENT));
        assert!(!a.contains(PteFlags::PRESENT | PteFlags::WRITABLE));
        assert_eq!(a.difference(PteFlags::DIRTY), PteFlags::PRESENT);
        assert_eq!(PteFlags::empty().union(a), a);
    }

    #[test]
    fn map_count_is_isolated_from_flags_and_frame() {
        let mut p = Pte::new(PhysFrame(u32::MAX), PteFlags::all());
        assert_eq!(p.map_count(), 0);
        p.set_map_count(256);
        assert_eq!(p.map_count(), 256);
        assert_eq!(p.frame(), PhysFrame(u32::MAX));
        assert_eq!(p.flags(), PteFlags::all());
        p.set_map_count(0);
        assert_eq!(p.map_count(), 0);
        assert_eq!(p.frame(), PhysFrame(u32::MAX));
    }

    #[test]
    fn map_count_saturates_at_field_width() {
        let mut p = Pte::new(PhysFrame(0), PteFlags::empty());
        p.set_map_count(usize::MAX);
        assert_eq!(p.map_count(), 511);
    }

    /// Pins the 64-bit field layout with literal words: an accidental
    /// reshuffle of any field fails here even if the accessors stay
    /// self-consistent.
    #[test]
    fn word_layout_is_pinned() {
        // Flags occupy the exact long-mode bit positions.
        assert_eq!(PteFlags::PRESENT.bits(), 0x001);
        assert_eq!(PteFlags::WRITABLE.bits(), 0x002);
        assert_eq!(PteFlags::ACCESSED.bits(), 0x020);
        assert_eq!(PteFlags::DIRTY.bits(), 0x040);
        assert_eq!(PteFlags::LARGE.bits(), 0x080);
        assert_eq!(PteFlags::QUARANTINE.bits(), 0x200);
        assert_eq!(PteFlags::HINT_64K.bits(), 0x800);
        // Field geometry.
        assert_eq!(FRAME_SHIFT, 12);
        assert_eq!(FRAME_BITS, 32);
        assert_eq!(MAP_COUNT_SHIFT, 44);
        assert_eq!(MAP_COUNT_BITS, 9);
        // Whole words, spelled out.
        let p = Pte::new(PhysFrame(0xABCD_1234), PteFlags::WRITABLE);
        assert_eq!(p.to_bits(), 0x0000_0ABC_D123_4003);
        let mut q = Pte::new(PhysFrame(1), PteFlags::DIRTY | PteFlags::ACCESSED);
        q.set_map_count(3);
        assert_eq!(q.to_bits(), 0x0000_3000_0000_1061);
        let r = Pte::from_bits(0x0000_1000_0000_2801);
        assert_eq!(r.frame(), PhysFrame(2));
        assert!(r.hint_64k());
        assert_eq!(r.map_count(), 1);
    }

    proptest! {
        /// Round trip: any combination of flags, frame, and map count
        /// encodes into a word that decodes back to identical fields,
        /// and `from_bits(to_bits(x)) == x` exactly.
        #[test]
        fn packed_word_round_trips(
            frame in any::<u32>(),
            writable in any::<bool>(),
            accessed in any::<bool>(),
            dirty in any::<bool>(),
            large in any::<bool>(),
            quarantine in any::<bool>(),
            hint in any::<bool>(),
            count in 0usize..512,
        ) {
            let mut flags = PteFlags::empty();
            for (on, f) in [
                (writable, PteFlags::WRITABLE),
                (accessed, PteFlags::ACCESSED),
                (dirty, PteFlags::DIRTY),
                (large, PteFlags::LARGE),
                (quarantine, PteFlags::QUARANTINE),
                (hint, PteFlags::HINT_64K),
            ] {
                if on {
                    flags = flags | f;
                }
            }
            let mut p = Pte::new(PhysFrame(frame), flags);
            p.set_map_count(count);
            prop_assert_eq!(p.frame(), PhysFrame(frame));
            prop_assert_eq!(p.flags(), flags | PteFlags::PRESENT);
            prop_assert_eq!(p.map_count(), count);
            prop_assert_eq!(p.writable(), writable);
            prop_assert_eq!(p.accessed(), accessed);
            prop_assert_eq!(p.dirty(), dirty);
            prop_assert_eq!(p.large(), large);
            prop_assert_eq!(p.quarantined(), quarantine);
            prop_assert_eq!(p.hint_64k(), hint);
            let decoded = Pte::from_bits(p.to_bits());
            prop_assert_eq!(decoded, p);
            // No field leaks outside its mask: clearing the count
            // restores the count-free word bit for bit.
            let mut stripped = decoded;
            stripped.set_map_count(0);
            let mut bare = Pte::new(PhysFrame(frame), flags);
            bare.set_map_count(0);
            prop_assert_eq!(stripped.to_bits(), bare.to_bits());
        }
    }
}
