//! Traditional shared page tables: the baseline PSPT is measured against.
//!
//! All cores in the address space translate through one table tree. Two
//! consequences, both central to the paper's Figure 7:
//!
//! 1. When a mapping is torn down, the kernel has no idea which cores
//!    cached the translation, so it must broadcast shootdown IPIs to
//!    *every* core running the application.
//! 2. Every table mutation funnels through an address-space-wide lock
//!    (modeled in virtual time by the kernel; the `RwLock` here only
//!    keeps the simulation itself memory-safe).

use parking_lot::RwLock;

use cmcp_arch::{CoreId, CoreSet, PageSize, PhysFrame, VirtPage};

use crate::pte::PteFlags;
use crate::scheme::{MapOutcome, ScanOutcome, SchemeKind, TableScheme, Translation, UnmapOutcome};
use crate::table::{MapError, PageTable};

/// The shared-table scheme.
pub struct RegularTables {
    table: RwLock<PageTable>,
    cores: CoreSet,
}

impl RegularTables {
    /// A shared table for an address space spanning cores `0..n_cores`.
    pub fn new(n_cores: usize) -> RegularTables {
        RegularTables {
            table: RwLock::new(PageTable::new()),
            cores: CoreSet::first_n(n_cores),
        }
    }

    /// Total mapped 4 kB pages.
    pub fn mapped_pages_4k(&self) -> usize {
        self.table.read().mapped_pages_4k()
    }
}

impl TableScheme for RegularTables {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Regular
    }

    fn active_cores(&self) -> CoreSet {
        self.cores
    }

    fn translate(&self, _core: CoreId, page: VirtPage) -> Option<Translation> {
        self.table.read().translate(page).map(|t| Translation {
            frame: t.frame,
            size: t.size,
            writable: t.writable,
        })
    }

    fn mark_accessed(&self, _core: CoreId, page: VirtPage, write: bool) {
        self.table.write().mark_accessed(page, write);
    }

    fn map(
        &self,
        _core: CoreId,
        head: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        writable: bool,
    ) -> Result<MapOutcome, MapError> {
        let flags = if writable {
            PteFlags::WRITABLE
        } else {
            PteFlags::empty()
        };
        self.table.write().map(head, frame, size, flags)?;
        Ok(MapOutcome::Fresh)
    }

    fn unmap_all(&self, head: VirtPage, size: PageSize) -> Option<UnmapOutcome> {
        let pte = self.table.write().unmap(head, size)?;
        Some(UnmapOutcome {
            // Centralized bookkeeping: every core may have cached it.
            mappers: self.cores,
            dirty: pte.dirty(),
            accessed: pte.accessed(),
            ptes_removed: match size {
                PageSize::M2 => 1,
                _ => size.pages_4k(),
            },
        })
    }

    fn mapping_cores(&self, _head: VirtPage) -> CoreSet {
        self.cores
    }

    fn split_block(&self, head: VirtPage, size: PageSize) -> Option<PageSize> {
        let child = size.split_child()?;
        if self.table.write().split(head, size) {
            Some(child)
        } else {
            None
        }
    }

    fn test_and_clear_accessed(&self, head: VirtPage, size: PageSize) -> ScanOutcome {
        let (accessed, examined) = self.table.write().test_and_clear_accessed_block(head, size);
        ScanOutcome {
            accessed,
            // A cleared bit must be followed by a broadcast shootdown.
            invalidate: if accessed {
                self.cores
            } else {
                CoreSet::empty()
            },
            ptes_examined: examined,
        }
    }

    fn block_dirty(&self, head: VirtPage, size: PageSize) -> bool {
        self.table.write().block_dirty(head, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_is_core_independent() {
        let t = RegularTables::new(4);
        t.map(CoreId(0), VirtPage(10), PhysFrame(3), PageSize::K4, true)
            .unwrap();
        for c in 0..4 {
            let tr = t.translate(CoreId(c), VirtPage(10)).unwrap();
            assert_eq!(tr.frame, PhysFrame(3));
        }
    }

    #[test]
    fn unmap_reports_all_cores_as_mappers() {
        let t = RegularTables::new(8);
        t.map(CoreId(2), VirtPage(10), PhysFrame(3), PageSize::K4, true)
            .unwrap();
        let out = t.unmap_all(VirtPage(10), PageSize::K4).unwrap();
        assert_eq!(out.mappers.count(), 8, "regular PT must broadcast");
        assert!(!out.dirty);
    }

    #[test]
    fn dirty_tracking_via_mark_accessed() {
        let t = RegularTables::new(2);
        t.map(CoreId(0), VirtPage(5), PhysFrame(1), PageSize::K4, true)
            .unwrap();
        t.mark_accessed(CoreId(1), VirtPage(5), true);
        assert!(t.block_dirty(VirtPage(5), PageSize::K4));
        let out = t.unmap_all(VirtPage(5), PageSize::K4).unwrap();
        assert!(out.dirty);
        assert!(out.accessed);
    }

    #[test]
    fn scan_broadcasts_only_when_bit_was_set() {
        let t = RegularTables::new(4);
        t.map(CoreId(0), VirtPage(5), PhysFrame(1), PageSize::K4, true)
            .unwrap();
        let s = t.test_and_clear_accessed(VirtPage(5), PageSize::K4);
        assert!(!s.accessed);
        assert!(s.invalidate.is_empty());
        t.mark_accessed(CoreId(3), VirtPage(5), false);
        let s = t.test_and_clear_accessed(VirtPage(5), PageSize::K4);
        assert!(s.accessed);
        assert_eq!(s.invalidate.count(), 4);
    }

    #[test]
    fn double_map_is_rejected() {
        let t = RegularTables::new(2);
        t.map(CoreId(0), VirtPage(5), PhysFrame(1), PageSize::K4, true)
            .unwrap();
        assert_eq!(
            t.map(CoreId(1), VirtPage(5), PhysFrame(1), PageSize::K4, true),
            Err(MapError::AlreadyMapped)
        );
    }
}
