//! # cmcp-pagetable — page tables for the CMCP reproduction
//!
//! Software reimplementation of the address-translation structures the
//! paper manipulates:
//!
//! * [`pte`] — x86-long-mode-style page table entries, including the Xeon
//!   Phi's experimental **64 kB page** encoding: a large mapping is built
//!   from 16 consecutive 4 kB PTEs carrying a hint bit, and the hardware
//!   sets accessed/dirty in whichever 4 kB sub-entry was touched (so the
//!   OS must iterate all 16 to collect statistics — paper §4).
//! * [`table`] — a 4-level radix page table (9+9+9+9 bit indexing over a
//!   36-bit virtual page number), with 2 MB leaves at the PD level and
//!   64 kB mappings as hint-bit PTE runs at the PT level.
//! * [`regular`] — the traditional shared table: every core translates
//!   through the same tree, so an unmap must broadcast TLB shootdowns to
//!   *all* cores and every update funnels through one address-space lock.
//! * [`pspt`] — per-core Partially Separated Page Tables: each core owns
//!   a private table for the computation area; the kernel therefore knows
//!   exactly which cores map every page ([`pspt::Pspt::mapping_cores`]) —
//!   the auxiliary knowledge CMCP's priority is built from.
//! * [`scheme`] — the [`scheme::TableScheme`] trait that lets the kernel
//!   switch between regular tables and PSPT per experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pspt;
pub mod pte;
pub mod regular;
pub mod scheme;
pub mod table;

pub use pspt::Pspt;
pub use pte::{Pte, PteFlags};
pub use regular::RegularTables;
pub use scheme::{MapOutcome, TableScheme, Translation, UnmapOutcome};
pub use table::PageTable;
