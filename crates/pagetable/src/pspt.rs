//! Per-core Partially Separated Page Tables (PSPT), the paper's earlier
//! proposal (CCGrid'13) that CMCP builds on.
//!
//! Each core owns a private page table for the computation area. A
//! faulting core first consults its siblings and copies an existing PTE
//! if the block is already resident; an unmap must visit exactly the
//! tables that map the block. The payoffs:
//!
//! * **Precise shootdowns** — only cores holding a valid PTE are sent
//!   invalidation IPIs (most pages are mapped by one or two cores in the
//!   paper's Figure 6, versus a broadcast for regular tables).
//! * **Fine-grained locking** — per-core locks instead of one
//!   address-space lock.
//! * **Free usage statistics** — the number of mapping cores per page is
//!   known without touching accessed bits, which is exactly the signal
//!   the CMCP replacement policy consumes.
//!
//! Alongside the per-core radix tables, PSPT keeps a sharded *core-map
//! directory* from block head page to [`CoreSet`]. The paper derives the
//! same information by walking per-core tables; the directory is the
//! constant-time equivalent and is kept strictly consistent with the
//! tables (asserted in tests and by `debug_assert`s here).

use parking_lot::{Mutex, RwLock};

use cmcp_arch::{CoreId, CoreSet, FxHashMap, PageSize, PhysFrame, VirtPage};

use crate::pte::PteFlags;
use crate::scheme::{MapOutcome, ScanOutcome, SchemeKind, TableScheme, Translation, UnmapOutcome};
use crate::table::{MapError, PageTable};

const DIR_SHARDS: usize = 64;

/// The per-core partially separated table scheme.
pub struct Pspt {
    /// One private table per core, individually locked — the fine
    /// granularity is the point.
    tables: Vec<RwLock<PageTable>>,
    cores: CoreSet,
    /// Sharded directory: block head page → cores mapping it.
    directory: Vec<Mutex<FxHashMap<u64, CoreSet>>>,
}

impl Pspt {
    /// PSPT for an address space spanning cores `0..n_cores`.
    pub fn new(n_cores: usize) -> Pspt {
        Pspt {
            tables: (0..n_cores)
                .map(|_| RwLock::new(PageTable::new()))
                .collect(),
            cores: CoreSet::first_n(n_cores),
            directory: (0..DIR_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, head: VirtPage) -> &Mutex<FxHashMap<u64, CoreSet>> {
        // Multiply-shift hash keeps neighbouring blocks on different
        // shards without pulling in a hasher crate.
        let h = (head.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize;
        &self.directory[h % DIR_SHARDS]
    }

    /// Number of distinct resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.directory.iter().map(|s| s.lock().len()).sum()
    }

    /// Histogram of blocks by number of mapping cores: index `k` counts
    /// blocks mapped by exactly `k+1` cores. This regenerates the paper's
    /// Figure 6 directly from PSPT bookkeeping.
    pub fn sharing_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.tables.len()];
        for shard in &self.directory {
            for set in shard.lock().values() {
                let c = set.count();
                if c > 0 {
                    hist[c - 1] += 1;
                }
            }
        }
        hist
    }
}

impl TableScheme for Pspt {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Pspt
    }

    fn active_cores(&self) -> CoreSet {
        self.cores
    }

    fn translate(&self, core: CoreId, page: VirtPage) -> Option<Translation> {
        self.tables[core.index()]
            .read()
            .translate(page)
            .map(|t| Translation {
                frame: t.frame,
                size: t.size,
                writable: t.writable,
            })
    }

    fn mark_accessed(&self, core: CoreId, page: VirtPage, write: bool) {
        self.tables[core.index()].write().mark_accessed(page, write);
    }

    fn map(
        &self,
        core: CoreId,
        head: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        writable: bool,
    ) -> Result<MapOutcome, MapError> {
        let flags = if writable {
            PteFlags::WRITABLE
        } else {
            PteFlags::empty()
        };
        // Hold the directory shard across the table update so that a
        // concurrent unmap_all of the same block cannot interleave.
        let mut dir = self.shard(head).lock();
        let entry = dir.entry(head.0).or_insert_with(CoreSet::empty);
        let existing = *entry;
        debug_assert!(
            !existing.contains(core),
            "{core} faulted on a block it already maps ({head})"
        );
        let count = existing.count() + 1;
        // Fold the block's core-map count into the head PTE word in the
        // same walk that installs it — the paper's "free usage
        // statistics" live in the entry the walk already touched, so
        // CMCP's signal costs no extra lookup (head entry only;
        // sub-entries keep count 0).
        self.tables[core.index()]
            .write()
            .map_counted(head, frame, size, flags, count)?;
        entry.insert(core);
        if existing.is_empty() {
            Ok(MapOutcome::Fresh)
        } else {
            // The faulting core consulted sibling tables to find a valid
            // PTE to copy; probing stops at the first mapper, so charge
            // the expected scan length (half the sibling count, min 1).
            Ok(MapOutcome::Copied {
                probes: existing.count(),
                map_count: count,
            })
        }
    }

    fn unmap_all(&self, head: VirtPage, size: PageSize) -> Option<UnmapOutcome> {
        let mut dir = self.shard(head).lock();
        let mappers = dir.remove(&head.0)?;
        let mut dirty = false;
        let mut accessed = false;
        let mut removed = 0;
        for core in mappers.iter() {
            if let Some(pte) = self.tables[core.index()].write().unmap(head, size) {
                dirty |= pte.dirty();
                accessed |= pte.accessed();
                removed += match size {
                    PageSize::M2 => 1,
                    _ => size.pages_4k(),
                };
            } else {
                debug_assert!(
                    false,
                    "directory said {core} maps {head} but table disagrees"
                );
            }
        }
        Some(UnmapOutcome {
            mappers,
            dirty,
            accessed,
            ptes_removed: removed,
        })
    }

    fn mapping_cores(&self, head: VirtPage) -> CoreSet {
        self.shard(head)
            .lock()
            .get(&head.0)
            .copied()
            .unwrap_or_else(CoreSet::empty)
    }

    fn split_block(&self, head: VirtPage, size: PageSize) -> Option<PageSize> {
        let child = size.split_child()?;
        // Take the block out of the directory first (shard lock held so
        // no map/unmap of the whole block interleaves), rewrite every
        // mapper's table, then register the children under the same
        // core set — their heads may hash to different shards, which is
        // fine: the engine serializes split against child operations.
        let mappers = {
            let mut dir = self.shard(head).lock();
            let set = *dir.get(&head.0)?;
            if set.is_empty() {
                return None;
            }
            dir.remove(&head.0);
            set
        };
        for core in mappers.iter() {
            let done = self.tables[core.index()].write().split(head, size);
            debug_assert!(done, "directory said {core} maps {head} but split failed");
        }
        let step = child.pages_4k() as u64;
        let children = size.pages_4k() / child.pages_4k();
        for k in 0..children as u64 {
            let ch = head.add(k * step);
            self.shard(ch).lock().insert(ch.0, mappers);
        }
        Some(child)
    }

    fn test_and_clear_accessed(&self, head: VirtPage, size: PageSize) -> ScanOutcome {
        let mappers = self.mapping_cores(head);
        let mut any = false;
        let mut examined = 0;
        let mut invalidate = CoreSet::empty();
        for core in mappers.iter() {
            let (acc, n) = self.tables[core.index()]
                .write()
                .test_and_clear_accessed_block(head, size);
            examined += n;
            if acc {
                any = true;
                // Only the cores whose PTE actually had A set must drop
                // their cached translation.
                invalidate.insert(core);
            }
        }
        ScanOutcome {
            accessed: any,
            invalidate,
            ptes_examined: examined,
        }
    }

    fn block_dirty(&self, head: VirtPage, size: PageSize) -> bool {
        self.mapping_cores(head)
            .iter()
            .any(|core| self.tables[core.index()].write().block_dirty(head, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_tables_are_really_private() {
        let p = Pspt::new(4);
        p.map(CoreId(0), VirtPage(10), PhysFrame(3), PageSize::K4, true)
            .unwrap();
        assert!(p.translate(CoreId(0), VirtPage(10)).is_some());
        assert!(
            p.translate(CoreId(1), VirtPage(10)).is_none(),
            "core1 has no PTE yet"
        );
    }

    #[test]
    fn second_mapper_copies_and_probes() {
        let p = Pspt::new(4);
        assert_eq!(
            p.map(CoreId(0), VirtPage(10), PhysFrame(3), PageSize::K4, true)
                .unwrap(),
            MapOutcome::Fresh
        );
        assert_eq!(
            p.map(CoreId(2), VirtPage(10), PhysFrame(3), PageSize::K4, true)
                .unwrap(),
            MapOutcome::Copied {
                probes: 1,
                map_count: 2
            }
        );
        assert_eq!(p.mapping_cores(VirtPage(10)).count(), 2);
    }

    #[test]
    fn map_count_is_stamped_into_the_head_pte() {
        let p = Pspt::new(4);
        for (i, c) in [0u16, 1, 3].iter().enumerate() {
            p.map(
                CoreId(*c),
                VirtPage(0x40),
                PhysFrame(0x40),
                PageSize::K64,
                true,
            )
            .unwrap();
            // The freshly faulting core's head PTE carries the count at
            // map time; sub-entries stay at 0.
            let (head_count, sub_count) = {
                let mut t = p.tables[CoreId(*c).index()].write();
                (
                    t.with_pte(VirtPage(0x40), |pte| pte.map_count()).unwrap(),
                    t.with_pte(VirtPage(0x41), |pte| pte.map_count()).unwrap(),
                )
            };
            assert_eq!(head_count, i + 1);
            assert_eq!(sub_count, 0);
        }
    }

    #[test]
    fn mapping_cores_is_precise() {
        let p = Pspt::new(8);
        for c in [0u16, 3, 7] {
            p.map(CoreId(c), VirtPage(42), PhysFrame(9), PageSize::K4, true)
                .unwrap();
        }
        let m = p.mapping_cores(VirtPage(42));
        assert_eq!(m.count(), 3);
        assert!(m.contains(CoreId(3)));
        assert!(!m.contains(CoreId(1)));
    }

    #[test]
    fn unmap_all_visits_only_mappers_and_aggregates_dirty() {
        let p = Pspt::new(8);
        p.map(CoreId(1), VirtPage(42), PhysFrame(9), PageSize::K4, true)
            .unwrap();
        p.map(CoreId(5), VirtPage(42), PhysFrame(9), PageSize::K4, true)
            .unwrap();
        p.mark_accessed(CoreId(5), VirtPage(42), true); // dirty on core5 only
        let out = p.unmap_all(VirtPage(42), PageSize::K4).unwrap();
        assert_eq!(out.mappers.count(), 2);
        assert!(out.dirty, "dirty on any core's PTE forces write-back");
        assert!(p.translate(CoreId(1), VirtPage(42)).is_none());
        assert!(p.translate(CoreId(5), VirtPage(42)).is_none());
        assert_eq!(p.mapping_cores(VirtPage(42)).count(), 0);
        assert_eq!(p.resident_blocks(), 0);
    }

    #[test]
    fn unmap_missing_returns_none() {
        let p = Pspt::new(2);
        assert!(p.unmap_all(VirtPage(1), PageSize::K4).is_none());
    }

    #[test]
    fn scan_invalidates_only_cores_with_set_bit() {
        let p = Pspt::new(4);
        for c in 0..3u16 {
            p.map(CoreId(c), VirtPage(7), PhysFrame(1), PageSize::K4, true)
                .unwrap();
        }
        p.mark_accessed(CoreId(0), VirtPage(7), false);
        p.mark_accessed(CoreId(2), VirtPage(7), false);
        let s = p.test_and_clear_accessed(VirtPage(7), PageSize::K4);
        assert!(s.accessed);
        assert_eq!(s.ptes_examined, 3);
        assert!(s.invalidate.contains(CoreId(0)));
        assert!(
            !s.invalidate.contains(CoreId(1)),
            "core1 never touched the page"
        );
        assert!(s.invalidate.contains(CoreId(2)));
        // Second scan: bits were cleared.
        let s2 = p.test_and_clear_accessed(VirtPage(7), PageSize::K4);
        assert!(!s2.accessed);
        assert!(s2.invalidate.is_empty());
    }

    #[test]
    fn sharing_histogram_matches_figure6_semantics() {
        let p = Pspt::new(4);
        // Two private blocks, one shared by two cores, one by all four.
        p.map(CoreId(0), VirtPage(0), PhysFrame(0), PageSize::K4, true)
            .unwrap();
        p.map(CoreId(1), VirtPage(1), PhysFrame(1), PageSize::K4, true)
            .unwrap();
        p.map(CoreId(0), VirtPage(2), PhysFrame(2), PageSize::K4, true)
            .unwrap();
        p.map(CoreId(1), VirtPage(2), PhysFrame(2), PageSize::K4, true)
            .unwrap();
        for c in 0..4u16 {
            p.map(CoreId(c), VirtPage(3), PhysFrame(3), PageSize::K4, true)
                .unwrap();
        }
        assert_eq!(p.sharing_histogram(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn works_with_64k_blocks() {
        let p = Pspt::new(2);
        p.map(
            CoreId(0),
            VirtPage(0x40),
            PhysFrame(0x40),
            PageSize::K64,
            true,
        )
        .unwrap();
        p.map(
            CoreId(1),
            VirtPage(0x40),
            PhysFrame(0x40),
            PageSize::K64,
            true,
        )
        .unwrap();
        p.mark_accessed(CoreId(1), VirtPage(0x4a), true);
        assert!(p.block_dirty(VirtPage(0x40), PageSize::K64));
        let out = p.unmap_all(VirtPage(0x40), PageSize::K64).unwrap();
        assert_eq!(out.ptes_removed, 32, "16 sub-entries on each of 2 cores");
        assert!(out.dirty);
    }

    #[test]
    fn concurrent_mappers_stay_consistent() {
        use std::sync::Arc;
        let p = Arc::new(Pspt::new(8));
        let handles: Vec<_> = (0..8u16)
            .map(|c| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for b in 0..64u64 {
                        p.map(
                            CoreId(c),
                            VirtPage(b),
                            PhysFrame(b as u32),
                            PageSize::K4,
                            true,
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for b in 0..64u64 {
            assert_eq!(p.mapping_cores(VirtPage(b)).count(), 8, "block {b}");
        }
        assert_eq!(p.resident_blocks(), 64);
        assert_eq!(p.sharing_histogram()[7], 64);
    }
}
