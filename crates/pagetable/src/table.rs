//! A single 4-level radix page table, arena-allocated.
//!
//! Structure mirrors x86 long mode on the Xeon Phi: four levels of
//! 512-entry tables indexed by 9-bit slices of the 36-bit virtual page
//! number. Mappings come in the three sizes the Phi supports:
//!
//! * **4 kB** — one PTE at the bottom (PT) level;
//! * **64 kB** — sixteen consecutive PT-level PTEs, each carrying the
//!   [`PteFlags::HINT_64K`] bit, head entry 64 kB-aligned, frames
//!   physically contiguous (paper §4, Figure 5);
//! * **2 MB** — a PD-level leaf with [`PteFlags::LARGE`].
//!
//! Hardware attribute semantics follow the paper's description: on a
//! 64 kB mapping, the accessed/dirty bit is set in the 4 kB *sub-entry*
//! that was touched, so OS-level statistics collection must iterate all
//! 16 sub-entries ([`PageTable::test_and_clear_accessed_block`]) — but
//! those sixteen PTEs are consecutive words of one dense leaf, so the
//! scan is one slice pass, not sixteen tree walks.
//!
//! ## Arena layout
//!
//! Nodes live in three typed arenas owned by the table — interior
//! directories (`[u32; 512]` handle arrays), bottom-level leaves
//! (`[Pte; 512]` plus a live count), and 2 MB leaf PTEs — and refer to
//! each other by 32-bit *handles* (a 2-bit node tag plus an arena
//! index; 0 is the empty slot). A page walk therefore touches four
//! dense, contiguously allocated arrays instead of chasing per-node
//! `Box` pointers, and a PTE is exactly the 8-byte word hardware would
//! store, with no `Option` discriminant (the all-zero word is
//! non-present).
//!
//! Lifetime rules (DESIGN.md §11): directories are never freed — the
//! directory working set is bounded by the address-space shape and
//! reclaiming interior nodes buys nothing. Leaf page tables are
//! recycled through a free list only when a 2 MB mapping replaces an
//! empty leftover PT (as a kernel reclaims before installing a PSE
//! mapping); 2 MB leaf slots are recycled on every 2 MB unmap. Handles
//! are private to the table, so no stale handle can outlive the node it
//! names.

use std::fmt;

use cmcp_arch::{PageSize, PhysFrame, VirtPage};

use crate::pte::{Pte, PteFlags};

const FANOUT: usize = 512;
/// Virtual page numbers are 36 bits (48-bit virtual addresses).
const VPN_BITS: u32 = 36;

/// Arena handle: 2-bit node tag in the top bits, arena index below.
/// The all-zero handle (tag [`TAG_NONE`]) is the empty slot.
const TAG_SHIFT: u32 = 30;
const IDX_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_NONE: u32 = 0;
const TAG_DIR: u32 = 1;
const TAG_PT: u32 = 2;
const TAG_2M: u32 = 3;

#[inline]
fn handle(tag: u32, index: usize) -> u32 {
    debug_assert!(index as u32 <= IDX_MASK);
    (tag << TAG_SHIFT) | index as u32
}

#[inline]
fn tag_of(h: u32) -> u32 {
    h >> TAG_SHIFT
}

#[inline]
fn index_of(h: u32) -> usize {
    (h & IDX_MASK) as usize
}

/// Why a `map` call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is not naturally aligned for the requested size.
    UnalignedVirt,
    /// The physical frame is not naturally aligned for the requested size.
    UnalignedPhys,
    /// Some 4 kB page in the requested range is already mapped.
    AlreadyMapped,
    /// The virtual page number exceeds the 36-bit addressable range.
    OutOfRange,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnalignedVirt => write!(f, "virtual page not aligned for page size"),
            MapError::UnalignedPhys => write!(f, "physical frame not aligned for page size"),
            MapError::AlreadyMapped => write!(f, "range already mapped"),
            MapError::OutOfRange => write!(f, "virtual page number out of range"),
        }
    }
}

impl std::error::Error for MapError {}

/// Result of a translation: the 4 kB frame backing the queried page and
/// the size class of the mapping it came from (what the TLB caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableTranslation {
    /// Frame backing the queried 4 kB page.
    pub frame: PhysFrame,
    /// Size class of the enclosing mapping.
    pub size: PageSize,
    /// Whether the mapping permits writes.
    pub writable: bool,
}

/// Bottom-level page table: 512 packed PTE words plus a live-entry
/// count, stored inline so the leaf arena is one contiguous run.
struct LeafTable {
    ptes: [Pte; FANOUT],
    live: u32,
}

impl LeafTable {
    fn new() -> LeafTable {
        LeafTable {
            ptes: [Pte::EMPTY; FANOUT],
            live: 0,
        }
    }
}

/// One address space's (or, under PSPT, one core's) page table.
///
/// Not internally synchronized: callers wrap it in whatever locking the
/// table scheme prescribes — that locking *is* part of what the paper
/// measures (coarse address-space locks for regular tables vs per-core
/// locks for PSPT).
pub struct PageTable {
    /// Interior directories; `dirs[0]` is the PML4 root. Never freed.
    dirs: Vec<[u32; FANOUT]>,
    /// Bottom-level page tables, recycled through `free_pt`.
    leaves: Vec<LeafTable>,
    /// 2 MB PD-level leaf PTEs, recycled through `free_2m`.
    leaf2m: Vec<Pte>,
    free_pt: Vec<u32>,
    free_2m: Vec<u32>,
    mapped_4k: usize,
}

impl Default for PageTable {
    fn default() -> PageTable {
        PageTable::new()
    }
}

impl PageTable {
    /// An empty table.
    pub fn new() -> PageTable {
        PageTable {
            dirs: vec![[TAG_NONE; FANOUT]],
            leaves: Vec::new(),
            leaf2m: Vec::new(),
            free_pt: Vec::new(),
            free_2m: Vec::new(),
            mapped_4k: 0,
        }
    }

    /// Number of currently mapped 4 kB pages (a 2 MB mapping counts 512).
    #[inline]
    pub fn mapped_pages_4k(&self) -> usize {
        self.mapped_4k
    }

    #[inline]
    fn check_range(vpn: u64) -> Result<(), MapError> {
        if vpn >> VPN_BITS != 0 {
            Err(MapError::OutOfRange)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn indices(vpn: u64) -> [usize; 3] {
        [
            ((vpn >> 27) & 0x1ff) as usize,
            ((vpn >> 18) & 0x1ff) as usize,
            ((vpn >> 9) & 0x1ff) as usize,
        ]
    }

    /// Walks to the PD slot for `vpn`, creating directories on the way
    /// if `create`. Returns the (directory arena index, slot index)
    /// location of the slot.
    fn pd_slot(&mut self, vpn: u64, create: bool) -> Option<(usize, usize)> {
        let [i4, i3, i2] = Self::indices(vpn);
        let mut di = 0usize;
        for idx in [i4, i3] {
            let h = self.dirs[di][idx];
            di = match tag_of(h) {
                TAG_NONE => {
                    if !create {
                        return None;
                    }
                    let child = self.dirs.len();
                    self.dirs.push([TAG_NONE; FANOUT]);
                    self.dirs[di][idx] = handle(TAG_DIR, child);
                    child
                }
                TAG_DIR => index_of(h),
                _ => return None,
            };
        }
        Some((di, i2))
    }

    /// Read-only walk to the PD slot's handle.
    #[inline]
    fn pd_handle(&self, vpn: u64) -> u32 {
        let [i4, i3, i2] = Self::indices(vpn);
        let mut di = 0usize;
        for idx in [i4, i3] {
            let h = self.dirs[di][idx];
            if tag_of(h) != TAG_DIR {
                return TAG_NONE;
            }
            di = index_of(h);
        }
        self.dirs[di][i2]
    }

    /// Walks to the PT containing `vpn`, creating it if needed. Returns
    /// its leaf-arena index, or `None` if the slot is occupied by a 2 MB
    /// leaf.
    fn pt_for(&mut self, vpn: u64, create: bool) -> Option<usize> {
        let (di, i2) = self.pd_slot(vpn, create)?;
        let h = self.dirs[di][i2];
        match tag_of(h) {
            TAG_PT => Some(index_of(h)),
            TAG_NONE => {
                if !create {
                    return None;
                }
                let li = self.alloc_pt();
                self.dirs[di][i2] = handle(TAG_PT, li);
                Some(li)
            }
            _ => None,
        }
    }

    /// Takes a leaf table from the free list (already zeroed: a PT is
    /// only freed at live == 0, and unmap clears entries as it goes) or
    /// grows the arena.
    fn alloc_pt(&mut self) -> usize {
        match self.free_pt.pop() {
            Some(i) => {
                debug_assert_eq!(self.leaves[i as usize].live, 0);
                i as usize
            }
            None => {
                self.leaves.push(LeafTable::new());
                self.leaves.len() - 1
            }
        }
    }

    /// Maps one block of `size` at `vpage` → `frame`.
    pub fn map(
        &mut self,
        vpage: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MapError> {
        self.map_counted(vpage, frame, size, flags, 0)
    }

    /// Like [`PageTable::map`], but folds `map_count` into the head PTE
    /// word during the same radix walk. PSPT stamps the block's core-map
    /// count on every map; doing it here saves the second full walk a
    /// `with_pte` after `map` would cost on the fault hot path.
    /// Sub-entries keep count 0 — only the head entry carries the
    /// statistic.
    pub fn map_counted(
        &mut self,
        vpage: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        flags: PteFlags,
        map_count: usize,
    ) -> Result<(), MapError> {
        Self::check_range(vpage.0)?;
        if !vpage.is_aligned(size) {
            return Err(MapError::UnalignedVirt);
        }
        if !(frame.0 as u64).is_multiple_of(size.pages_4k() as u64) {
            return Err(MapError::UnalignedPhys);
        }
        match size {
            PageSize::M2 => {
                let (di, i2) = self.pd_slot(vpage.0, true).ok_or(MapError::AlreadyMapped)?;
                let h = self.dirs[di][i2];
                match tag_of(h) {
                    TAG_NONE => {}
                    // An empty leftover PT is reclaimed, as a kernel does
                    // before installing a PSE mapping.
                    TAG_PT if self.leaves[index_of(h)].live == 0 => {
                        self.free_pt.push(index_of(h) as u32);
                    }
                    _ => return Err(MapError::AlreadyMapped),
                }
                let mut pte = Pte::new(frame, flags | PteFlags::LARGE);
                pte.set_map_count(map_count);
                let mi = match self.free_2m.pop() {
                    Some(i) => {
                        self.leaf2m[i as usize] = pte;
                        i as usize
                    }
                    None => {
                        self.leaf2m.push(pte);
                        self.leaf2m.len() - 1
                    }
                };
                self.dirs[di][i2] = handle(TAG_2M, mi);
                self.mapped_4k += PageSize::M2.pages_4k();
                Ok(())
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let extra = if size == PageSize::K64 {
                    PteFlags::HINT_64K
                } else {
                    PteFlags::empty()
                };
                // All sub-pages live in the same PT (64 kB never crosses a
                // 2 MB boundary thanks to natural alignment).
                let li = self.pt_for(vpage.0, true).ok_or(MapError::AlreadyMapped)?;
                let pt = &mut self.leaves[li];
                let base = (vpage.0 & 0x1ff) as usize;
                if pt.ptes[base..base + n].iter().any(|p| p.present()) {
                    return Err(MapError::AlreadyMapped);
                }
                for (k, slot) in pt.ptes[base..base + n].iter_mut().enumerate() {
                    *slot = Pte::new(frame.add(k as u32), flags | extra);
                }
                pt.ptes[base].set_map_count(map_count);
                pt.live += n as u32;
                self.mapped_4k += n;
                Ok(())
            }
        }
    }

    /// Hardware page walk for the 4 kB page `vpage`.
    pub fn translate(&self, vpage: VirtPage) -> Option<TableTranslation> {
        if vpage.0 >> VPN_BITS != 0 {
            return None;
        }
        let h = self.pd_handle(vpage.0);
        match tag_of(h) {
            TAG_2M => {
                let pte = self.leaf2m[index_of(h)];
                let offset = (vpage.0 % PageSize::M2.pages_4k() as u64) as u32;
                Some(TableTranslation {
                    frame: pte.frame().add(offset),
                    size: PageSize::M2,
                    writable: pte.writable(),
                })
            }
            TAG_PT => {
                let pte = self.leaves[index_of(h)].ptes[(vpage.0 & 0x1ff) as usize];
                if !pte.present() {
                    return None;
                }
                Some(TableTranslation {
                    frame: pte.frame(),
                    size: if pte.hint_64k() {
                        PageSize::K64
                    } else {
                        PageSize::K4
                    },
                    writable: pte.writable(),
                })
            }
            _ => None,
        }
    }

    /// Applies `f` to the PTE covering the 4 kB page `vpage`, if mapped.
    /// For a 2 MB mapping this is the single PD leaf; for 4 kB/64 kB it is
    /// the exact sub-entry — which is how the Phi hardware sets A/D bits
    /// on 64 kB pages.
    pub fn with_pte<R>(&mut self, vpage: VirtPage, f: impl FnOnce(&mut Pte) -> R) -> Option<R> {
        if vpage.0 >> VPN_BITS != 0 {
            return None;
        }
        let h = self.pd_handle(vpage.0);
        match tag_of(h) {
            TAG_2M => Some(f(&mut self.leaf2m[index_of(h)])),
            TAG_PT => {
                let pte = &mut self.leaves[index_of(h)].ptes[(vpage.0 & 0x1ff) as usize];
                if pte.present() {
                    Some(f(pte))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Hardware behaviour on a translated access: set the accessed (and,
    /// for writes, dirty) bit in the touched sub-entry.
    pub fn mark_accessed(&mut self, vpage: VirtPage, write: bool) -> bool {
        self.with_pte(vpage, |pte| pte.mark_accessed(write))
            .is_some()
    }

    /// OS statistics scan over one mapping block: read-and-clear the
    /// accessed bit of every sub-entry (16 iterations for a 64 kB page —
    /// the cost the paper highlights in §4). Returns whether any was set,
    /// plus the number of PTEs examined (for cycle charging).
    ///
    /// The sub-entries of a 4 kB/64 kB block are consecutive words of
    /// one leaf, so the scan walks the tree once and sweeps the slice.
    pub fn test_and_clear_accessed_block(
        &mut self,
        vpage: VirtPage,
        size: PageSize,
    ) -> (bool, usize) {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => {
                let was = self
                    .with_pte(head, |pte| pte.test_and_clear_accessed())
                    .unwrap_or(false);
                (was, 1)
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let mut any = false;
                if head.0 >> VPN_BITS == 0 {
                    let h = self.pd_handle(head.0);
                    if tag_of(h) == TAG_PT {
                        let base = (head.0 & 0x1ff) as usize;
                        for pte in &mut self.leaves[index_of(h)].ptes[base..base + n] {
                            if pte.present() {
                                any |= pte.test_and_clear_accessed();
                            }
                        }
                    }
                }
                (any, n)
            }
        }
    }

    /// Whether any sub-entry of the block has the dirty bit set (OS must
    /// iterate sub-entries on 64 kB pages, same as for accessed bits).
    pub fn block_dirty(&mut self, vpage: VirtPage, size: PageSize) -> bool {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => self.with_pte(head, |pte| pte.dirty()).unwrap_or(false),
            PageSize::K4 | PageSize::K64 => {
                if head.0 >> VPN_BITS != 0 {
                    return false;
                }
                let h = self.pd_handle(head.0);
                if tag_of(h) != TAG_PT {
                    return false;
                }
                let base = (head.0 & 0x1ff) as usize;
                self.leaves[index_of(h)].ptes[base..base + size.pages_4k()]
                    .iter()
                    .any(|pte| pte.present() && pte.dirty())
            }
        }
    }

    /// Splits the mapping block of `size` covering `vpage` into blocks
    /// of the next smaller granularity, in place: translations, frames,
    /// writability and the head map count are preserved, only the
    /// mapping *unit* shrinks. Returns whether a block was split.
    ///
    /// * 2 MB → 32 × 64 kB: the PD leaf is rewritten as a dense PT of
    ///   hint-bit runs (one radix-node rewrite, no tree restructuring
    ///   above it). The leaf's accessed/dirty bits — which hardware kept
    ///   block-wide — are propagated to every child's head sub-entry,
    ///   the conservative sound choice (a dirty 2 MB page must not
    ///   become 32 clean 64 kB pages).
    /// * 64 kB → 16 × 4 kB: the sixteen sub-entries drop their hint bit
    ///   and each becomes an independent head carrying the map count;
    ///   per-sub-entry accessed/dirty bits are already exact.
    pub fn split(&mut self, vpage: VirtPage, size: PageSize) -> bool {
        let head = vpage.align_down(size);
        match size {
            PageSize::K4 => false,
            PageSize::M2 => {
                let Some((di, i2)) = self.pd_slot(head.0, false) else {
                    return false;
                };
                let h = self.dirs[di][i2];
                if tag_of(h) != TAG_2M {
                    return false;
                }
                let mi = index_of(h);
                let big = self.leaf2m[mi];
                self.leaf2m[mi] = Pte::EMPTY;
                self.free_2m.push(mi as u32);
                let base = big
                    .flags()
                    .difference(PteFlags::LARGE | PteFlags::ACCESSED | PteFlags::DIRTY)
                    | PteFlags::HINT_64K;
                let mut attrs = PteFlags::empty();
                if big.accessed() {
                    attrs = attrs | PteFlags::ACCESSED;
                }
                if big.dirty() {
                    attrs = attrs | PteFlags::DIRTY;
                }
                let li = self.alloc_pt();
                let sub = PageSize::K64.pages_4k();
                let pt = &mut self.leaves[li];
                for k in 0..FANOUT {
                    let flags = if k % sub == 0 { base | attrs } else { base };
                    let mut pte = Pte::new(big.frame().add(k as u32), flags);
                    if k % sub == 0 {
                        pte.set_map_count(big.map_count());
                    }
                    pt.ptes[k] = pte;
                }
                pt.live = FANOUT as u32;
                self.dirs[di][i2] = handle(TAG_PT, li);
                true
            }
            PageSize::K64 => {
                let Some(li) = self.pt_for(head.0, false) else {
                    return false;
                };
                let pt = &mut self.leaves[li];
                let base = (head.0 & 0x1ff) as usize;
                let n = size.pages_4k();
                if pt.ptes[base..base + n]
                    .iter()
                    .any(|p| !p.present() || !p.hint_64k())
                {
                    return false;
                }
                let count = pt.ptes[base].map_count();
                for slot in &mut pt.ptes[base..base + n] {
                    slot.clear_hint_64k();
                    slot.set_map_count(count);
                }
                true
            }
        }
    }

    /// Merges the aligned children covering `vpage` back into one block
    /// of `target` size — the inverse of [`PageTable::split`], possible
    /// only when every child is present at the child granularity, the
    /// frames form one naturally aligned contiguous run, and writability
    /// agrees. Accessed/dirty/quarantine bits are OR-aggregated (a dirty
    /// child makes the merged block dirty); the head child's map count
    /// is kept. Returns whether the merge happened.
    pub fn merge(&mut self, vpage: VirtPage, target: PageSize) -> bool {
        let head = vpage.align_down(target);
        match target {
            PageSize::K4 => false,
            PageSize::K64 => {
                let Some(li) = self.pt_for(head.0, false) else {
                    return false;
                };
                let pt = &mut self.leaves[li];
                let base = (head.0 & 0x1ff) as usize;
                let n = target.pages_4k();
                let slots = &pt.ptes[base..base + n];
                let f0 = slots[0].frame();
                let ok = f0.0.is_multiple_of(n as u32)
                    && slots.iter().enumerate().all(|(k, p)| {
                        p.present()
                            && !p.hint_64k()
                            && p.frame() == f0.add(k as u32)
                            && p.writable() == slots[0].writable()
                    });
                if !ok {
                    return false;
                }
                let count = slots[0].map_count();
                for (k, slot) in pt.ptes[base..base + n].iter_mut().enumerate() {
                    slot.set_hint_64k();
                    slot.set_map_count(if k == 0 { count } else { 0 });
                }
                true
            }
            PageSize::M2 => {
                let Some((di, i2)) = self.pd_slot(head.0, false) else {
                    return false;
                };
                let h = self.dirs[di][i2];
                if tag_of(h) != TAG_PT {
                    return false;
                }
                let li = index_of(h);
                let pt = &self.leaves[li];
                if pt.live != FANOUT as u32 {
                    return false;
                }
                let f0 = pt.ptes[0].frame();
                let ok = f0.0.is_multiple_of(FANOUT as u32)
                    && pt.ptes.iter().enumerate().all(|(k, p)| {
                        p.present()
                            && p.hint_64k()
                            && p.frame() == f0.add(k as u32)
                            && p.writable() == pt.ptes[0].writable()
                    });
                if !ok {
                    return false;
                }
                let mut flags = pt.ptes[0]
                    .flags()
                    .difference(PteFlags::HINT_64K | PteFlags::ACCESSED | PteFlags::DIRTY)
                    | PteFlags::LARGE;
                for p in &pt.ptes {
                    if p.accessed() {
                        flags = flags | PteFlags::ACCESSED;
                    }
                    if p.dirty() {
                        flags = flags | PteFlags::DIRTY;
                    }
                    if p.quarantined() {
                        flags = flags | PteFlags::QUARANTINE;
                    }
                }
                let count = pt.ptes[0].map_count();
                let pt = &mut self.leaves[li];
                pt.ptes = [Pte::EMPTY; FANOUT];
                pt.live = 0;
                self.free_pt.push(li as u32);
                let mut pte = Pte::new(f0, flags);
                pte.set_map_count(count);
                let mi = match self.free_2m.pop() {
                    Some(i) => {
                        self.leaf2m[i as usize] = pte;
                        i as usize
                    }
                    None => {
                        self.leaf2m.push(pte);
                        self.leaf2m.len() - 1
                    }
                };
                self.dirs[di][i2] = handle(TAG_2M, mi);
                true
            }
        }
    }

    /// Unmaps the block of `size` at `vpage` (head-aligned). Returns the
    /// head PTE with accessed/dirty OR-ed across all sub-entries, or
    /// `None` if nothing was mapped.
    ///
    /// For 4 kB/64 kB this is a *range* unmap over the block's PT slots:
    /// any smaller mappings inside the span are removed too (the kernel
    /// always unmaps at the size it mapped, but the table keeps the
    /// general semantics of an x86 range teardown). A 2 MB unmap only
    /// matches an actual 2 MB leaf.
    pub fn unmap(&mut self, vpage: VirtPage, size: PageSize) -> Option<Pte> {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => {
                let (di, i2) = self.pd_slot(head.0, false)?;
                let h = self.dirs[di][i2];
                if tag_of(h) != TAG_2M {
                    return None;
                }
                let mi = index_of(h);
                let pte = self.leaf2m[mi];
                self.leaf2m[mi] = Pte::EMPTY;
                self.free_2m.push(mi as u32);
                self.dirs[di][i2] = TAG_NONE;
                self.mapped_4k -= PageSize::M2.pages_4k();
                Some(pte)
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let li = self.pt_for(head.0, false)?;
                let pt = &mut self.leaves[li];
                let base = (head.0 & 0x1ff) as usize;
                let mut agg: Option<Pte> = None;
                let mut removed = 0usize;
                for slot in &mut pt.ptes[base..base + n] {
                    if slot.present() {
                        let pte = *slot;
                        *slot = Pte::EMPTY;
                        removed += 1;
                        agg = Some(match agg {
                            None => pte,
                            Some(mut head_pte) => {
                                if pte.accessed() {
                                    head_pte.mark_accessed(false);
                                }
                                if pte.dirty() {
                                    head_pte.mark_accessed(true);
                                }
                                head_pte
                            }
                        });
                    }
                }
                pt.live -= removed as u32;
                self.mapped_4k -= removed;
                agg
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        PageTable::new()
    }

    #[test]
    fn map_translate_unmap_4k() {
        let mut t = table();
        t.map(
            VirtPage(100),
            PhysFrame(7),
            PageSize::K4,
            PteFlags::WRITABLE,
        )
        .unwrap();
        let tr = t.translate(VirtPage(100)).unwrap();
        assert_eq!(tr.frame, PhysFrame(7));
        assert_eq!(tr.size, PageSize::K4);
        assert!(tr.writable);
        assert_eq!(t.mapped_pages_4k(), 1);
        let pte = t.unmap(VirtPage(100), PageSize::K4).unwrap();
        assert_eq!(pte.frame(), PhysFrame(7));
        assert!(t.translate(VirtPage(100)).is_none());
        assert_eq!(t.mapped_pages_4k(), 0);
    }

    #[test]
    fn map_64k_creates_16_contiguous_subentries() {
        let mut t = table();
        t.map(
            VirtPage(0x40),
            PhysFrame(0x100),
            PageSize::K64,
            PteFlags::WRITABLE,
        )
        .unwrap();
        for k in 0..16u64 {
            let tr = t.translate(VirtPage(0x40 + k)).unwrap();
            assert_eq!(tr.frame, PhysFrame(0x100 + k as u32), "sub-page {k}");
            assert_eq!(tr.size, PageSize::K64);
        }
        assert!(t.translate(VirtPage(0x50)).is_none());
        assert_eq!(t.mapped_pages_4k(), 16);
    }

    #[test]
    fn map_2m_leaf() {
        let mut t = table();
        t.map(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::M2,
            PteFlags::empty(),
        )
        .unwrap();
        let tr = t.translate(VirtPage(0x200 + 77)).unwrap();
        assert_eq!(tr.frame, PhysFrame(0x200 + 77));
        assert_eq!(tr.size, PageSize::M2);
        assert!(!tr.writable);
        assert_eq!(t.mapped_pages_4k(), 512);
    }

    #[test]
    fn alignment_is_enforced() {
        let mut t = table();
        assert_eq!(
            t.map(
                VirtPage(0x41),
                PhysFrame(0x100),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::UnalignedVirt)
        );
        assert_eq!(
            t.map(
                VirtPage(0x40),
                PhysFrame(0x101),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::UnalignedPhys)
        );
    }

    #[test]
    fn overlap_is_rejected() {
        let mut t = table();
        t.map(
            VirtPage(0x40),
            PhysFrame(0),
            PageSize::K4,
            PteFlags::empty(),
        )
        .unwrap();
        // A 64 kB block over the same range must be refused whole.
        assert_eq!(
            t.map(
                VirtPage(0x40),
                PhysFrame(0x10),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::AlreadyMapped)
        );
        // And the failed attempt must not have mapped anything extra.
        assert_eq!(t.mapped_pages_4k(), 1);
        assert!(t.translate(VirtPage(0x41)).is_none());
    }

    #[test]
    fn vpn_out_of_range_is_rejected() {
        let mut t = table();
        assert_eq!(
            t.map(
                VirtPage(1 << 36),
                PhysFrame(0),
                PageSize::K4,
                PteFlags::empty()
            ),
            Err(MapError::OutOfRange)
        );
        assert!(t.translate(VirtPage(1 << 36)).is_none());
    }

    #[test]
    fn accessed_bit_lands_in_touched_subentry() {
        // The Phi quirk from paper §4: touching the (k+1)-th 4 kB region
        // of a 64 kB page sets A/D in that sub-entry only.
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        t.mark_accessed(VirtPage(5), true);
        // Only sub-entry 5 carries the bits.
        for k in 0..16u64 {
            let (acc, dirty) = t
                .with_pte(VirtPage(k), |pte| (pte.accessed(), pte.dirty()))
                .unwrap();
            assert_eq!(acc, k == 5, "accessed of sub-entry {k}");
            assert_eq!(dirty, k == 5, "dirty of sub-entry {k}");
        }
    }

    #[test]
    fn block_scan_iterates_16_entries_for_64k() {
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        t.mark_accessed(VirtPage(9), false);
        let (any, examined) = t.test_and_clear_accessed_block(VirtPage(3), PageSize::K64);
        assert!(any);
        assert_eq!(examined, 16);
        let (any2, _) = t.test_and_clear_accessed_block(VirtPage(3), PageSize::K64);
        assert!(!any2);
    }

    #[test]
    fn block_dirty_sees_any_subentry() {
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        assert!(!t.block_dirty(VirtPage(0), PageSize::K64));
        t.mark_accessed(VirtPage(15), true);
        assert!(t.block_dirty(VirtPage(0), PageSize::K64));
        assert!(
            t.block_dirty(VirtPage(7), PageSize::K64),
            "any covered page queries the block"
        );
    }

    #[test]
    fn unmap_64k_aggregates_attribute_bits() {
        let mut t = table();
        t.map(
            VirtPage(0x10),
            PhysFrame(0x20),
            PageSize::K64,
            PteFlags::WRITABLE,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x1b), true); // dirty one sub-entry
        let pte = t.unmap(VirtPage(0x13), PageSize::K64).unwrap();
        assert!(pte.accessed());
        assert!(pte.dirty());
        assert_eq!(t.mapped_pages_4k(), 0);
    }

    #[test]
    fn unmap_2m_returns_leaf() {
        let mut t = table();
        t.map(
            VirtPage(0x400),
            PhysFrame(0x400),
            PageSize::M2,
            PteFlags::WRITABLE,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x4ff), true);
        let pte = t.unmap(VirtPage(0x5aa), PageSize::M2).unwrap();
        assert!(pte.dirty());
        assert!(t.translate(VirtPage(0x400)).is_none());
    }

    #[test]
    fn mixed_sizes_coexist_in_one_2m_region_worth_of_space() {
        // Paper §4: "no restrictions for mixing the page sizes (4kB,
        // 64kB, 2MB) within a single address block" — 4 kB and 64 kB
        // mappings share a PT; a 2 MB mapping occupies its own PD slot.
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K4, PteFlags::empty())
            .unwrap();
        t.map(
            VirtPage(0x10),
            PhysFrame(0x10),
            PageSize::K64,
            PteFlags::empty(),
        )
        .unwrap();
        t.map(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::M2,
            PteFlags::empty(),
        )
        .unwrap();
        assert_eq!(t.translate(VirtPage(0)).unwrap().size, PageSize::K4);
        assert_eq!(t.translate(VirtPage(0x1f)).unwrap().size, PageSize::K64);
        assert_eq!(t.translate(VirtPage(0x3ff)).unwrap().size, PageSize::M2);
        assert_eq!(t.mapped_pages_4k(), 1 + 16 + 512);
    }

    #[test]
    fn unmap_missing_returns_none() {
        let mut t = table();
        assert!(t.unmap(VirtPage(3), PageSize::K4).is_none());
        assert!(t.unmap(VirtPage(0x40), PageSize::K64).is_none());
        assert!(t.unmap(VirtPage(0x200), PageSize::M2).is_none());
    }

    #[test]
    fn sparse_address_space_spans_high_indices() {
        let mut t = table();
        let far = VirtPage((1 << 35) + 0x123);
        t.map(far, PhysFrame(1), PageSize::K4, PteFlags::empty())
            .unwrap();
        assert_eq!(t.translate(far).unwrap().frame, PhysFrame(1));
        assert!(t.translate(VirtPage(far.0 + 1)).is_none());
    }

    #[test]
    fn empty_pt_is_reclaimed_by_2m_map() {
        // Map + unmap a 4 kB page so the PD slot holds an empty PT, then
        // install a 2 MB mapping over it: the leftover PT must be
        // recycled, not leaked and not rejected.
        let mut t = table();
        t.map(VirtPage(0x7), PhysFrame(3), PageSize::K4, PteFlags::empty())
            .unwrap();
        t.unmap(VirtPage(0x7), PageSize::K4).unwrap();
        t.map(VirtPage(0), PhysFrame(0), PageSize::M2, PteFlags::empty())
            .unwrap();
        assert_eq!(t.translate(VirtPage(0x7)).unwrap().size, PageSize::M2);
        // The recycled PT is reused for the next leaf allocation.
        assert_eq!(t.leaves.len(), 1);
        t.map(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::K4,
            PteFlags::empty(),
        )
        .unwrap();
        assert_eq!(t.leaves.len(), 1, "freed leaf must be recycled");
    }

    #[test]
    fn freed_2m_slots_are_recycled() {
        let mut t = table();
        for round in 0..3 {
            t.map(
                VirtPage(0x200),
                PhysFrame(0x200),
                PageSize::M2,
                PteFlags::empty(),
            )
            .unwrap();
            assert_eq!(t.leaf2m.len(), 1, "round {round} must reuse the slot");
            t.unmap(VirtPage(0x200), PageSize::M2).unwrap();
        }
        assert_eq!(t.mapped_pages_4k(), 0);
    }

    #[test]
    fn split_2m_preserves_translations_and_marks_children_dirty() {
        let mut t = table();
        t.map_counted(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::M2,
            PteFlags::WRITABLE,
            3,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x233), true);
        assert!(t.split(VirtPage(0x233), PageSize::M2));
        // Every 4 kB page still translates to the same frame, now via
        // 64 kB hint runs.
        for k in [0u64, 0x10, 0xff, 0x1ff] {
            let tr = t.translate(VirtPage(0x200 + k)).unwrap();
            assert_eq!(tr.frame, PhysFrame(0x200 + k as u32));
            assert_eq!(tr.size, PageSize::K64);
            assert!(tr.writable);
        }
        assert_eq!(t.mapped_pages_4k(), 512);
        // The block-wide dirty bit became per-child dirty: every child
        // must report dirty (conservative), and map counts carried over.
        for k in 0..32u64 {
            let head = VirtPage(0x200 + k * 16);
            assert!(t.block_dirty(head, PageSize::K64), "child {k}");
            assert_eq!(
                t.with_pte(head, |p| p.map_count()).unwrap(),
                3,
                "child {k} head map count"
            );
        }
    }

    #[test]
    fn split_64k_unhints_subentries() {
        let mut t = table();
        t.map_counted(
            VirtPage(0x40),
            PhysFrame(0x40),
            PageSize::K64,
            PteFlags::WRITABLE,
            2,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x45), true);
        assert!(t.split(VirtPage(0x4f), PageSize::K64));
        for k in 0..16u64 {
            let tr = t.translate(VirtPage(0x40 + k)).unwrap();
            assert_eq!(tr.size, PageSize::K4, "sub {k}");
            assert_eq!(tr.frame, PhysFrame(0x40 + k as u32));
            assert_eq!(
                t.with_pte(VirtPage(0x40 + k), |p| p.map_count()).unwrap(),
                2
            );
        }
        // The sub-entry that was dirty stays dirty, its siblings clean.
        assert!(t.block_dirty(VirtPage(0x45), PageSize::K4));
        assert!(!t.block_dirty(VirtPage(0x46), PageSize::K4));
    }

    #[test]
    fn split_of_unmapped_or_4k_is_refused() {
        let mut t = table();
        assert!(!t.split(VirtPage(0x200), PageSize::M2));
        t.map(VirtPage(0), PhysFrame(0), PageSize::K4, PteFlags::empty())
            .unwrap();
        assert!(!t.split(VirtPage(0), PageSize::K4));
    }

    #[test]
    fn merge_is_the_inverse_of_split() {
        let mut t = table();
        t.map_counted(
            VirtPage(0x200),
            PhysFrame(0x400),
            PageSize::M2,
            PteFlags::WRITABLE,
            5,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x2aa), true);
        assert!(t.split(VirtPage(0x200), PageSize::M2));
        assert!(t.merge(VirtPage(0x200), PageSize::M2));
        let tr = t.translate(VirtPage(0x2aa)).unwrap();
        assert_eq!(tr.size, PageSize::M2);
        assert_eq!(tr.frame, PhysFrame(0x400 + 0xaa));
        assert!(
            t.block_dirty(VirtPage(0x200), PageSize::M2),
            "dirty survives"
        );
        assert_eq!(t.with_pte(VirtPage(0x200), |p| p.map_count()).unwrap(), 5);
        assert_eq!(t.mapped_pages_4k(), 512);
    }

    #[test]
    fn merge_refuses_discontiguous_frames() {
        let mut t = table();
        // Two 4 kB pages with non-adjacent frames cannot form a 64 kB run.
        for k in 0..16u64 {
            let frame = if k == 7 { 0x999 } else { 0x40 + k as u32 };
            t.map(
                VirtPage(0x40 + k),
                PhysFrame(frame),
                PageSize::K4,
                PteFlags::empty(),
            )
            .unwrap();
        }
        assert!(!t.merge(VirtPage(0x40), PageSize::K64));
        assert_eq!(t.translate(VirtPage(0x47)).unwrap().frame, PhysFrame(0x999));
    }

    #[test]
    fn a_partially_emptied_pt_is_not_reclaimable() {
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K4, PteFlags::empty())
            .unwrap();
        t.map(VirtPage(1), PhysFrame(1), PageSize::K4, PteFlags::empty())
            .unwrap();
        t.unmap(VirtPage(0), PageSize::K4).unwrap();
        assert_eq!(
            t.map(VirtPage(0), PhysFrame(0), PageSize::M2, PteFlags::empty()),
            Err(MapError::AlreadyMapped),
            "a PT with live entries must not be reclaimed by a 2 MB map"
        );
        assert_eq!(t.translate(VirtPage(1)).unwrap().frame, PhysFrame(1));
    }
}
