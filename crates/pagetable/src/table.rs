//! A single 4-level radix page table.
//!
//! Structure mirrors x86 long mode on the Xeon Phi: four levels of
//! 512-entry tables indexed by 9-bit slices of the 36-bit virtual page
//! number. Mappings come in the three sizes the Phi supports:
//!
//! * **4 kB** — one PTE at the bottom (PT) level;
//! * **64 kB** — sixteen consecutive PT-level PTEs, each carrying the
//!   [`PteFlags::HINT_64K`] bit, head entry 64 kB-aligned, frames
//!   physically contiguous (paper §4, Figure 5);
//! * **2 MB** — a PD-level leaf with [`PteFlags::LARGE`].
//!
//! Hardware attribute semantics follow the paper's description: on a
//! 64 kB mapping, the accessed/dirty bit is set in the 4 kB *sub-entry*
//! that was touched, so OS-level statistics collection must iterate all
//! 16 sub-entries ([`PageTable::test_and_clear_accessed_block`]).

use std::fmt;

use cmcp_arch::{PageSize, PhysFrame, VirtPage};

use crate::pte::{Pte, PteFlags};

const FANOUT: usize = 512;
/// Virtual page numbers are 36 bits (48-bit virtual addresses).
const VPN_BITS: u32 = 36;

/// Why a `map` call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is not naturally aligned for the requested size.
    UnalignedVirt,
    /// The physical frame is not naturally aligned for the requested size.
    UnalignedPhys,
    /// Some 4 kB page in the requested range is already mapped.
    AlreadyMapped,
    /// The virtual page number exceeds the 36-bit addressable range.
    OutOfRange,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnalignedVirt => write!(f, "virtual page not aligned for page size"),
            MapError::UnalignedPhys => write!(f, "physical frame not aligned for page size"),
            MapError::AlreadyMapped => write!(f, "range already mapped"),
            MapError::OutOfRange => write!(f, "virtual page number out of range"),
        }
    }
}

impl std::error::Error for MapError {}

/// Result of a translation: the 4 kB frame backing the queried page and
/// the size class of the mapping it came from (what the TLB caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableTranslation {
    /// Frame backing the queried 4 kB page.
    pub frame: PhysFrame,
    /// Size class of the enclosing mapping.
    pub size: PageSize,
    /// Whether the mapping permits writes.
    pub writable: bool,
}

/// Bottom-level page table: 512 PTE slots plus a live-entry count.
struct LeafTable {
    ptes: Vec<Option<Pte>>,
    live: usize,
}

impl LeafTable {
    fn new() -> LeafTable {
        LeafTable {
            ptes: vec![None; FANOUT],
            live: 0,
        }
    }
}

enum Node {
    /// Interior directory (PML4, PDPT, or PD).
    Dir(Vec<Option<Box<Node>>>),
    /// 2 MB leaf at the PD level.
    Leaf2M(Pte),
    /// Bottom-level page table.
    Pt(Box<LeafTable>),
}

impl Node {
    fn dir() -> Node {
        Node::Dir((0..FANOUT).map(|_| None).collect())
    }
}

/// One address space's (or, under PSPT, one core's) page table.
///
/// Not internally synchronized: callers wrap it in whatever locking the
/// table scheme prescribes — that locking *is* part of what the paper
/// measures (coarse address-space locks for regular tables vs per-core
/// locks for PSPT).
pub struct PageTable {
    root: Node,
    mapped_4k: usize,
}

impl Default for PageTable {
    fn default() -> PageTable {
        PageTable::new()
    }
}

impl PageTable {
    /// An empty table.
    pub fn new() -> PageTable {
        PageTable {
            root: Node::dir(),
            mapped_4k: 0,
        }
    }

    /// Number of currently mapped 4 kB pages (a 2 MB mapping counts 512).
    #[inline]
    pub fn mapped_pages_4k(&self) -> usize {
        self.mapped_4k
    }

    #[inline]
    fn check_range(vpn: u64) -> Result<(), MapError> {
        if vpn >> VPN_BITS != 0 {
            Err(MapError::OutOfRange)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn indices(vpn: u64) -> [usize; 3] {
        [
            ((vpn >> 27) & 0x1ff) as usize,
            ((vpn >> 18) & 0x1ff) as usize,
            ((vpn >> 9) & 0x1ff) as usize,
        ]
    }

    /// Walks to the PD slot for `vpn`, creating directories on the way if
    /// `create`.
    fn pd_slot(&mut self, vpn: u64, create: bool) -> Option<&mut Option<Box<Node>>> {
        let [i4, i3, i2] = Self::indices(vpn);
        let mut node = &mut self.root;
        for idx in [i4, i3] {
            let slots = match node {
                Node::Dir(s) => s,
                _ => return None,
            };
            if slots[idx].is_none() {
                if !create {
                    return None;
                }
                slots[idx] = Some(Box::new(Node::dir()));
            }
            node = slots[idx].as_mut().unwrap();
        }
        match node {
            Node::Dir(s) => Some(&mut s[i2]),
            _ => None,
        }
    }

    /// Maps one block of `size` at `vpage` → `frame`.
    pub fn map(
        &mut self,
        vpage: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), MapError> {
        Self::check_range(vpage.0)?;
        if !vpage.is_aligned(size) {
            return Err(MapError::UnalignedVirt);
        }
        if !(frame.0 as u64).is_multiple_of(size.pages_4k() as u64) {
            return Err(MapError::UnalignedPhys);
        }
        match size {
            PageSize::M2 => {
                let slot = self.pd_slot(vpage.0, true).ok_or(MapError::AlreadyMapped)?;
                match slot.as_deref() {
                    // An empty leftover PT is reclaimed, as a kernel does
                    // before installing a PSE mapping.
                    Some(Node::Pt(leaf)) if leaf.live == 0 => {}
                    Some(_) => return Err(MapError::AlreadyMapped),
                    None => {}
                }
                *slot = Some(Box::new(Node::Leaf2M(Pte::new(
                    frame,
                    flags | PteFlags::LARGE,
                ))));
                self.mapped_4k += PageSize::M2.pages_4k();
                Ok(())
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let extra = if size == PageSize::K64 {
                    PteFlags::HINT_64K
                } else {
                    PteFlags::empty()
                };
                // All sub-pages live in the same PT (64 kB never crosses a
                // 2 MB boundary thanks to natural alignment).
                let pt = self.pt_for(vpage.0, true).ok_or(MapError::AlreadyMapped)?;
                let base = (vpage.0 & 0x1ff) as usize;
                if pt.ptes[base..base + n].iter().any(|p| p.is_some()) {
                    return Err(MapError::AlreadyMapped);
                }
                for k in 0..n {
                    pt.ptes[base + k] = Some(Pte::new(frame.add(k as u32), flags | extra));
                }
                pt.live += n;
                self.mapped_4k += n;
                Ok(())
            }
        }
    }

    /// Walks to the PT containing `vpn`, creating it if needed. Returns
    /// `None` if the slot is occupied by a 2 MB leaf.
    fn pt_for(&mut self, vpn: u64, create: bool) -> Option<&mut LeafTable> {
        let slot = self.pd_slot(vpn, create)?;
        match slot {
            Some(node) => match node.as_mut() {
                Node::Pt(leaf) => Some(leaf),
                _ => None,
            },
            None => {
                if !create {
                    return None;
                }
                *slot = Some(Box::new(Node::Pt(Box::new(LeafTable::new()))));
                match slot.as_mut().unwrap().as_mut() {
                    Node::Pt(leaf) => Some(leaf),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Hardware page walk for the 4 kB page `vpage`.
    pub fn translate(&self, vpage: VirtPage) -> Option<TableTranslation> {
        if vpage.0 >> VPN_BITS != 0 {
            return None;
        }
        let [i4, i3, i2] = Self::indices(vpage.0);
        let mut node = &self.root;
        for idx in [i4, i3] {
            node = match node {
                Node::Dir(s) => s[idx].as_deref()?,
                _ => return None,
            };
        }
        let pd_slot = match node {
            Node::Dir(s) => s[i2].as_deref()?,
            _ => return None,
        };
        match pd_slot {
            Node::Leaf2M(pte) => {
                let offset = (vpage.0 % PageSize::M2.pages_4k() as u64) as u32;
                Some(TableTranslation {
                    frame: pte.frame().add(offset),
                    size: PageSize::M2,
                    writable: pte.writable(),
                })
            }
            Node::Pt(leaf) => {
                let pte = leaf.ptes[(vpage.0 & 0x1ff) as usize].as_ref()?;
                Some(TableTranslation {
                    frame: pte.frame(),
                    size: if pte.hint_64k() {
                        PageSize::K64
                    } else {
                        PageSize::K4
                    },
                    writable: pte.writable(),
                })
            }
            Node::Dir(_) => None,
        }
    }

    /// Applies `f` to the PTE covering the 4 kB page `vpage`, if mapped.
    /// For a 2 MB mapping this is the single PD leaf; for 4 kB/64 kB it is
    /// the exact sub-entry — which is how the Phi hardware sets A/D bits
    /// on 64 kB pages.
    pub fn with_pte<R>(&mut self, vpage: VirtPage, f: impl FnOnce(&mut Pte) -> R) -> Option<R> {
        if vpage.0 >> VPN_BITS != 0 {
            return None;
        }
        let [i4, i3, i2] = Self::indices(vpage.0);
        let mut node = &mut self.root;
        for idx in [i4, i3] {
            node = match node {
                Node::Dir(s) => s[idx].as_deref_mut()?,
                _ => return None,
            };
        }
        let pd_slot = match node {
            Node::Dir(s) => s[i2].as_deref_mut()?,
            _ => return None,
        };
        match pd_slot {
            Node::Leaf2M(pte) => Some(f(pte)),
            Node::Pt(leaf) => leaf.ptes[(vpage.0 & 0x1ff) as usize].as_mut().map(f),
            Node::Dir(_) => None,
        }
    }

    /// Hardware behaviour on a translated access: set the accessed (and,
    /// for writes, dirty) bit in the touched sub-entry.
    pub fn mark_accessed(&mut self, vpage: VirtPage, write: bool) -> bool {
        self.with_pte(vpage, |pte| pte.mark_accessed(write))
            .is_some()
    }

    /// OS statistics scan over one mapping block: read-and-clear the
    /// accessed bit of every sub-entry (16 iterations for a 64 kB page —
    /// the cost the paper highlights in §4). Returns whether any was set,
    /// plus the number of PTEs examined (for cycle charging).
    pub fn test_and_clear_accessed_block(
        &mut self,
        vpage: VirtPage,
        size: PageSize,
    ) -> (bool, usize) {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => {
                let was = self
                    .with_pte(head, |pte| pte.test_and_clear_accessed())
                    .unwrap_or(false);
                (was, 1)
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let mut any = false;
                for k in 0..n as u64 {
                    if let Some(was) =
                        self.with_pte(head.add(k), |pte| pte.test_and_clear_accessed())
                    {
                        any |= was;
                    }
                }
                (any, n)
            }
        }
    }

    /// Whether any sub-entry of the block has the dirty bit set (OS must
    /// iterate sub-entries on 64 kB pages, same as for accessed bits).
    pub fn block_dirty(&mut self, vpage: VirtPage, size: PageSize) -> bool {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => self.with_pte(head, |pte| pte.dirty()).unwrap_or(false),
            PageSize::K4 | PageSize::K64 => (0..size.pages_4k() as u64).any(|k| {
                self.with_pte(head.add(k), |pte| pte.dirty())
                    .unwrap_or(false)
            }),
        }
    }

    /// Unmaps the block of `size` at `vpage` (head-aligned). Returns the
    /// head PTE with accessed/dirty OR-ed across all sub-entries, or
    /// `None` if nothing was mapped.
    ///
    /// For 4 kB/64 kB this is a *range* unmap over the block's PT slots:
    /// any smaller mappings inside the span are removed too (the kernel
    /// always unmaps at the size it mapped, but the table keeps the
    /// general semantics of an x86 range teardown). A 2 MB unmap only
    /// matches an actual 2 MB leaf.
    pub fn unmap(&mut self, vpage: VirtPage, size: PageSize) -> Option<Pte> {
        let head = vpage.align_down(size);
        match size {
            PageSize::M2 => {
                let slot = self.pd_slot(head.0, false)?;
                match slot.as_deref() {
                    Some(Node::Leaf2M(_)) => {}
                    _ => return None,
                }
                let node = slot.take().unwrap();
                self.mapped_4k -= PageSize::M2.pages_4k();
                match *node {
                    Node::Leaf2M(pte) => Some(pte),
                    _ => unreachable!(),
                }
            }
            PageSize::K4 | PageSize::K64 => {
                let n = size.pages_4k();
                let pt = self.pt_for(head.0, false)?;
                let base = (head.0 & 0x1ff) as usize;
                let mut agg: Option<Pte> = None;
                let mut removed = 0usize;
                for k in 0..n {
                    if let Some(pte) = pt.ptes[base + k].take() {
                        pt.live -= 1;
                        removed += 1;
                        agg = Some(match agg {
                            None => pte,
                            Some(mut head_pte) => {
                                if pte.accessed() {
                                    head_pte.mark_accessed(false);
                                }
                                if pte.dirty() {
                                    head_pte.mark_accessed(true);
                                }
                                head_pte
                            }
                        });
                    }
                }
                self.mapped_4k -= removed;
                agg
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        PageTable::new()
    }

    #[test]
    fn map_translate_unmap_4k() {
        let mut t = table();
        t.map(
            VirtPage(100),
            PhysFrame(7),
            PageSize::K4,
            PteFlags::WRITABLE,
        )
        .unwrap();
        let tr = t.translate(VirtPage(100)).unwrap();
        assert_eq!(tr.frame, PhysFrame(7));
        assert_eq!(tr.size, PageSize::K4);
        assert!(tr.writable);
        assert_eq!(t.mapped_pages_4k(), 1);
        let pte = t.unmap(VirtPage(100), PageSize::K4).unwrap();
        assert_eq!(pte.frame(), PhysFrame(7));
        assert!(t.translate(VirtPage(100)).is_none());
        assert_eq!(t.mapped_pages_4k(), 0);
    }

    #[test]
    fn map_64k_creates_16_contiguous_subentries() {
        let mut t = table();
        t.map(
            VirtPage(0x40),
            PhysFrame(0x100),
            PageSize::K64,
            PteFlags::WRITABLE,
        )
        .unwrap();
        for k in 0..16u64 {
            let tr = t.translate(VirtPage(0x40 + k)).unwrap();
            assert_eq!(tr.frame, PhysFrame(0x100 + k as u32), "sub-page {k}");
            assert_eq!(tr.size, PageSize::K64);
        }
        assert!(t.translate(VirtPage(0x50)).is_none());
        assert_eq!(t.mapped_pages_4k(), 16);
    }

    #[test]
    fn map_2m_leaf() {
        let mut t = table();
        t.map(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::M2,
            PteFlags::empty(),
        )
        .unwrap();
        let tr = t.translate(VirtPage(0x200 + 77)).unwrap();
        assert_eq!(tr.frame, PhysFrame(0x200 + 77));
        assert_eq!(tr.size, PageSize::M2);
        assert!(!tr.writable);
        assert_eq!(t.mapped_pages_4k(), 512);
    }

    #[test]
    fn alignment_is_enforced() {
        let mut t = table();
        assert_eq!(
            t.map(
                VirtPage(0x41),
                PhysFrame(0x100),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::UnalignedVirt)
        );
        assert_eq!(
            t.map(
                VirtPage(0x40),
                PhysFrame(0x101),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::UnalignedPhys)
        );
    }

    #[test]
    fn overlap_is_rejected() {
        let mut t = table();
        t.map(
            VirtPage(0x40),
            PhysFrame(0),
            PageSize::K4,
            PteFlags::empty(),
        )
        .unwrap();
        // A 64 kB block over the same range must be refused whole.
        assert_eq!(
            t.map(
                VirtPage(0x40),
                PhysFrame(0x10),
                PageSize::K64,
                PteFlags::empty()
            ),
            Err(MapError::AlreadyMapped)
        );
        // And the failed attempt must not have mapped anything extra.
        assert_eq!(t.mapped_pages_4k(), 1);
        assert!(t.translate(VirtPage(0x41)).is_none());
    }

    #[test]
    fn vpn_out_of_range_is_rejected() {
        let mut t = table();
        assert_eq!(
            t.map(
                VirtPage(1 << 36),
                PhysFrame(0),
                PageSize::K4,
                PteFlags::empty()
            ),
            Err(MapError::OutOfRange)
        );
        assert!(t.translate(VirtPage(1 << 36)).is_none());
    }

    #[test]
    fn accessed_bit_lands_in_touched_subentry() {
        // The Phi quirk from paper §4: touching the (k+1)-th 4 kB region
        // of a 64 kB page sets A/D in that sub-entry only.
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        t.mark_accessed(VirtPage(5), true);
        // Only sub-entry 5 carries the bits.
        for k in 0..16u64 {
            let (acc, dirty) = t
                .with_pte(VirtPage(k), |pte| (pte.accessed(), pte.dirty()))
                .unwrap();
            assert_eq!(acc, k == 5, "accessed of sub-entry {k}");
            assert_eq!(dirty, k == 5, "dirty of sub-entry {k}");
        }
    }

    #[test]
    fn block_scan_iterates_16_entries_for_64k() {
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        t.mark_accessed(VirtPage(9), false);
        let (any, examined) = t.test_and_clear_accessed_block(VirtPage(3), PageSize::K64);
        assert!(any);
        assert_eq!(examined, 16);
        let (any2, _) = t.test_and_clear_accessed_block(VirtPage(3), PageSize::K64);
        assert!(!any2);
    }

    #[test]
    fn block_dirty_sees_any_subentry() {
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K64, PteFlags::WRITABLE)
            .unwrap();
        assert!(!t.block_dirty(VirtPage(0), PageSize::K64));
        t.mark_accessed(VirtPage(15), true);
        assert!(t.block_dirty(VirtPage(0), PageSize::K64));
        assert!(
            t.block_dirty(VirtPage(7), PageSize::K64),
            "any covered page queries the block"
        );
    }

    #[test]
    fn unmap_64k_aggregates_attribute_bits() {
        let mut t = table();
        t.map(
            VirtPage(0x10),
            PhysFrame(0x20),
            PageSize::K64,
            PteFlags::WRITABLE,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x1b), true); // dirty one sub-entry
        let pte = t.unmap(VirtPage(0x13), PageSize::K64).unwrap();
        assert!(pte.accessed());
        assert!(pte.dirty());
        assert_eq!(t.mapped_pages_4k(), 0);
    }

    #[test]
    fn unmap_2m_returns_leaf() {
        let mut t = table();
        t.map(
            VirtPage(0x400),
            PhysFrame(0x400),
            PageSize::M2,
            PteFlags::WRITABLE,
        )
        .unwrap();
        t.mark_accessed(VirtPage(0x4ff), true);
        let pte = t.unmap(VirtPage(0x5aa), PageSize::M2).unwrap();
        assert!(pte.dirty());
        assert!(t.translate(VirtPage(0x400)).is_none());
    }

    #[test]
    fn mixed_sizes_coexist_in_one_2m_region_worth_of_space() {
        // Paper §4: "no restrictions for mixing the page sizes (4kB,
        // 64kB, 2MB) within a single address block" — 4 kB and 64 kB
        // mappings share a PT; a 2 MB mapping occupies its own PD slot.
        let mut t = table();
        t.map(VirtPage(0), PhysFrame(0), PageSize::K4, PteFlags::empty())
            .unwrap();
        t.map(
            VirtPage(0x10),
            PhysFrame(0x10),
            PageSize::K64,
            PteFlags::empty(),
        )
        .unwrap();
        t.map(
            VirtPage(0x200),
            PhysFrame(0x200),
            PageSize::M2,
            PteFlags::empty(),
        )
        .unwrap();
        assert_eq!(t.translate(VirtPage(0)).unwrap().size, PageSize::K4);
        assert_eq!(t.translate(VirtPage(0x1f)).unwrap().size, PageSize::K64);
        assert_eq!(t.translate(VirtPage(0x3ff)).unwrap().size, PageSize::M2);
        assert_eq!(t.mapped_pages_4k(), 1 + 16 + 512);
    }

    #[test]
    fn unmap_missing_returns_none() {
        let mut t = table();
        assert!(t.unmap(VirtPage(3), PageSize::K4).is_none());
        assert!(t.unmap(VirtPage(0x40), PageSize::K64).is_none());
        assert!(t.unmap(VirtPage(0x200), PageSize::M2).is_none());
    }

    #[test]
    fn sparse_address_space_spans_high_indices() {
        let mut t = table();
        let far = VirtPage((1 << 35) + 0x123);
        t.map(far, PhysFrame(1), PageSize::K4, PteFlags::empty())
            .unwrap();
        assert_eq!(t.translate(far).unwrap().frame, PhysFrame(1));
        assert!(t.translate(VirtPage(far.0 + 1)).is_none());
    }
}
