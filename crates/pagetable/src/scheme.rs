//! The [`TableScheme`] abstraction: what the kernel's virtual-memory
//! subsystem needs from address translation, implemented both by
//! traditional shared tables ([`crate::regular::RegularTables`]) and by
//! per-core partially separated tables ([`crate::pspt::Pspt`]).
//!
//! The two schemes differ in exactly the ways the paper measures:
//!
//! | operation            | regular tables            | PSPT                         |
//! |----------------------|---------------------------|------------------------------|
//! | who to shoot down    | *every* active core       | exactly the mapping cores    |
//! | fault serialization  | address-space-wide lock   | per-core locks               |
//! | map-count knowledge  | unavailable               | free ([`TableScheme::mapping_cores`]) |

use cmcp_arch::{CoreId, CoreSet, PageSize, PhysFrame, VirtPage};

use crate::table::MapError;

/// Result of a page walk: what the TLB caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Frame backing the queried 4 kB page.
    pub frame: PhysFrame,
    /// Size class of the enclosing mapping (selects the TLB entry type).
    pub size: PageSize,
    /// Whether the mapping permits writes.
    pub writable: bool,
}

/// What happened when a core installed a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOutcome {
    /// The block was not mapped anywhere before.
    Fresh,
    /// PSPT only: other cores already mapped the block, so the faulting
    /// core copied an existing PTE after consulting `probes` other
    /// per-core tables (paper §2.3).
    Copied {
        /// Number of other cores' page tables consulted.
        probes: usize,
        /// Number of cores mapping the block *including* the faulting
        /// core, read from the directory entry the map already locked —
        /// CMCP's priority signal, folded into the outcome (and the head
        /// PTE's packed map-count field) so the fault path does not take
        /// the directory lock a second time.
        map_count: usize,
    },
}

/// Result of tearing a block out of every table that maps it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmapOutcome {
    /// Cores that held a valid PTE — the TLB shootdown target set.
    pub mappers: CoreSet,
    /// Whether any PTE (any sub-entry, any core) was dirty: the victim
    /// page must be written back to the host before reuse.
    pub dirty: bool,
    /// Whether any PTE was accessed since the last clear.
    pub accessed: bool,
    /// Total PTEs removed, for cycle accounting (16 sub-entries per
    /// 64 kB block, per mapping core).
    pub ptes_removed: usize,
}

/// Result of an OS accessed-bit scan over one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Whether any examined PTE had the accessed bit set.
    pub accessed: bool,
    /// Cores whose TLBs must be invalidated because a set bit was
    /// cleared in their PTE. **This is the cost the paper indicts:** on
    /// x86, clearing an accessed bit without invalidating the TLB loses
    /// future accesses, so LRU-style statistics force shootdowns.
    pub invalidate: CoreSet,
    /// Total PTEs examined, for cycle accounting.
    pub ptes_examined: usize,
}

/// Which scheme an object implements (used for lock-cost selection and
/// experiment labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Traditional shared page tables.
    Regular,
    /// Per-core partially separated page tables.
    Pspt,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeKind::Regular => write!(f, "regular PT"),
            SchemeKind::Pspt => write!(f, "PSPT"),
        }
    }
}

/// Address-translation operations the kernel performs, with interior
/// synchronization (the virtual-time *cost* of that synchronization is
/// charged separately by the kernel from the cost model).
pub trait TableScheme: Send + Sync {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Cores sharing this address space.
    fn active_cores(&self) -> CoreSet;

    /// Hardware page walk as seen by `core`.
    fn translate(&self, core: CoreId, page: VirtPage) -> Option<Translation>;

    /// Hardware accessed/dirty update on a translated access by `core`.
    fn mark_accessed(&self, core: CoreId, page: VirtPage, write: bool);

    /// Installs a mapping of the `size`-aligned block at `head` for
    /// `core`. Regular tables install once for everybody; PSPT installs
    /// into the faulting core's private table, copying from siblings when
    /// the block is already resident.
    fn map(
        &self,
        core: CoreId,
        head: VirtPage,
        frame: PhysFrame,
        size: PageSize,
        writable: bool,
    ) -> Result<MapOutcome, MapError>;

    /// Removes the block at `head` from every table that maps it.
    fn unmap_all(&self, head: VirtPage, size: PageSize) -> Option<UnmapOutcome>;

    /// The cores whose TLBs may cache translations for this block: the
    /// shootdown target set for a remap. Regular tables cannot narrow
    /// this down and return every active core; PSPT returns the precise
    /// mapping set — *and its size is CMCP's priority signal*.
    fn mapping_cores(&self, head: VirtPage) -> CoreSet;

    /// Splits the `size` block at `head` into blocks of the next
    /// smaller granularity in every table that maps it, preserving
    /// translations, frames and attribute bits (adaptive page-size
    /// mode: an oversized victim is split under pressure instead of
    /// evicted whole — a radix-node rewrite, so no TLB shootdown is
    /// required because no translation changes). Returns the child size,
    /// or `None` when the block is unmapped or already 4 kB.
    fn split_block(&self, head: VirtPage, size: PageSize) -> Option<PageSize>;

    /// OS statistics pass: read-and-clear accessed bits over the block.
    fn test_and_clear_accessed(&self, head: VirtPage, size: PageSize) -> ScanOutcome;

    /// Whether the block needs write-back (any dirty sub-entry anywhere).
    fn block_dirty(&self, head: VirtPage, size: PageSize) -> bool;
}
