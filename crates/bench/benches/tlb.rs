//! Microbenchmarks of the per-core TLB model: hit/miss/fill/invalidate
//! throughput, which bounds overall simulation speed (one TLB access per
//! page touch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cmcp::arch::{CostModel, PageSize, Tlb, VirtPage};

fn warm_tlb() -> Tlb {
    let mut t = Tlb::knc(&CostModel::default());
    for p in 0..64u64 {
        t.fill(VirtPage(p), PageSize::K4);
    }
    t
}

fn bench_hits(c: &mut Criterion) {
    c.bench_function("tlb_l1_hit", |b| {
        let mut t = warm_tlb();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(t.access(VirtPage(i), PageSize::K4))
        });
    });
}

fn bench_miss_fill(c: &mut Criterion) {
    c.bench_function("tlb_miss_then_fill", |b| {
        let mut t = Tlb::knc(&CostModel::default());
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            let r = t.access(VirtPage(p), PageSize::K4);
            t.fill(VirtPage(p), PageSize::K4);
            black_box(r)
        });
    });
}

fn bench_invalidate(c: &mut Criterion) {
    c.bench_function("tlb_invalidate", |b| {
        let mut t = warm_tlb();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            // Re-fill so there is always something to invalidate.
            t.fill(VirtPage(i), PageSize::K4);
            black_box(t.invalidate(VirtPage(i)))
        });
    });
}

fn bench_sweep_by_page_size(c: &mut Criterion) {
    // The page-size motivation in microcosm: streaming 4 MB of address
    // space costs vastly different TLB work per size class.
    let mut group = c.benchmark_group("tlb_sweep_4mb");
    for size in PageSize::ALL {
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                let mut t = Tlb::knc(&CostModel::default());
                let mut misses = 0u64;
                for p in 0..1024u64 {
                    if t.access(VirtPage(p), size) == cmcp::arch::TlbLookup::Miss {
                        misses += 1;
                        t.fill(VirtPage(p), size);
                    }
                }
                black_box(misses)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hits,
    bench_miss_fill,
    bench_invalidate,
    bench_sweep_by_page_size
);
criterion_main!(benches);
