//! End-to-end simulation throughput: one reduced Figure-7-style
//! configuration per policy, so `cargo bench` tracks regressions in the
//! whole pipeline (trace generation excluded via pre-built traces).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cmcp::workloads::scale::{scale_trace, ScaleConfig};
use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder, Trace};

fn small_trace() -> Trace {
    scale_trace(
        8,
        &ScaleConfig {
            nx: 256,
            ny: 128,
            fields: 3,
            steps: 3,
        },
    )
}

fn bench_end_to_end(c: &mut Criterion) {
    let trace = small_trace();
    let mut group = c.benchmark_group("simulate_scale_8c");
    group.sample_size(10);
    for (name, scheme, policy) in [
        ("regular+fifo", SchemeChoice::Regular, PolicyKind::Fifo),
        ("pspt+fifo", SchemeChoice::Pspt, PolicyKind::Fifo),
        ("pspt+lru", SchemeChoice::Pspt, PolicyKind::Lru),
        (
            "pspt+cmcp",
            SchemeChoice::Pspt,
            PolicyKind::Cmcp { p: 0.75 },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let r = SimulationBuilder::trace(trace.clone())
                    .scheme(scheme)
                    .policy(policy)
                    .memory_ratio(0.5)
                    .run();
                black_box(r.runtime_cycles)
            });
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("scale_small_8c", |b| {
        b.iter(|| black_box(small_trace().total_touches()));
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_trace_generation);
criterion_main!(benches);
