//! Host wall-clock scaling of the unified engine on the CG workload.
//!
//! Runs the same trace at 1/2/4/8 worker threads. This measures *host*
//! performance — epoch-parallel core advancement over the sharded frame
//! pool and striped residency maps — not virtual time, which is
//! byte-identical at every thread count. Before timing anything the
//! harness asserts exactly that: every thread count's report must be
//! byte-equal to the single-thread report, so a scaling number can
//! never be quoted for a run that broke determinism.
//!
//! In `--bench` mode the harness also writes
//! `results/BENCH_parallel.json` so future changes can be compared
//! against this baseline.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cmcp::workloads::cg::{cg_trace, CgConfig};
use cmcp::{HostScaling, PolicyKind, RunReport, SimulationBuilder, Trace};

const CORES: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BASELINE_SAMPLES: usize = 5;

/// A CG instance small enough to sample repeatedly but large enough
/// that the fault path (not trace generation) dominates.
fn workload() -> Trace {
    cg_trace(
        CORES,
        &CgConfig {
            n: 6144,
            nnz_per_row: 16,
            iterations: 2,
            seed: 0xC6B,
        },
    )
}

fn run(trace: &Trace, threads: usize) -> RunReport {
    SimulationBuilder::trace(trace.clone())
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .memory_ratio(0.75)
        .threads(threads)
        .run()
}

fn run_with_stats(trace: &Trace, threads: usize) -> (RunReport, HostScaling) {
    SimulationBuilder::trace(trace.clone())
        .policy(PolicyKind::Cmcp { p: 0.5 })
        .memory_ratio(0.75)
        .threads(threads)
        .run_with_host_stats()
}

/// Every thread count must reproduce the single-thread report byte for
/// byte; a timing table for non-identical runs would be meaningless.
fn assert_byte_identity(trace: &Trace) {
    let want = format!("{:?}", run(trace, 1));
    for &threads in &THREAD_COUNTS[1..] {
        let got = format!("{:?}", run(trace, threads));
        assert_eq!(
            got, want,
            "threads={threads} report diverged from threads=1; refusing to time it"
        );
    }
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let trace = workload();
    assert_byte_identity(&trace);
    let mut group = c.benchmark_group("parallel_scaling");
    for threads in THREAD_COUNTS {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| black_box(run(&trace, threads).runtime_cycles));
        });
    }
    group.finish();

    // Cargo passes `--bench` even when the harness runs in `--test`
    // smoke mode, so gate the baseline rewrite on the absence of
    // `--test` too — CI smoke runs must not clobber the committed file.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test") {
        write_baseline(&trace);
    }
}

/// Times each configuration directly and records the means, so the
/// baseline file does not depend on the bench harness's output format.
fn write_baseline(trace: &Trace) {
    let sample_ms = |threads: usize| -> f64 {
        run(trace, threads); // warmup
        let start = Instant::now();
        for _ in 0..BASELINE_SAMPLES {
            black_box(run(trace, threads).runtime_cycles);
        }
        start.elapsed().as_secs_f64() * 1e3 / BASELINE_SAMPLES as f64
    };
    let per_thread: Vec<(usize, f64)> = THREAD_COUNTS.iter().map(|&t| (t, sample_ms(t))).collect();

    let entries: Vec<String> = per_thread
        .iter()
        .map(|(t, ms)| format!("    \"threads_{t}\": {ms:.3}"))
        .collect();
    let ms_at = |threads: usize| {
        per_thread
            .iter()
            .find(|(t, _)| *t == threads)
            .expect("thread count sampled")
            .1
    };
    let speedup_4 = per_thread[0].1 / ms_at(4);
    let speedup_8 = per_thread[0].1 / per_thread.last().unwrap().1;
    // Thread-level speedup needs host CPUs; record how many this
    // baseline had so readers can interpret the scaling column. On a
    // host with fewer than 4 CPUs the speedup numbers are noise —
    // worker threads time-slice one core — so the baseline says
    // explicitly that the scaling claim is delegated to the CI
    // scaling job (which *fails*, not skips, on such hosts) instead
    // of publishing numbers a reader might mistake for a measurement.
    let host_cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    let scaling_claim = if host_cpus >= 4 {
        "measured"
    } else {
        "delegated-to-ci"
    };
    // The phase-B decomposition: deterministic counters (identical at
    // every thread count) plus how many epochs each thread count
    // actually committed concurrently, so a flat speedup column is
    // diagnosable from this file alone (e.g. "all reconciliation").
    let (report, _) = run_with_stats(trace, 1);
    let s = report.scaling;
    let rounds: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let (_, host) = run_with_stats(trace, t);
            format!("    \"threads_{t}\": {}", host.parallel_rounds)
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"cg n=6144 nnz=16 iters=2\",\n  \"cores\": {CORES},\n  \
         \"policy\": \"cmcp p=0.5\",\n  \"memory_ratio\": 0.75,\n  \
         \"samples\": {BASELINE_SAMPLES},\n  \"host_cpus\": {host_cpus},\n  \
         \"scaling_claim\": \"{scaling_claim}\",\n  \
         \"byte_identical_reports\": true,\n  \
         \"mean_wall_ms\": {{\n{}\n  }},\n  \
         \"phase_b\": {{\n    \"epochs\": {},\n    \"fast_forwards\": {},\n    \
         \"committed\": {},\n    \"shardable\": {},\n    \"reconciled\": {},\n    \
         \"barrier_releases\": {}\n  }},\n  \
         \"parallel_rounds\": {{\n{}\n  }},\n  \
         \"speedup_4t_over_1t\": {speedup_4:.3},\n  \
         \"speedup_8t_over_1t\": {speedup_8:.3}\n}}\n",
        entries.join(",\n"),
        s.epochs,
        s.fast_forwards,
        s.committed,
        s.shardable,
        s.reconciled,
        s.releases,
        rounds.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_parallel.json"
    );
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
