//! Microbenchmarks of the replacement-policy data structures: per-event
//! costs of insert / map-count change / victim selection at a realistic
//! resident-set size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cmcp::arch::VirtPage;
use cmcp::policies::{NullOracle, PolicyKind, ReplacementPolicy};

const RESIDENT: u64 = 16_384;

fn filled(kind: PolicyKind) -> Box<dyn ReplacementPolicy> {
    let mut p = kind.build(RESIDENT as usize);
    for b in 0..RESIDENT {
        p.on_insert(VirtPage(b), (b % 7 + 1) as usize);
    }
    p
}

fn bench_insert_evict_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_insert_evict");
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Lfu,
        PolicyKind::Random,
        PolicyKind::Cmcp { p: 0.75 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut p = filled(kind);
            let mut next = RESIDENT;
            b.iter(|| {
                let v = p.select_victim(&mut NullOracle).unwrap();
                p.on_evict(v);
                p.on_insert(VirtPage(next), (next % 7 + 1) as usize);
                next += 1;
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_map_count_change(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_map_count_change");
    for kind in [PolicyKind::Fifo, PolicyKind::Cmcp { p: 0.75 }] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut p = filled(kind);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 97) % RESIDENT;
                p.on_map_count_change(VirtPage(i), ((i % 13) + 1) as usize);
            });
        });
    }
    group.finish();
}

fn bench_cmcp_placement_rule(c: &mut Criterion) {
    // The paper's §3 placement decision in isolation: priority group
    // full, new page displaces the minimum or goes to FIFO.
    c.bench_function("cmcp_placement_rule", |b| {
        let mut p = filled(PolicyKind::Cmcp { p: 0.5 });
        let mut next = RESIDENT;
        b.iter(|| {
            let v = p.select_victim(&mut NullOracle).unwrap();
            p.on_evict(v);
            // Alternate low/high counts to exercise both branches.
            p.on_insert(VirtPage(next), if next.is_multiple_of(2) { 1 } else { 56 });
            next += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_insert_evict_cycle,
    bench_map_count_change,
    bench_cmcp_placement_rule
);
criterion_main!(benches);
