//! Microbenchmarks of the address-translation structures: radix-table
//! walks, PSPT map/unmap with directory maintenance, and the cost gap
//! between precise (PSPT) and broadcast (regular) invalidation target
//! computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cmcp::arch::{CoreId, PageSize, PhysFrame, VirtPage};
use cmcp::pagetable::{PageTable, Pspt, PteFlags, RegularTables, TableScheme};

fn bench_radix_walk(c: &mut Criterion) {
    let mut table = PageTable::new();
    for b in 0..16_384u64 {
        table
            .map(
                VirtPage(b),
                PhysFrame(b as u32),
                PageSize::K4,
                PteFlags::WRITABLE,
            )
            .unwrap();
    }
    c.bench_function("radix_translate_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4097) % 16_384;
            black_box(table.translate(VirtPage(i)))
        });
    });
    c.bench_function("radix_translate_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4097) % 16_384;
            black_box(table.translate(VirtPage(1 << 30 | i)))
        });
    });
}

fn bench_map_unmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_unmap_roundtrip");
    for size in PageSize::ALL {
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let mut table = PageTable::new();
            let span = size.pages_4k() as u64;
            let mut slot = 0u64;
            b.iter(|| {
                let head = VirtPage((slot % 512) * 512);
                slot += 1;
                table
                    .map(head, PhysFrame(0), size, PteFlags::WRITABLE)
                    .unwrap();
                black_box(table.unmap(head, size));
                let _ = span;
            });
        });
    }
    group.finish();
}

fn bench_pspt_fault_path(c: &mut Criterion) {
    // The PSPT minor-fault path: consult directory, map into own table.
    let cores = 56;
    c.bench_function("pspt_map_copy_unmap_all", |b| {
        let pspt = Pspt::new(cores);
        let mut slot = 0u64;
        b.iter(|| {
            let head = VirtPage(slot % 4096);
            slot += 1;
            for core in 0..4u16 {
                let _ = pspt.map(
                    CoreId(core),
                    head,
                    PhysFrame((head.0 % 4096) as u32),
                    PageSize::K4,
                    true,
                );
            }
            black_box(pspt.unmap_all(head, PageSize::K4));
        });
    });
}

fn bench_invalidation_target_sets(c: &mut Criterion) {
    // PSPT returns the precise mapping set; regular tables must assume
    // every core. The *size* of these sets is what drives shootdowns.
    let cores = 56;
    let pspt = Pspt::new(cores);
    let reg = RegularTables::new(cores);
    for b in 0..1024u64 {
        pspt.map(
            CoreId((b % 3) as u16),
            VirtPage(b),
            PhysFrame(b as u32),
            PageSize::K4,
            true,
        )
        .unwrap();
        reg.map(
            CoreId(0),
            VirtPage(b),
            PhysFrame(b as u32),
            PageSize::K4,
            true,
        )
        .unwrap();
    }
    let mut group = c.benchmark_group("mapping_cores_query");
    group.bench_function("pspt_precise", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 1024;
            black_box(pspt.mapping_cores(VirtPage(i)).count())
        });
    });
    group.bench_function("regular_broadcast", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 1024;
            black_box(reg.mapping_cores(VirtPage(i)).count())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_radix_walk,
    bench_map_unmap,
    bench_pspt_fault_path,
    bench_invalidation_target_sets
);
criterion_main!(benches);
