//! Tracing-overhead microbenchmark: the same deterministic run with the
//! tracer compiled out (`NullTracer`, the default) and with live
//! per-core event rings.
//!
//! The `untraced` case is the acceptance gate — `Recorder::ENABLED`
//! gates every emission site at compile time, so it must stay within
//! noise (<2 %) of the pre-tracing fault path. The `ring_traced` case
//! documents the cost of turning tracing on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cmcp::kernel::{KernelConfig, Vmm};
use cmcp::sim::run_deterministic;
use cmcp::trace::RingTracer;
use cmcp::workloads::synthetic;

const CORES: usize = 4;
const BLOCKS: usize = 96;

fn config() -> KernelConfig {
    KernelConfig::new(CORES, BLOCKS)
}

fn bench_trace_overhead(c: &mut Criterion) {
    // 4 cores × 128 pages × 4 rounds into 96 blocks: every round evicts,
    // so the fault path (locks, DMA, shootdowns) dominates the run.
    let trace = synthetic::private_stream(CORES, 128, 4);

    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("untraced", |b| {
        b.iter(|| {
            let vmm = Vmm::new(config());
            black_box(run_deterministic(&vmm, &trace).runtime_cycles)
        });
    });
    group.bench_function("ring_traced", |b| {
        b.iter(|| {
            let vmm = Vmm::with_tracer(config(), RingTracer::new(CORES, 1 << 16));
            black_box(run_deterministic(&vmm, &trace).runtime_cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
