//! # cmcp-bench — the experiment harness
//!
//! One binary per artifact of the paper's evaluation:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig6` | Figure 6 — page distribution by number of mapping cores |
//! | `fig7` | Figure 7 — runtime scaling, 5 configurations, 8–56 cores |
//! | `fig8` | Figure 8 — relative performance vs memory provided |
//! | `fig9` | Figure 9 — impact of the prioritized-page ratio `p` |
//! | `fig10` | Figure 10 — page-size impact vs memory constraint |
//! | `table1` | Table 1 — per-core faults / shootdowns / dTLB misses |
//! | `ablation_policies` | beyond the paper: CLOCK, LFU, Random, adaptive CMCP |
//! | `ablation_aging` | beyond the paper: the CMCP aging tradeoff |
//! | `ablation_ipi` | beyond the paper: §3's hardware multicast-invalidation ask |
//! | `all` | everything above, writing `results/*.json` |
//!
//! The paper tunes the memory constraint per application "so that
//! relative performance with FIFO replacement results between 50% and
//! 60%" (§5.3) and tunes CMCP's `p` manually (§5.6). This harness does
//! the same for *this* system: [`tuned_constraint`] and [`best_p`] hold
//! the values found by that procedure (re-derivable with the `tune`
//! binary), and EXPERIMENTS.md records where they differ from the
//! paper's hardware.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use serde::Serialize;

use cmcp::{
    PageSize, PolicyKind, RunReport, SchemeChoice, SimulationBuilder, Trace, Workload,
    WorkloadClass,
};

/// The paper's core-count sweep (Figures 6, 7 and Table 1).
pub const CORE_COUNTS: [usize; 7] = [8, 16, 24, 32, 40, 48, 56];

/// Memory constraint per workload, tuned on this simulator by the
/// paper's §5.3 procedure: the largest ratio (in 0.01 steps) at which
/// PSPT+FIFO at 56 cores falls to 50–60 % of no-data-movement
/// performance. (The paper's own hardware arrived at 64 % for BT, 66 %
/// for LU, 37 % for CG and ~50 % for SCALE.)
pub fn tuned_constraint(w: Workload) -> f64 {
    match w {
        Workload::Bt(_) => 0.60,
        Workload::Lu(_) => 0.70,
        Workload::Cg(_) => 0.37,
        // SCALE uses the paper's stated "approximately half of the
        // memory requirement": below 0.5 this simulator's FIFO baseline
        // enters a knife-edge regime (see EXPERIMENTS.md).
        Workload::Scale(_) => 0.50,
    }
}

/// The best CMCP ratio `p` per workload, from this repository's Figure 9
/// run (the paper likewise reports the best `p` is workload-specific and
/// sets it manually).
pub fn best_p(w: Workload) -> f64 {
    match w {
        Workload::Bt(_) => 0.75,
        Workload::Lu(_) => 0.75,
        Workload::Cg(_) => 0.75,
        Workload::Scale(_) => 0.75,
    }
}

/// The five configurations of Figure 7, in the paper's legend order.
pub fn fig7_configs(w: Workload) -> Vec<(&'static str, SchemeChoice, PolicyKind, f64)> {
    let c = tuned_constraint(w);
    vec![
        (
            "no data movement",
            SchemeChoice::Regular,
            PolicyKind::Fifo,
            10.0,
        ),
        (
            "regular PT + FIFO",
            SchemeChoice::Regular,
            PolicyKind::Fifo,
            c,
        ),
        ("PSPT + FIFO", SchemeChoice::Pspt, PolicyKind::Fifo, c),
        ("PSPT + LRU", SchemeChoice::Pspt, PolicyKind::Lru, c),
        (
            "PSPT + CMCP",
            SchemeChoice::Pspt,
            PolicyKind::Cmcp { p: best_p(w) },
            c,
        ),
    ]
}

/// Caches workload traces across configurations of the same sweep —
/// trace generation (especially CG's sparse pattern) dominates otherwise.
#[derive(Default)]
pub struct TraceCache {
    traces: HashMap<(String, usize), Trace>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Returns (generating on first use) the trace for `w` on `cores`.
    pub fn get(&mut self, w: Workload, cores: usize) -> &Trace {
        self.traces
            .entry((w.label().to_string(), cores))
            .or_insert_with(|| w.trace(cores))
    }
}

/// Runs one configuration against a cached trace.
pub fn run_config(
    trace: &Trace,
    scheme: SchemeChoice,
    policy: PolicyKind,
    ratio: f64,
    page_size: PageSize,
) -> RunReport {
    SimulationBuilder::trace(trace.clone())
        .scheme(scheme)
        .policy(policy)
        .memory_ratio(ratio)
        .page_size(page_size)
        .run()
}

/// Like [`run_config`], but with the virtual-time event tracer on; the
/// returned report carries a breakdown validated against the kernel
/// counters, and the raw events are available for export.
pub fn run_config_traced(
    trace: &Trace,
    scheme: SchemeChoice,
    policy: PolicyKind,
    ratio: f64,
    page_size: PageSize,
) -> cmcp::TracedRun {
    SimulationBuilder::trace(trace.clone())
        .scheme(scheme)
        .policy(policy)
        .memory_ratio(ratio)
        .page_size(page_size)
        .run_traced()
}

/// Formats a markdown table.
pub fn markdown_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Writes a serializable result set under `results/<name>.json`.
pub fn save_results<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// All four workloads of a class.
pub fn workloads(class: WorkloadClass) -> [Workload; 4] {
    Workload::all(class)
}

/// Relative performance of `report` against a no-data-movement baseline
/// runtime (the paper's Figure 8/10 y-axis).
pub fn relative_perf(report: &RunReport, baseline_cycles: u64) -> f64 {
    baseline_cycles as f64 / report.runtime_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_and_p_are_defined_for_all_workloads() {
        for w in workloads(WorkloadClass::B) {
            let c = tuned_constraint(w);
            assert!(c > 0.0 && c <= 1.0, "{w}: {c}");
            let p = best_p(w);
            assert!((0.0..=1.0).contains(&p), "{w}: {p}");
        }
    }

    #[test]
    fn fig7_has_five_configs_in_paper_order() {
        let cfgs = fig7_configs(Workload::Cg(WorkloadClass::B));
        assert_eq!(cfgs.len(), 5);
        assert_eq!(cfgs[0].0, "no data movement");
        assert_eq!(cfgs[4].0, "PSPT + CMCP");
    }

    #[test]
    fn trace_cache_returns_same_trace() {
        let mut cache = TraceCache::new();
        let w = Workload::Scale(WorkloadClass::B);
        let a = cache.get(w, 2).total_touches();
        let b = cache.get(w, 2).total_touches();
        assert_eq!(a, b);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }
}
