//! Figure 10: the impact of page sizes (4 kB / 64 kB / 2 MB) on relative
//! performance as the memory constraint tightens — C-class workloads and
//! SCALE (big), PSPT + FIFO, 56 cores (paper §5.7).
//!
//! Shape targets: with plentiful memory 2 MB pages win (fewest TLB
//! misses); as pressure rises the data-movement cost of large pages
//! dominates and first 64 kB, then 4 kB pages take over for BT/LU, while
//! CG and SCALE keep favouring 64 kB over 4 kB even under high pressure.

use serde::Serialize;

use cmcp::{PageSize, PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{markdown_table, run_config, save_results, workloads, TraceCache};

const RATIOS: [f64; 8] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3];
const CORES: usize = 56;

#[derive(Serialize)]
struct Fig10Point {
    workload: String,
    page_size: String,
    memory_ratio: f64,
    relative_performance: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Figure 10 — page-size impact vs memory constraint");
    println!("(PSPT + FIFO, {CORES} cores, C-class / SCALE big)\n");
    for w in workloads(WorkloadClass::C) {
        println!("## {w}\n");
        let trace = cache.get(w, CORES).clone();
        // Each page size is normalized to ITS own unconstrained runtime,
        // as in the paper (each curve starts at 1.0 on the left).
        let headers: Vec<String> = std::iter::once("memory".to_string())
            .chain(PageSize::ALL.iter().map(|s| s.to_string()))
            .chain(std::iter::once("winner".to_string()))
            .collect();
        let mut baselines = Vec::new();
        for size in PageSize::ALL {
            let base = run_config(&trace, SchemeChoice::Pspt, PolicyKind::Fifo, 10.0, size);
            baselines.push(base.runtime_cycles);
        }
        // Cross-size comparison uses absolute runtimes: report the winner.
        let mut rows = Vec::new();
        for ratio in RATIOS {
            let mut row = vec![format!("{:.0}%", ratio * 100.0)];
            let mut abs = Vec::new();
            for (i, size) in PageSize::ALL.iter().enumerate() {
                let r = run_config(&trace, SchemeChoice::Pspt, PolicyKind::Fifo, ratio, *size);
                let rel = baselines[i] as f64 / r.runtime_cycles as f64;
                abs.push(r.runtime_cycles);
                row.push(format!("{rel:.2}"));
                results.push(Fig10Point {
                    workload: w.label().to_string(),
                    page_size: size.to_string(),
                    memory_ratio: ratio,
                    relative_performance: rel,
                });
            }
            let winner = PageSize::ALL[abs
                .iter()
                .enumerate()
                .min_by_key(|&(_, c)| *c)
                .map(|(i, _)| i)
                .unwrap()];
            row.push(winner.to_string());
            rows.push(row);
        }
        println!("{}", markdown_table(&headers, &rows));
    }
    println!("Paper check: 2MB wins at/near 100% memory; under pressure the");
    println!("crossover to 64kB (and for bt/lu eventually 4kB) appears.");
    save_results("fig10", &results);
}
