//! Pressure sweep over page sizes on a two-tier backing hierarchy: the
//! paper's Figure 9/10 story retold vertically. The best *static* page
//! size flips as memory pressure grows — 2 MB amortizes tier latency
//! when RAM is plentiful, 4 kB wastes the least capacity when it is
//! scarce — and the adaptive scheme (huge mappings at low pressure,
//! split-on-pressure as the device fills) must never be the worst of
//! them at any point of the sweep.
//!
//! The table is in virtual cycles, so the output is deterministic and
//! `results/BENCH_tiers.json` is covered by the golden-identity CI job.
//! The bin exits non-zero if the adaptive scheme fails to beat the worst
//! static size at any pressure point — the acceptance gate for the
//! adaptive controller.

use serde::Serialize;

use cmcp::{
    PageSize, PolicyKind, RunReport, SimulationBuilder, TierConfig, Workload, WorkloadClass,
};
use cmcp_bench::{best_p, markdown_table, save_results};

/// The sweep: from almost-uncontended down to heavy pressure.
const RATIOS: [f64; 5] = [0.9, 0.7, 0.5, 0.37, 0.25];
const CORES: usize = 8;

#[derive(Serialize)]
struct TierSweepPoint {
    memory_ratio: f64,
    page_size: String,
    runtime_cycles: u64,
    page_faults: u64,
    block_splits: u64,
    tier_penalty_cycles: u64,
}

fn run(ratio: f64, size: Option<PageSize>) -> RunReport {
    let w = Workload::Cg(WorkloadClass::B);
    let mut b = SimulationBuilder::workload(w)
        .cores(CORES)
        .policy(PolicyKind::Cmcp { p: best_p(w) })
        .tiers(TierConfig::parse("2tier").unwrap())
        .memory_ratio(ratio);
    b = match size {
        Some(s) => b.page_size(s),
        None => b.adaptive_page_size(),
    };
    b.run()
}

fn main() {
    let modes: [(&str, Option<PageSize>); 4] = [
        ("4kB", Some(PageSize::K4)),
        ("64kB", Some(PageSize::K64)),
        ("2MB", Some(PageSize::M2)),
        ("adaptive", None),
    ];
    println!(
        "# tier_sweep — page-size pressure sweep on the 2-tier hierarchy (cg.B, {CORES} cores)\n"
    );
    let headers: Vec<String> = std::iter::once("memory".to_string())
        .chain(modes.iter().map(|(label, _)| label.to_string()))
        .collect();
    let mut results = Vec::new();
    let mut rows = Vec::new();
    let mut adaptive_beats_worst = true;
    for ratio in RATIOS {
        let mut row = vec![format!("{:.0}%", ratio * 100.0)];
        let mut static_worst = 0u64;
        let mut adaptive_cycles = 0u64;
        for (label, size) in modes {
            let r = run(ratio, size);
            match size {
                Some(_) => static_worst = static_worst.max(r.runtime_cycles),
                None => adaptive_cycles = r.runtime_cycles,
            }
            row.push(format!("{}", r.runtime_cycles));
            results.push(TierSweepPoint {
                memory_ratio: ratio,
                page_size: label.to_string(),
                runtime_cycles: r.runtime_cycles,
                page_faults: r.per_core.iter().map(|c| c.page_faults).sum(),
                block_splits: r.global.block_splits,
                tier_penalty_cycles: r.per_core.iter().map(|c| c.tier_penalty_cycles).sum(),
            });
        }
        if adaptive_cycles >= static_worst {
            adaptive_beats_worst = false;
            eprintln!(
                "FAIL at {:.0}% memory: adaptive {adaptive_cycles} cycles is not faster \
                 than the worst static size ({static_worst})",
                ratio * 100.0
            );
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Check: the adaptive scheme beats the worst static page size at every");
    println!("pressure point (it adapts toward whichever static size wins there).");
    save_results("BENCH_tiers", &results);
    if !adaptive_beats_worst {
        std::process::exit(1);
    }
}
