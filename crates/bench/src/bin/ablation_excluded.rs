//! Beyond the paper: demonstrating §5.1's workload exclusions.
//!
//! The paper leaves EP, FT/MG and IS out of the evaluation: EP "uses
//! very small amount of memory", FT/MG are "highly memory intensive"
//! and infeasible out-of-core without algorithmic changes. We implement
//! EP, MG and FT and run them under the same constraints as the headline
//! workloads, making both exclusion arguments quantitative.

use cmcp::workloads::ep::{ep_trace, EpConfig};
use cmcp::workloads::ft::{ft_trace, FtConfig};
use cmcp::workloads::is::{is_trace, IsConfig};
use cmcp::workloads::mg::{mg_trace, MgConfig};
use cmcp::{PolicyKind, SchemeChoice, SimulationBuilder, Trace, Workload, WorkloadClass};

const CORES: usize = 32;

fn run(trace: &Trace, ratio: f64) -> (f64, f64) {
    let base = SimulationBuilder::trace(trace.clone())
        .memory_ratio(10.0)
        .run();
    let r = SimulationBuilder::trace(trace.clone())
        .scheme(SchemeChoice::Pspt)
        .policy(PolicyKind::Fifo)
        .memory_ratio(ratio)
        .run();
    (
        base.runtime_cycles as f64 / r.runtime_cycles as f64,
        r.avg_page_faults(),
    )
}

fn main() {
    println!("# Ablation — the workloads the paper excludes ({CORES} cores, PSPT+FIFO)\n");

    // EP at a constraint that devastates the others: nothing happens,
    // because its footprint is a handful of pages per core.
    let ep = ep_trace(CORES, &EpConfig::class_b());
    println!(
        "EP footprint: {} pages ({} kB total) — 'very small amount of memory'",
        ep.footprint_pages(),
        ep.footprint_pages() * 4
    );
    // Constrain EP in *absolute* terms: a device sized to crush cg.B
    // (half its declared requirement) still holds all of EP.
    let cg_for_sizing = Workload::Cg(WorkloadClass::B).trace(CORES);
    let device = cg_for_sizing.declared_blocks(cmcp::PageSize::K4) / 2;
    let base = SimulationBuilder::trace(ep.clone())
        .memory_ratio(10.0)
        .run();
    let constrained = SimulationBuilder::trace(ep.clone())
        .device_blocks(device)
        .run();
    println!(
        "  device sized at 50% of cg.B's requirement ({device} blocks): relative perf {:.2}, {} evictions",
        base.runtime_cycles as f64 / constrained.runtime_cycles as f64,
        constrained.global.evictions
    );
    println!();

    // MG vs the included workloads at 50% memory: the hierarchy sweep
    // has so little reuse that out-of-core execution collapses.
    let mg = mg_trace(CORES, &MgConfig::class_b());
    println!(
        "MG footprint: {} pages — 'highly memory intensive', low reuse ({:.1} touches/page)",
        mg.footprint_pages(),
        mg.total_touches() as f64 / mg.footprint_pages() as f64
    );
    let (mg_rel, mg_faults) = run(&mg, 0.5);
    println!("  50% memory: relative perf {mg_rel:.2}, {mg_faults:.0} faults/core");
    let cg = Workload::Cg(WorkloadClass::B).trace(CORES);
    let (cg_rel, _) = run(&cg, 0.5);
    println!("  (cg.B at the same 50%: {cg_rel:.2})");
    println!();

    // FT: every step transposes the whole complex field — all-to-all
    // access with no locality between axis passes.
    let ft = ft_trace(CORES, &FtConfig::class_b());
    println!(
        "FT footprint: {} pages — transpose passes touch everything in two orders",
        ft.footprint_pages()
    );
    let (ft_rel, ft_faults) = run(&ft, 0.5);
    println!("  50% memory: relative perf {ft_rel:.2}, {ft_faults:.0} faults/core");
    println!();

    // IS: the histogram scatter makes its pages all-core shared — PSPT's
    // precision buys nothing and CMCP's signal is uniform, so it would
    // not discriminate between the policies ("doesn't appear to have
    // high importance for our study").
    let is = is_trace(CORES, &IsConfig::class_b());
    let hist = cmcp::workloads::synthetic::sharing_histogram(&is);
    let total: usize = hist.iter().sum();
    let all_core: usize = hist[CORES - 1];
    println!(
        "IS footprint: {} pages; {all_core}/{total} pages mapped by all {CORES} cores",
        is.footprint_pages()
    );
    let (is_rel, is_faults) = run(&is, 0.5);
    println!("  50% memory: relative perf {is_rel:.2}, {is_faults:.0} faults/core");
    println!();
    println!("Reading: EP is untouched by any constraint (its working set always");
    println!("fits), while MG loses far more than the included workloads — the");
    println!("paper's two exclusion arguments, reproduced.");
}
