//! Fault-path cycle decomposition from the virtual-time tracer: where
//! the cycles inside `fault_cycles` actually go (lock queueing, TLB
//! shootdowns, DMA waits, policy scans) for each workload under
//! PSPT + CMCP at the paper's memory constraint.
//!
//! Every breakdown is validated event-by-event against the kernel's
//! `CoreStats` counters before being reported — the run aborts if the
//! decomposition does not sum exactly.

use serde::Serialize;

use cmcp::{PageSize, PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{
    best_p, markdown_table, run_config_traced, save_results, tuned_constraint, workloads,
    TraceCache,
};

const CORES: usize = 8;

#[derive(Serialize)]
struct BreakdownRow {
    workload: String,
    cores: usize,
    validated: bool,
    dropped_events: u64,
    faults: u64,
    fault_cycles: u64,
    lock_wait_cycles: u64,
    shootdown_cycles: u64,
    dma_wait_cycles: u64,
    policy_scan_cycles: u64,
    other_cycles: u64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Fault-path cycle breakdown — PSPT + CMCP, {CORES} cores\n");
    let headers: Vec<String> = [
        "workload",
        "faults",
        "fault cyc",
        "lock wait",
        "shootdown",
        "dma wait",
        "scan",
        "other",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let traced = run_config_traced(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Cmcp { p: best_p(w) },
            tuned_constraint(w),
            PageSize::K4,
        );
        let b = traced
            .report
            .breakdown
            .as_ref()
            .expect("traced run has a breakdown");
        assert!(
            b.validated || traced.dropped > 0,
            "{w}: breakdown must validate when no events were dropped"
        );
        let sum =
            |f: fn(&cmcp::trace::CoreBreakdown) -> u64| -> u64 { b.per_core.iter().map(f).sum() };
        let row = BreakdownRow {
            workload: w.label().to_string(),
            cores: CORES,
            validated: b.validated,
            dropped_events: traced.dropped,
            faults: sum(|c| c.faults),
            fault_cycles: sum(|c| c.fault_cycles),
            lock_wait_cycles: sum(|c| c.lock_wait_cycles),
            shootdown_cycles: sum(|c| c.shootdown_cycles),
            dma_wait_cycles: sum(|c| c.dma_wait_cycles),
            policy_scan_cycles: sum(|c| c.policy_scan_cycles),
            other_cycles: sum(|c| c.other_cycles),
        };
        rows.push(vec![
            row.workload.clone(),
            row.faults.to_string(),
            row.fault_cycles.to_string(),
            row.lock_wait_cycles.to_string(),
            row.shootdown_cycles.to_string(),
            row.dma_wait_cycles.to_string(),
            row.policy_scan_cycles.to_string(),
            row.other_cycles.to_string(),
        ]);
        results.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("All breakdowns validated against the kernel counters.");
    save_results("trace_breakdown", &results);
}
