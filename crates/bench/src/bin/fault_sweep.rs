//! Resilience sweep: how much virtual time the recovery machinery costs
//! as the PCIe/backing path degrades. Each workload runs under
//! PSPT + CMCP at its tuned memory constraint with DMA error rates from
//! 0 % to 10 % (plus a fixed 0.5 % ENOSPC rate), all under seed 42 so
//! every cell is bit-reproducible.
//!
//! Reported per cell: runtime relative to the fault-free run, injected
//! fault totals, retries, backoff cycles, and the degradation gauges
//! (synchronous write-backs, quarantined frames).

use serde::Serialize;

use cmcp::{FaultPlan, PageSize, PolicyKind, SchemeChoice, SimulationBuilder, WorkloadClass};
use cmcp_bench::{best_p, markdown_table, save_results, tuned_constraint, workloads, TraceCache};

const CORES: usize = 8;
const DMA_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.1];
const ENOSPC_RATE: f64 = 0.005;
const SEED: u64 = 42;

#[derive(Serialize)]
struct SweepRow {
    workload: String,
    dma_rate: f64,
    runtime_cycles: u64,
    relative_runtime: f64,
    dma_errors: u64,
    enospc_events: u64,
    retries: u64,
    backoff_cycles: u64,
    sync_writebacks: u64,
    quarantined_frames: u64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Fault sweep — PSPT + CMCP, {CORES} cores, seed {SEED}\n");
    let headers: Vec<String> = [
        "workload",
        "dma rate",
        "rel. runtime",
        "dma errs",
        "enospc",
        "retries",
        "backoff cyc",
        "sync wb",
        "quarantined",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let mut baseline = 0u64;
        for rate in DMA_RATES {
            let plan = FaultPlan::new(SEED).dma_errors(rate).enospc(ENOSPC_RATE);
            let r = SimulationBuilder::trace(trace.clone())
                .scheme(SchemeChoice::Pspt)
                .policy(PolicyKind::Cmcp { p: best_p(w) })
                .memory_ratio(tuned_constraint(w))
                .page_size(PageSize::K4)
                .fault_plan(plan)
                .run();
            if rate == 0.0 {
                baseline = r.runtime_cycles;
            }
            let row = SweepRow {
                workload: w.label().to_string(),
                dma_rate: rate,
                runtime_cycles: r.runtime_cycles,
                relative_runtime: r.runtime_cycles as f64 / baseline.max(1) as f64,
                dma_errors: r.global.dma_errors,
                enospc_events: r.global.enospc_events,
                retries: r.per_core.iter().map(|c| c.fault_retries).sum(),
                backoff_cycles: r.per_core.iter().map(|c| c.retry_backoff_cycles).sum(),
                sync_writebacks: r.global.sync_writebacks,
                quarantined_frames: r.global.quarantined_frames,
            };
            rows.push(vec![
                row.workload.clone(),
                format!("{:.1}%", rate * 100.0),
                format!("{:.3}", row.relative_runtime),
                row.dma_errors.to_string(),
                row.enospc_events.to_string(),
                row.retries.to_string(),
                row.backoff_cycles.to_string(),
                row.sync_writebacks.to_string(),
                row.quarantined_frames.to_string(),
            ]);
            results.push(row);
        }
    }
    println!("{}", markdown_table(&headers, &rows));
    save_results("fault_sweep", &results);
}
