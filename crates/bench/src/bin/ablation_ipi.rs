//! Beyond the paper: what if the hardware could invalidate remote TLBs
//! cheaply?
//!
//! Paper §2.3 closes with: "we would encourage hardware vendors to put a
//! stronger focus on TLB invalidation methods for many-core CPUs". This
//! ablation grants that wish in the cost model — scaling the IPI send,
//! handle and ack costs down by 1×/4×/16×/64× — and measures how much of
//! the regular-page-table collapse (and of LRU's loss to FIFO) is
//! explained purely by shootdown cost.

use serde::Serialize;

use cmcp::{CostModel, PolicyKind, SchemeChoice, SimulationBuilder, Workload, WorkloadClass};
use cmcp_bench::{markdown_table, save_results, tuned_constraint, TraceCache};

const CORES: usize = 56;
const SCALES: [u64; 4] = [1, 4, 16, 64];

#[derive(Serialize)]
struct IpiRow {
    ipi_cost_divisor: u64,
    regular_fifo_rel: f64,
    pspt_lru_rel: f64,
    pspt_fifo_rel: f64,
}

fn scaled_cost(divisor: u64) -> CostModel {
    let mut c = CostModel::default();
    c.ipi_send /= divisor;
    c.ipi_handle /= divisor;
    c.ipi_ack_base /= divisor;
    c.ipi_ack_per_target /= divisor;
    c
}

fn main() {
    let mut cache = TraceCache::new();
    let w = Workload::Cg(WorkloadClass::B);
    let trace = cache.get(w, CORES).clone();
    let ratio = tuned_constraint(w);
    println!("# Ablation — cheap hardware TLB invalidation ({w}, {CORES} cores)\n");
    let headers: Vec<String> = [
        "IPI cost ÷",
        "regular PT + FIFO",
        "PSPT + LRU",
        "PSPT + FIFO",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for divisor in SCALES {
        let cost = scaled_cost(divisor);
        let base = SimulationBuilder::trace(trace.clone())
            .cost_model(cost.clone())
            .memory_ratio(10.0)
            .run();
        let run = |scheme, policy| {
            let r = SimulationBuilder::trace(trace.clone())
                .scheme(scheme)
                .policy(policy)
                .cost_model(cost.clone())
                .memory_ratio(ratio)
                .run();
            base.runtime_cycles as f64 / r.runtime_cycles as f64
        };
        let reg = run(SchemeChoice::Regular, PolicyKind::Fifo);
        let lru = run(SchemeChoice::Pspt, PolicyKind::Lru);
        let fifo = run(SchemeChoice::Pspt, PolicyKind::Fifo);
        rows.push(vec![
            format!("{divisor}"),
            format!("{reg:.2}"),
            format!("{lru:.2}"),
            format!("{fifo:.2}"),
        ]);
        results.push(IpiRow {
            ipi_cost_divisor: divisor,
            regular_fifo_rel: reg,
            pspt_lru_rel: lru,
            pspt_fifo_rel: fifo,
        });
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Reading: as invalidation gets cheaper, regular tables and LRU close");
    println!("much of their gap to PSPT+FIFO — the software costs (lock");
    println!("serialization, fault handling, DMA) account for the rest.");
    save_results("ablation_ipi", &results);
}
