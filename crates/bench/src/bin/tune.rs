//! Re-derives the tuned memory constraints (paper §5.3: "we set the
//! memory constraint so that relative performance with FIFO replacement
//! results between 50% and 60% for each application").
//!
//! Sweeps the ratio downward in 0.05 steps at 56 cores and reports, per
//! workload, the relative-performance curve plus the chosen constraint —
//! the values hard-coded in `cmcp_bench::tuned_constraint` (re-run this
//! after changing the cost model or workload scaling).

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{run_config, tuned_constraint, workloads, TraceCache};

const CORES: usize = 56;

fn main() {
    let mut cache = TraceCache::new();
    println!("# Constraint tuning (PSPT + FIFO, {CORES} cores)\n");
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let base = run_config(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Fifo,
            10.0,
            cmcp::PageSize::K4,
        );
        print!("{:12}", w.label());
        let mut chosen: Option<f64> = None;
        let mut ratio = 0.95;
        while ratio > 0.15 {
            let r = run_config(
                &trace,
                SchemeChoice::Pspt,
                PolicyKind::Fifo,
                ratio,
                cmcp::PageSize::K4,
            );
            let rel = base.runtime_cycles as f64 / r.runtime_cycles as f64;
            print!(" {ratio:.2}:{rel:.2}");
            if chosen.is_none() && (0.5..=0.62).contains(&rel) {
                chosen = Some(ratio);
            }
            ratio -= 0.05;
        }
        match chosen {
            Some(c) => println!("\n  -> first ratio in the 50-60% window: {c:.2} (harness uses {:.2})\n", tuned_constraint(w)),
            None => println!("\n  -> no ratio reached the 50-60% window; harness uses {:.2} (see EXPERIMENTS.md)\n", tuned_constraint(w)),
        }
    }
}
