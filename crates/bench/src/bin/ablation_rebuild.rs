//! Beyond the paper: periodic PSPT rebuilding (§5.6 future work).
//!
//! "One could also argue that the number of mapping cores of a given
//! page is dynamic with the time … a more dynamic solution with
//! periodically rebuilding PSPT could address this issue as well."
//!
//! The rebuild tears down every PTE so core-map counts re-form from the
//! current access pattern. The interesting trade: refreshed counts can
//! help CMCP on workloads whose sharing drifts (BT flips its partition
//! every phase), but each rebuild costs a wave of minor faults and TLB
//! invalidations.

use cmcp::{PolicyKind, SimulationBuilder, Workload, WorkloadClass};
use cmcp_bench::{best_p, markdown_table, save_results, tuned_constraint};

use serde::Serialize;

const CORES: usize = 56;
/// Rebuild periods in ms of virtual time (0 = off).
const PERIODS_MS: [u64; 4] = [0, 50, 10, 2];

#[derive(Serialize)]
struct RebuildRow {
    workload: String,
    rebuild_period_ms: u64,
    relative_performance: f64,
    rebuilds: u64,
    minor_fault_increase: f64,
}

fn main() {
    println!("# Ablation — periodic PSPT rebuilding under CMCP ({CORES} cores)\n");
    let mut results = Vec::new();
    let headers: Vec<String> = ["workload", "period", "rel perf", "rebuilds", "faults/core"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for w in [
        Workload::Bt(WorkloadClass::B),
        Workload::Cg(WorkloadClass::B),
    ] {
        let trace = w.trace(CORES);
        let ratio = tuned_constraint(w);
        let base = SimulationBuilder::trace(trace.clone())
            .memory_ratio(10.0)
            .run();
        let mut fault_base = 0.0;
        for period_ms in PERIODS_MS {
            let period = period_ms * 1_053_000; // ms → cycles at 1.053 GHz
            let r = SimulationBuilder::trace(trace.clone())
                .policy(PolicyKind::Cmcp { p: best_p(w) })
                .memory_ratio(ratio)
                .pspt_rebuild_period(period)
                .run();
            let rel = base.runtime_cycles as f64 / r.runtime_cycles as f64;
            if period_ms == 0 {
                fault_base = r.avg_page_faults();
            }
            rows.push(vec![
                w.label().to_string(),
                if period_ms == 0 {
                    "off".into()
                } else {
                    format!("{period_ms} ms")
                },
                format!("{rel:.2}"),
                r.global.rebuilds.to_string(),
                format!("{:.0}", r.avg_page_faults()),
            ]);
            results.push(RebuildRow {
                workload: w.label().to_string(),
                rebuild_period_ms: period_ms,
                relative_performance: rel,
                rebuilds: r.global.rebuilds,
                minor_fault_increase: r.avg_page_faults() / fault_base.max(1.0),
            });
        }
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Reading: moderate rebuild periods refresh stale core-map counts at");
    println!("a visible minor-fault cost; very aggressive periods erase the");
    println!("counts faster than CMCP can use them.");
    save_results("ablation_rebuild", &results);
}
