//! Hot-path microbench: single-fault latency and sustained simulated-fault
//! throughput on the CG class-B configuration.
//!
//! Two views of the same path:
//!
//! * **single-fault** — drives `Vmm::handle_fault` directly (plus the
//!   page walks the runner performs around it) on a kernel sized exactly
//!   like the acceptance run (cg.B at 8 cores, PSPT + CMCP, 37 % memory),
//!   isolating the latency of one fault in three regimes: cold major
//!   faults (allocation, no eviction), steady-state evicting faults
//!   (victim selection, unmap, shootdown, remap — the paper's hot loop),
//!   and PSPT minor-copy faults. Faults are read-only so the measurement
//!   captures the table/policy/metadata path, not the DMA cost model.
//! * **sustained** — the full deterministic cg.B run, reporting wall-clock
//!   faults per second (and the virtual runtime, which must be
//!   bit-identical across representation changes).
//!
//! The steady-state single-fault throughput is the number the
//! `perf-regression` CI job gates on against `results/BENCH_hotpath.json`
//! (>25 % regression fails; see `--compare`).
//!
//! Usage:
//!   fault_latency [--quick] [--skip-sustained] [--save]
//!                 [--compare <baseline.json>] [--out <fresh.json>]

use std::time::Instant;

use serde::Serialize;

use cmcp::{PageSize, PolicyKind, SchemeChoice, Workload, WorkloadClass};
use cmcp_arch::{CoreId, VirtPage};
use cmcp_bench::{best_p, run_config, tuned_constraint};
use cmcp_kernel::{KernelConfig, Vmm};

/// Regression threshold for `--compare`: fresh throughput below
/// (1 - 0.25) x baseline fails the gate.
const REGRESSION_TOLERANCE: f64 = 0.25;

#[derive(Serialize)]
struct ConfigDesc {
    workload: String,
    cores: usize,
    scheme: String,
    policy: String,
    memory_ratio: f64,
    block_size: String,
    device_blocks: usize,
}

#[derive(Serialize)]
struct SingleFault {
    /// Mean ns per cold major fault (allocation, no eviction).
    cold_major_ns: f64,
    /// Mean ns per steady-state fault (every fault evicts a victim).
    steady_evict_ns: f64,
    /// Mean ns per PSPT minor-copy fault (sibling PTE copy).
    minor_copy_ns: f64,
    /// Gate metric: steady-state faults per wall-clock second.
    throughput_per_sec: f64,
}

#[derive(Serialize)]
struct Sustained {
    wall_ms: f64,
    page_faults: u64,
    faults_per_sec: f64,
    /// Virtual runtime — representation changes must not move this.
    runtime_cycles: u64,
}

#[derive(Serialize)]
struct HotpathResults {
    config: ConfigDesc,
    single_fault: SingleFault,
    sustained: Option<Sustained>,
}

struct Args {
    quick: bool,
    skip_sustained: bool,
    save: bool,
    compare: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        skip_sustained: false,
        save: false,
        compare: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--skip-sustained" => args.skip_sustained = true,
            "--save" => args.save = true,
            "--compare" => args.compare = it.next(),
            "--out" => args.out = it.next(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The acceptance configuration: cg.B at 8 cores, PSPT + CMCP at its
/// tuned `p`, memory constrained to the tuned 37 % of the footprint.
fn bench_kernel() -> (Vmm, usize) {
    let w = Workload::Cg(WorkloadClass::B);
    let trace = w.trace(8);
    let ratio = tuned_constraint(w);
    let footprint = trace.declared_blocks(PageSize::K4);
    let device_blocks = ((footprint as f64 * ratio).ceil() as usize).max(1);
    let cfg = KernelConfig {
        cores: 8,
        block_size: PageSize::K4,
        device_blocks,
        scheme: cmcp_kernel::SchemeChoice::Pspt,
        policy: PolicyKind::Cmcp { p: best_p(w) },
        cost: Default::default(),
        scan_budget: 0,
        pspt_rebuild_period: 0,
        fault_plan: None,
        adaptive: false,
    };
    (Vmm::new(cfg), device_blocks)
}

/// One fault as the runner performs it on a TLB miss: failed walk, fault
/// handler, successful walk, accessed-bit update.
#[inline]
fn miss_path(vmm: &Vmm, core: CoreId, page: VirtPage) {
    if vmm.translate(core, page).is_none() {
        vmm.handle_fault(core, page, false);
    }
    vmm.mark_accessed(core, page, false);
}

/// Times `faults` iterations of `f(i)` and returns mean ns per call.
fn time_loop(faults: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..faults {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / faults as f64
}

fn measure_single_fault(quick: bool) -> (SingleFault, ConfigDesc) {
    let reps = if quick { 1 } else { 3 };
    let (mut cold_best, mut steady_best, mut minor_best) = (f64::MAX, f64::MAX, f64::MAX);
    let mut device_blocks = 0;
    let mut inval = Vec::new();
    for _ in 0..reps {
        let (vmm, blocks) = bench_kernel();
        device_blocks = blocks;
        let cold_n = (blocks as u64).saturating_sub(8).max(1);
        let steady_n = if quick {
            cold_n.min(20_000)
        } else {
            cold_n * 4
        };
        let minor_n = cold_n.min(if quick { 2_000 } else { 50_000 });

        // Cold major faults: fresh pages while the pool still has frames.
        let cold = time_loop(cold_n, |i| {
            vmm.drain_invalidations(CoreId(0), &mut inval);
            inval.clear();
            miss_path(&vmm, CoreId(0), VirtPage(i));
        });
        // Steady state: every further fresh fault must evict a victim.
        let steady = time_loop(steady_n, |i| {
            vmm.drain_invalidations(CoreId(0), &mut inval);
            inval.clear();
            miss_path(&vmm, CoreId(0), VirtPage(cold_n + i));
        });
        // Minor copies on a fresh, never-evicting kernel: core 0 faults
        // the blocks in (untimed), then core 1 copies every PTE.
        let (vmm2, _) = bench_kernel();
        for i in 0..minor_n {
            miss_path(&vmm2, CoreId(0), VirtPage(i));
        }
        let minor = time_loop(minor_n, |i| {
            vmm2.drain_invalidations(CoreId(1), &mut inval);
            inval.clear();
            miss_path(&vmm2, CoreId(1), VirtPage(i));
        });
        cold_best = cold_best.min(cold);
        steady_best = steady_best.min(steady);
        minor_best = minor_best.min(minor);
    }
    let sf = SingleFault {
        cold_major_ns: cold_best,
        steady_evict_ns: steady_best,
        minor_copy_ns: minor_best,
        throughput_per_sec: 1e9 / steady_best,
    };
    let w = Workload::Cg(WorkloadClass::B);
    let desc = ConfigDesc {
        workload: w.label().to_string(),
        cores: 8,
        scheme: "PSPT".to_string(),
        policy: format!("CMCP p={}", best_p(w)),
        memory_ratio: tuned_constraint(w),
        block_size: "4k".to_string(),
        device_blocks,
    };
    (sf, desc)
}

fn measure_sustained() -> Sustained {
    let w = Workload::Cg(WorkloadClass::B);
    let trace = w.trace(8);
    let t0 = Instant::now();
    let report = run_config(
        &trace,
        SchemeChoice::Pspt,
        PolicyKind::Cmcp { p: best_p(w) },
        tuned_constraint(w),
        PageSize::K4,
    );
    let wall = t0.elapsed();
    let faults: u64 = report.per_core.iter().map(|c| c.page_faults).sum();
    Sustained {
        wall_ms: wall.as_secs_f64() * 1e3,
        page_faults: faults,
        faults_per_sec: faults as f64 / wall.as_secs_f64(),
        runtime_cycles: report.runtime_cycles,
    }
}

fn compare_against(baseline_path: &str, fresh: &HotpathResults) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e:?}"))?;
    let base = v
        .get("single_fault")
        .and_then(|s| s.get("throughput_per_sec"))
        .and_then(|t| t.as_f64())
        .ok_or_else(|| format!("{baseline_path} lacks single_fault.throughput_per_sec"))?;
    let got = fresh.single_fault.throughput_per_sec;
    let floor = base * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "perf gate: baseline {:.0} faults/s, fresh {:.0} faults/s, floor {:.0} ({}%)",
        base,
        got,
        floor,
        (1.0 - REGRESSION_TOLERANCE) * 100.0
    );
    if got < floor {
        return Err(format!(
            "throughput regression: {got:.0} faults/s is more than {:.0}% below baseline {base:.0}",
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    println!("# fault_latency — hot-path microbench (cg.B, 8 cores, PSPT + CMCP)\n");

    let (single_fault, config) = measure_single_fault(args.quick);
    println!(
        "single fault: cold major {:.0} ns, steady evicting {:.0} ns, minor copy {:.0} ns",
        single_fault.cold_major_ns, single_fault.steady_evict_ns, single_fault.minor_copy_ns
    );
    println!(
        "single-fault throughput (steady state): {:.0} faults/s",
        single_fault.throughput_per_sec
    );

    let sustained = if args.skip_sustained || (args.quick && args.compare.is_none()) {
        None
    } else {
        let s = measure_sustained();
        println!(
            "sustained cg.B run: {:.0} ms wall, {} faults, {:.0} faults/s, {} virtual cycles",
            s.wall_ms, s.page_faults, s.faults_per_sec, s.runtime_cycles
        );
        Some(s)
    };

    let results = HotpathResults {
        config,
        single_fault,
        sustained,
    };

    if let Some(path) = &args.out {
        match serde_json::to_string_pretty(&results) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("warning: cannot write {path}: {e}");
                } else {
                    eprintln!("(fresh numbers written to {path})");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize results: {e:?}"),
        }
    }
    if args.save {
        cmcp_bench::save_results("BENCH_hotpath", &results);
    }
    if let Some(baseline) = &args.compare {
        if let Err(msg) = compare_against(baseline, &results) {
            eprintln!("FAIL: {msg}");
            eprintln!("(an intentional regression can be merged with the `perf-override` label)");
            std::process::exit(1);
        }
        println!("perf gate: OK");
    }
}
