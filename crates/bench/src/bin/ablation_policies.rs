//! Beyond the paper: the full policy zoo on every workload.
//!
//! Paper §3 claims that CLOCK and LFU "also rely on the access bit of
//! the PTEs and thus would suffer from the same issues of extra TLB
//! invalidations" as LRU. This ablation implements and measures them,
//! adds a random-eviction floor, and runs the §5.6 future-work adaptive
//! CMCP — all under the Figure 7 constraints at 56 cores.

use serde::Serialize;

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{
    best_p, markdown_table, run_config, save_results, tuned_constraint, workloads, TraceCache,
};

const CORES: usize = 56;

#[derive(Serialize)]
struct AblationRow {
    workload: String,
    policy: String,
    relative_performance: f64,
    page_faults_per_core: f64,
    remote_invalidations_per_core: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Ablation — all policies at the Figure 7 constraints ({CORES} cores)\n");
    for w in workloads(WorkloadClass::B) {
        println!("## {w}\n");
        let trace = cache.get(w, CORES).clone();
        let ratio = tuned_constraint(w);
        let base = run_config(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Fifo,
            10.0,
            cmcp::PageSize::K4,
        );
        let policies: Vec<(&str, PolicyKind)> = vec![
            ("FIFO", PolicyKind::Fifo),
            ("LRU", PolicyKind::Lru),
            ("CLOCK", PolicyKind::Clock),
            ("LFU", PolicyKind::Lfu),
            ("RANDOM", PolicyKind::Random),
            ("CMCP", PolicyKind::Cmcp { p: best_p(w) }),
            ("CMCP-adaptive", PolicyKind::AdaptiveCmcp),
        ];
        let headers: Vec<String> = ["policy", "rel. perf", "faults/core", "remote inv/core"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut rows = Vec::new();
        for (name, policy) in policies {
            let r = run_config(
                &trace,
                SchemeChoice::Pspt,
                policy,
                ratio,
                cmcp::PageSize::K4,
            );
            let rel = base.runtime_cycles as f64 / r.runtime_cycles as f64;
            rows.push(vec![
                name.to_string(),
                format!("{rel:.2}"),
                format!("{:.0}", r.avg_page_faults()),
                format!("{:.0}", r.avg_remote_invalidations()),
            ]);
            results.push(AblationRow {
                workload: w.label().to_string(),
                policy: name.to_string(),
                relative_performance: rel,
                page_faults_per_core: r.avg_page_faults(),
                remote_invalidations_per_core: r.avg_remote_invalidations(),
            });
        }
        println!("{}", markdown_table(&headers, &rows));
    }
    println!("Paper check (§3): CLOCK and LFU incur the same accessed-bit");
    println!("shootdown overheads as LRU; the statistics-free policies (FIFO,");
    println!("RANDOM, CMCP) keep remote invalidations low.");
    save_results("ablation_policies", &results);
}
