//! NUMA node-count sweep: the Mitosis/numaPTE story grafted onto the
//! paper's policies. As the topology grows from one node to four, every
//! minor fault from a node without a local page-table replica pays a
//! cross-node walk of the home node's master table; with replication
//! on, that walk is paid once per node (the replica sync) and the rest
//! are local. The average fault latency gap between replication-off
//! and replication-on must therefore *grow with the node count* — that
//! is the acceptance gate this bin enforces, for CMCP and LRU at
//! least (FIFO rides along for the comparison table).
//!
//! The table is in virtual cycles, so the output is deterministic and
//! `results/BENCH_numa.json` is covered by the goldens-check CI step.

use serde::Serialize;

use cmcp::{NumaConfig, PolicyKind, RunReport, SimulationBuilder, Workload, WorkloadClass};
use cmcp_bench::{best_p, markdown_table, save_results};

const CORES: usize = 16;
/// Tight enough that eviction pressure is real (the policies diverge)
/// while the minor-fault sharing traffic that replication amortizes
/// still dominates.
const MEMORY: f64 = 0.425;
const TOPOLOGIES: [&str; 3] = ["1node", "2node", "4node"];

#[derive(Serialize)]
struct NumaSweepPoint {
    topology: String,
    nodes: usize,
    policy: String,
    replicate: bool,
    runtime_cycles: u64,
    page_faults: u64,
    avg_fault_cycles: u64,
    replica_syncs: u64,
    replica_invalidations: u64,
    page_migrations: u64,
    remote_spills: u64,
}

fn run(policy: PolicyKind, topology: &str, replicate: bool) -> RunReport {
    let w = Workload::Cg(WorkloadClass::B);
    SimulationBuilder::workload(w)
        .cores(CORES)
        .policy(policy)
        .numa(NumaConfig::parse(topology).expect("preset parses"))
        .numa_replication(replicate)
        .memory_ratio(MEMORY)
        .run()
}

/// Average fault latency in cycles (the paper's per-fault unit).
fn avg_fault_cycles(r: &RunReport) -> u64 {
    let faults: u64 = r.per_core.iter().map(|c| c.page_faults).sum();
    let cycles: u64 = r.per_core.iter().map(|c| c.fault_cycles).sum();
    cycles / faults.max(1)
}

fn main() {
    let w = Workload::Cg(WorkloadClass::B);
    let policies: [(&str, PolicyKind); 3] = [
        ("cmcp", PolicyKind::Cmcp { p: best_p(w) }),
        ("fifo", PolicyKind::Fifo),
        ("lru", PolicyKind::Lru),
    ];
    println!(
        "# numa_sweep — replication-on vs -off fault latency by node count (cg.B, {CORES} cores)\n"
    );
    let headers: Vec<String> = std::iter::once("policy".to_string())
        .chain(TOPOLOGIES.iter().flat_map(|t| {
            let n = t.trim_end_matches("node").to_string();
            [format!("{n}n on"), format!("{n}n off"), format!("{n}n gap")]
        }))
        .collect();
    let mut results = Vec::new();
    let mut rows = Vec::new();
    let mut gate_ok = true;
    for (label, policy) in policies {
        let mut row = vec![label.to_string()];
        let mut prev_gap: Option<u64> = None;
        for topology in TOPOLOGIES {
            let nodes = NumaConfig::parse(topology).unwrap().len();
            let mut lat = [0u64; 2];
            for (i, replicate) in [true, false].into_iter().enumerate() {
                let r = run(policy, topology, replicate);
                lat[i] = avg_fault_cycles(&r);
                let (syncs, invs, migs, spills) = match &r.numa {
                    Some(n) => (
                        n.replica_syncs,
                        n.replica_invalidations,
                        n.page_migrations,
                        n.remote_spills,
                    ),
                    None => (0, 0, 0, 0),
                };
                results.push(NumaSweepPoint {
                    topology: topology.to_string(),
                    nodes,
                    policy: label.to_string(),
                    replicate,
                    runtime_cycles: r.runtime_cycles,
                    page_faults: r.per_core.iter().map(|c| c.page_faults).sum(),
                    avg_fault_cycles: lat[i],
                    replica_syncs: syncs,
                    replica_invalidations: invs,
                    page_migrations: migs,
                    remote_spills: spills,
                });
            }
            // Replication can only remove remote walks, never add them,
            // so the off-minus-on gap is non-negative by construction.
            let gap = lat[1].saturating_sub(lat[0]);
            row.push(format!("{}", lat[0]));
            row.push(format!("{}", lat[1]));
            row.push(format!("{gap}"));
            // The gate: for CMCP and LRU the replication gap must grow
            // strictly with the node count (1 node → 0 by identity).
            if let Some(prev) = prev_gap {
                if (label == "cmcp" || label == "lru") && gap <= prev {
                    gate_ok = false;
                    eprintln!(
                        "FAIL: {label} replication gap did not grow at {topology}: \
                         {gap} <= {prev} cycles/fault"
                    );
                }
            }
            prev_gap = Some(gap);
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Columns: avg fault cycles with replication on / off, and the off-on gap.");
    println!("Gate: the gap grows with node count for CMCP and LRU.");
    save_results("BENCH_numa", &results);
    if !gate_ok {
        std::process::exit(1);
    }
}
