//! Figure 6: distribution of pages according to the number of CPU cores
//! mapping them, for cg.B, lu.B, bt.B and SCALE (sml) at 8–56 cores.
//!
//! The paper reads this directly out of PSPT's per-core page tables; so
//! do we: each workload runs unconstrained under PSPT, and the kernel's
//! sharing histogram (blocks by mapping-core count) is sampled at the
//! end of the run, then bucketed like the paper's stacked bars.

use serde::Serialize;

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{markdown_table, run_config, save_results, workloads, CORE_COUNTS};

#[derive(Serialize)]
struct Fig6Row {
    workload: String,
    cores: usize,
    /// `histogram[k]` = fraction of pages mapped by exactly k+1 cores.
    histogram: Vec<f64>,
}

fn bucket_labels(cores: usize) -> Vec<String> {
    let mut labels: Vec<String> = (1..=8)
        .map(|k| format!("{k} core{}", if k > 1 { "s" } else { "" }))
        .collect();
    if cores > 8 {
        labels.push(">8 cores".to_string());
    }
    labels
}

fn main() {
    let mut results = Vec::new();
    println!("# Figure 6 — distribution of pages by number of mapping cores\n");
    for w in workloads(WorkloadClass::B) {
        println!("## {w}\n");
        let headers: Vec<String> = std::iter::once("cores".to_string())
            .chain(bucket_labels(56))
            .collect();
        let mut rows = Vec::new();
        for &cores in &CORE_COUNTS {
            let trace = w.trace(cores);
            let report = run_config(
                &trace,
                SchemeChoice::Pspt,
                PolicyKind::Fifo,
                10.0, // unconstrained: the full footprint stays mapped
                cmcp::PageSize::K4,
            );
            let hist = report
                .sharing_histogram
                .expect("PSPT provides the histogram");
            let total: usize = hist.iter().sum();
            let frac = |k: usize| hist.get(k).copied().unwrap_or(0) as f64 / total.max(1) as f64;
            // Buckets: 1..=8 cores, then ">8".
            let mut buckets: Vec<f64> = (0..8).map(frac).collect();
            let tail: f64 = (8..hist.len()).map(frac).sum();
            buckets.push(tail);
            let mut row = vec![cores.to_string()];
            row.extend(
                buckets
                    .iter()
                    .take(if cores > 8 { 9 } else { 8 })
                    .map(|f| format!("{:.1}%", f * 100.0)),
            );
            while row.len() < headers.len() {
                row.push("-".to_string());
            }
            rows.push(row);
            results.push(Fig6Row {
                workload: w.label().to_string(),
                cores,
                histogram: buckets,
            });
        }
        println!("{}", markdown_table(&headers, &rows));
    }
    println!("Paper check: for every workload the majority of pages are mapped by");
    println!("only a few cores — CG/SCALE >50% private with the rest mostly 2-core;");
    println!("LU/BT less regular but still dominated by small mapping counts.");
    save_results("fig6", &results);
}
