//! Table 1: per-core average page faults, remote TLB invalidations and
//! dTLB misses for FIFO / LRU / CMCP on every workload, as a function of
//! the number of cores (paper §5.5, "What is wrong with LRU?").
//!
//! Shape targets: LRU cuts page faults versus FIFO but multiplies remote
//! TLB invalidations (the accessed-bit scanning cost); CMCP also cuts
//! faults yet *reduces* remote invalidations below FIFO; dTLB misses stay
//! within the same order across policies and fall with the core count.

use serde::Serialize;

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{
    best_p, markdown_table, run_config, save_results, tuned_constraint, workloads, TraceCache,
    CORE_COUNTS,
};

#[derive(Serialize)]
struct Table1Row {
    workload: String,
    policy: String,
    cores: usize,
    page_faults: f64,
    remote_tlb_invalidations: f64,
    dtlb_misses: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Table 1 — per-core averages by policy and core count\n");
    for w in workloads(WorkloadClass::B) {
        println!("## {w}\n");
        let policies: Vec<(&str, PolicyKind)> = vec![
            ("FIFO", PolicyKind::Fifo),
            ("LRU", PolicyKind::Lru),
            ("CMCP", PolicyKind::Cmcp { p: best_p(w) }),
        ];
        let headers: Vec<String> = ["policy", "attribute"]
            .iter()
            .map(|s| s.to_string())
            .chain(CORE_COUNTS.iter().map(|c| format!("{c} cores")))
            .collect();
        let mut rows = Vec::new();
        for (pname, policy) in policies {
            let mut faults = Vec::new();
            let mut invs = Vec::new();
            let mut tlbs = Vec::new();
            for &cores in &CORE_COUNTS {
                let trace = cache.get(w, cores).clone();
                let r = run_config(
                    &trace,
                    SchemeChoice::Pspt,
                    policy,
                    tuned_constraint(w),
                    cmcp::PageSize::K4,
                );
                faults.push(r.avg_page_faults());
                invs.push(r.avg_remote_invalidations());
                tlbs.push(r.avg_dtlb_misses());
                results.push(Table1Row {
                    workload: w.label().to_string(),
                    policy: pname.to_string(),
                    cores,
                    page_faults: r.avg_page_faults(),
                    remote_tlb_invalidations: r.avg_remote_invalidations(),
                    dtlb_misses: r.avg_dtlb_misses(),
                });
            }
            let fmt = |v: &[f64]| v.iter().map(|x| format!("{x:.0}")).collect::<Vec<_>>();
            let mut r1 = vec![pname.to_string(), "page faults".to_string()];
            r1.extend(fmt(&faults));
            let mut r2 = vec![String::new(), "remote TLB invalidations".to_string()];
            r2.extend(fmt(&invs));
            let mut r3 = vec![String::new(), "dTLB misses".to_string()];
            r3.extend(fmt(&tlbs));
            rows.push(r1);
            rows.push(r2);
            rows.push(r3);
        }
        println!("{}", markdown_table(&headers, &rows));
    }
    println!("Paper check: LRU < FIFO in page faults but several-fold higher in");
    println!("remote TLB invalidations; CMCP < FIFO in both; dTLB misses shrink");
    println!("with more cores (smaller per-core working sets).");
    save_results("table1", &results);
}
