//! Runs every experiment binary's logic in sequence by invoking the
//! sibling binaries. Useful for regenerating all of `results/` and the
//! numbers in EXPERIMENTS.md in one command:
//!
//! ```text
//! cargo run --release -p cmcp-bench --bin all
//! ```

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("target dir");
    let bins = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table1",
        "trace_breakdown",
        "ablation_policies",
        "ablation_aging",
        "ablation_ipi",
        "ablation_rebuild",
        "ablation_excluded",
    ];
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed; JSON in ./results/");
}
