//! Figure 8: relative performance with respect to physical memory
//! provided — PSPT + FIFO, 4 kB pages, 56 cores, sweeping the "memory
//! provided" ratio, normalized to the no-data-movement runtime.
//!
//! Shape targets (paper §5.3): LU and BT degrade gradually as soon as
//! memory drops below 100 % of the requirement; CG and SCALE hold full
//! performance down to ~35 % and ~55 % respectively (sparse / rarely
//! touched allocations), then drop steadily.

use serde::Serialize;

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{markdown_table, run_config, save_results, workloads, TraceCache};

const RATIOS: [f64; 10] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.45, 0.4, 0.3, 0.2];
const CORES: usize = 56;

#[derive(Serialize)]
struct Fig8Point {
    workload: String,
    memory_ratio: f64,
    relative_performance: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Figure 8 — relative performance vs memory provided");
    println!("(PSPT + FIFO, 4 kB pages, {CORES} cores)\n");
    let headers: Vec<String> = std::iter::once("memory".to_string())
        .chain(
            workloads(WorkloadClass::B)
                .iter()
                .map(|w| w.label().to_string()),
        )
        .collect();
    let mut rows = Vec::new();
    let mut baselines = Vec::new();
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let base = run_config(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Fifo,
            10.0,
            cmcp::PageSize::K4,
        );
        baselines.push((w, trace, base.runtime_cycles));
    }
    for ratio in RATIOS {
        let mut row = vec![format!("{:.0}%", ratio * 100.0)];
        for (w, trace, base) in &baselines {
            let r = run_config(
                trace,
                SchemeChoice::Pspt,
                PolicyKind::Fifo,
                ratio,
                cmcp::PageSize::K4,
            );
            let rel = *base as f64 / r.runtime_cycles as f64;
            row.push(format!("{:.2}", rel));
            results.push(Fig8Point {
                workload: w.label().to_string(),
                memory_ratio: ratio,
                relative_performance: rel,
            });
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Paper check: bt/lu degrade as soon as memory < 100%; cg holds ~1.0");
    println!("until ~40% and SCALE until ~55%, then both drop steadily.");
    save_results("fig8", &results);
}
