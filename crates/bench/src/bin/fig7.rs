//! Figure 7: runtime of the NAS benchmarks and SCALE (sml) at 8–56
//! cores under five configurations — no data movement, regular page
//! tables + FIFO, PSPT + FIFO, PSPT + LRU, PSPT + CMCP — with the memory
//! constraint tuned so PSPT+FIFO lands at 50–60 % of no-data-movement
//! performance (paper §5.3/§5.4).
//!
//! Shape targets: regular PT stops scaling past ~24 cores; LRU runs
//! *slower* than FIFO despite fewer faults; CMCP beats FIFO on every
//! workload (the paper reports +38/25/23/13 % at 56 cores for
//! BT/LU/CG/SCALE).

use serde::Serialize;

use cmcp::WorkloadClass;
use cmcp_bench::{
    fig7_configs, markdown_table, run_config, save_results, workloads, TraceCache, CORE_COUNTS,
};

#[derive(Serialize)]
struct Fig7Point {
    workload: String,
    config: String,
    cores: usize,
    runtime_cycles: u64,
    runtime_ms: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Figure 7 — runtime vs cores for five configurations\n");
    for w in workloads(WorkloadClass::B) {
        println!("## {w}  (runtime in virtual ms; lower is better)\n");
        let configs = fig7_configs(w);
        let headers: Vec<String> = std::iter::once("cores".to_string())
            .chain(configs.iter().map(|(n, ..)| n.to_string()))
            .collect();
        let mut rows = Vec::new();
        let mut at56: Vec<(String, u64)> = Vec::new();
        for &cores in &CORE_COUNTS {
            let trace = cache.get(w, cores).clone();
            let mut row = vec![cores.to_string()];
            for (name, scheme, policy, ratio) in &configs {
                let r = run_config(&trace, *scheme, *policy, *ratio, cmcp::PageSize::K4);
                row.push(format!("{:.2}", r.runtime_secs * 1e3));
                if cores == 56 {
                    at56.push((name.to_string(), r.runtime_cycles));
                }
                results.push(Fig7Point {
                    workload: w.label().to_string(),
                    config: name.to_string(),
                    cores,
                    runtime_cycles: r.runtime_cycles,
                    runtime_ms: r.runtime_secs * 1e3,
                });
            }
            rows.push(row);
        }
        println!("{}", markdown_table(&headers, &rows));
        // The paper's headline comparison at 56 cores.
        let find = |n: &str| at56.iter().find(|(name, _)| name == n).map(|&(_, c)| c);
        if let (Some(fifo), Some(lru), Some(cmcp_rt)) =
            (find("PSPT + FIFO"), find("PSPT + LRU"), find("PSPT + CMCP"))
        {
            println!(
                "At 56 cores: CMCP vs FIFO: {:+.1}%   LRU vs FIFO: {:+.1}%\n",
                (fifo as f64 / cmcp_rt as f64 - 1.0) * 100.0,
                (fifo as f64 / lru as f64 - 1.0) * 100.0,
            );
        }
    }
    save_results("fig7", &results);
}
