//! Beyond the paper: the CMCP aging tradeoff.
//!
//! Paper §3 only says prioritized pages "slowly fall back to FIFO". This
//! ablation sweeps the aging period (insertions between demotions of the
//! oldest prioritized block) from *off* to *aggressive* and shows the
//! two failure modes: with no aging, dead prioritized pages are hoarded
//! (harmful when sharing phases change, e.g. BT's partition flip); with
//! aggressive aging, genuinely hot shared pages churn through FIFO and
//! the priority group stops protecting anything.

use serde::Serialize;

use cmcp::policies::CmcpConfig;
use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{
    best_p, markdown_table, run_config, save_results, tuned_constraint, workloads, TraceCache,
};

const CORES: usize = 56;
const PERIODS: [u64; 5] = [0, 128, 32, 8, 1]; // 0 = aging disabled

#[derive(Serialize)]
struct AgingRow {
    workload: String,
    aging_period: u64,
    relative_performance: f64,
    aged_out_fraction_note: String,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Ablation — CMCP aging period ({CORES} cores, p per Figure 9)\n");
    let headers: Vec<String> = std::iter::once("aging period".to_string())
        .chain(
            workloads(WorkloadClass::B)
                .iter()
                .map(|w| w.label().to_string()),
        )
        .collect();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let ratio = tuned_constraint(w);
        let base = run_config(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Fifo,
            10.0,
            cmcp::PageSize::K4,
        );
        let mut col = Vec::new();
        for period in PERIODS {
            let cfg = CmcpConfig {
                p: best_p(w),
                aging_period: period,
                aging_batch: 1,
            };
            let r = run_config(
                &trace,
                SchemeChoice::Pspt,
                PolicyKind::CmcpTuned(cfg),
                ratio,
                cmcp::PageSize::K4,
            );
            let rel = base.runtime_cycles as f64 / r.runtime_cycles as f64;
            col.push(rel);
            results.push(AgingRow {
                workload: w.label().to_string(),
                aging_period: period,
                relative_performance: rel,
                aged_out_fraction_note: if period == 0 {
                    "aging disabled".to_string()
                } else {
                    format!("1 demotion per {period} inserts")
                },
            });
        }
        columns.push(col);
    }
    let mut rows = Vec::new();
    for (i, period) in PERIODS.iter().enumerate() {
        let label = if *period == 0 {
            "off".to_string()
        } else {
            period.to_string()
        };
        let mut row = vec![label];
        for col in &columns {
            row.push(format!("{:.2}", col[i]));
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Reading: each column is relative performance (higher is better);");
    println!("the default (32) balances hoarding (off) against churn (1).");
    save_results("ablation_aging", &results);
}
