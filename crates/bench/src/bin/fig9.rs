//! Figure 9: the impact of the ratio of prioritized pages `p` in CMCP,
//! reported as performance improvement over PSPT+FIFO at 56 cores.
//!
//! Shape target (paper §5.6): the best `p` is workload-specific — some
//! workloads prefer a small priority group, others want nearly all pages
//! ordered by core-map count — and a badly chosen `p` can forfeit most
//! of CMCP's advantage.

use serde::Serialize;

use cmcp::{PolicyKind, SchemeChoice, WorkloadClass};
use cmcp_bench::{
    markdown_table, run_config, save_results, tuned_constraint, workloads, TraceCache,
};

const PS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const CORES: usize = 56;

#[derive(Serialize)]
struct Fig9Point {
    workload: String,
    p: f64,
    improvement_over_fifo_pct: f64,
}

fn main() {
    let mut cache = TraceCache::new();
    let mut results = Vec::new();
    println!("# Figure 9 — CMCP improvement over FIFO vs ratio p ({CORES} cores)\n");
    let headers: Vec<String> = std::iter::once("p".to_string())
        .chain(
            workloads(WorkloadClass::B)
                .iter()
                .map(|w| w.label().to_string()),
        )
        .collect();
    let mut columns = Vec::new();
    for w in workloads(WorkloadClass::B) {
        let trace = cache.get(w, CORES).clone();
        let ratio = tuned_constraint(w);
        let fifo = run_config(
            &trace,
            SchemeChoice::Pspt,
            PolicyKind::Fifo,
            ratio,
            cmcp::PageSize::K4,
        );
        let mut col = Vec::new();
        for p in PS {
            let r = run_config(
                &trace,
                SchemeChoice::Pspt,
                PolicyKind::Cmcp { p },
                ratio,
                cmcp::PageSize::K4,
            );
            let improvement = (fifo.runtime_cycles as f64 / r.runtime_cycles as f64 - 1.0) * 100.0;
            col.push(improvement);
            results.push(Fig9Point {
                workload: w.label().to_string(),
                p,
                improvement_over_fifo_pct: improvement,
            });
        }
        columns.push(col);
    }
    let mut rows = Vec::new();
    for (i, p) in PS.iter().enumerate() {
        let mut row = vec![format!("{p}")];
        for col in &columns {
            row.push(format!("{:+.1}%", col[i]));
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("Paper check: the improvement depends strongly on p and the best p");
    println!("differs per workload; p=0 degenerates to FIFO (≈0% improvement).");
    save_results("fig9", &results);
}
