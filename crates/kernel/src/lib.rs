//! # cmcp-kernel — the simulated lightweight-kernel memory manager
//!
//! The paper's system software layer: a minimal kernel (in the spirit of
//! IHK/McKernel) that demand-pages a computation area between the
//! co-processor's small device RAM and the large host memory over PCIe.
//!
//! * [`frames`] — the device RAM frame pool, handed out in block-sized
//!   (4 kB / 64 kB / 2 MB) aligned runs.
//! * [`backing`] — the host-side backing store reached through the DMA
//!   engine.
//! * [`stats`] — per-core counters matching the paper's Table 1 (page
//!   faults, remote TLB invalidations) plus cycle breakdowns.
//! * [`numa`] — per-node accounting for multi-node topologies: home-node
//!   placement, page-table replica sets, and per-node frame budgets
//!   (never constructed for single-node runs, which stay bit-identical
//!   to the pre-NUMA kernel).
//! * [`offload`] — host-offloaded system calls over the IKC channel
//!   (paper §2.1: "heavy system calls are shipped to and executed on
//!   the host").
//! * [`config`] — experiment configuration: cores, table scheme, policy,
//!   page size, memory constraint.
//! * [`vmm`] — the virtual memory manager itself: the page-fault path
//!   (allocate / evict / DMA / map / shootdown), the accessed-bit scan
//!   timer that drives LRU-class policies, and the [`vmm::Vmm`] facade
//!   the execution engine talks to.
//!
//! All virtual-time costs are charged here, from the [`cmcp_arch`] cost
//! model, so the policies in `cmcp-core` stay pure algorithms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backing;
pub mod buddy;
pub mod config;
pub mod frames;
pub mod numa;
pub mod offload;
pub mod stats;
pub mod vmm;

pub use backing::{BackingStore, TierCounters, TieredStore};
pub use buddy::BuddyPool;
pub use config::{KernelConfig, SchemeChoice};
pub use frames::FramePool;
pub use numa::{BlockNuma, NumaBooks};
pub use offload::{OffloadEngine, Syscall};
pub use stats::{CoreStats, CoreStatsSnapshot, GlobalStats, GlobalStatsSnapshot};
pub use vmm::{FaultKind, Vmm};
