//! Execution statistics, shaped after the paper's Table 1.
//!
//! Per-core counters are atomics so the parallel engine can update them
//! without locks; snapshots are plain serde-able values used by the
//! experiment harness.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use serde::{Deserialize, Serialize};

/// Adds `delta` to a counter that has a single writing thread.
///
/// Every [`CoreStats`] field except `remote_inv_received` is written
/// only from the owning core's execution context (the fault handler and
/// recovery paths all run on the faulting core); only snapshots read
/// them cross-thread. A plain load + store is therefore sufficient, and
/// cheaper than the atomic RMW on the fault hot path — `fetch_add` was
/// several of the costliest instructions per fault. Cross-thread
/// counters (`remote_inv_received`, everything in [`GlobalStats`]) must
/// keep using `fetch_add`.
#[inline]
pub fn owner_add(counter: &AtomicU64, delta: u64) {
    counter.store(counter.load(Relaxed) + delta, Relaxed);
}

/// Per-core live counters (atomics).
#[derive(Debug, Default)]
pub struct CoreStats {
    /// Page faults taken by this core.
    pub page_faults: AtomicU64,
    /// TLB invalidation requests *received* from other cores — the
    /// "remote TLB invalidations" column of Table 1.
    pub remote_inv_received: AtomicU64,
    /// Shootdown IPIs *sent* by this core (requester side).
    pub remote_inv_sent: AtomicU64,
    /// Cycles spent inside the page-fault handler.
    pub fault_cycles: AtomicU64,
    /// Cycles spent waiting for DMA transfers (incl. queueing).
    pub dma_wait_cycles: AtomicU64,
    /// Cycles spent in the shootdown send loop + ack wait.
    pub shootdown_cycles: AtomicU64,
    /// Cycles spent queueing on page-table locks.
    pub lock_wait_cycles: AtomicU64,
    /// Host-side residency stripe-lock acquisitions on this core's fault
    /// path (zero virtual cost — host parallelism bookkeeping only).
    pub shard_lock_acquires: AtomicU64,
    /// Faults injected against this core by the active fault plan.
    pub faults_injected: AtomicU64,
    /// Recovery retries this core performed after injected faults.
    pub fault_retries: AtomicU64,
    /// Cycles this core spent in exponential retry backoff (a component
    /// of `fault_cycles`).
    pub retry_backoff_cycles: AtomicU64,
    /// Frames this core moved to the quarantine list after
    /// unrecoverable page-in DMA errors.
    pub quarantines: AtomicU64,
    /// Cycles this core spent on backing-tier latency/bandwidth
    /// penalties — page-ins served from (and write-backs landing on) a
    /// tier below the host DRAM. A component of `fault_cycles`; zero in
    /// flat single-tier runs.
    pub tier_penalty_cycles: AtomicU64,
    /// Cycles this core spent on page-table replica traffic — syncing a
    /// node's replica on its first fault, invalidating replica-holding
    /// nodes on eviction, or walking a remote node's table when
    /// replication is off. A component of `fault_cycles`; zero in
    /// single-node runs. Deliberately **not** part of
    /// [`CoreStatsSnapshot`] (which is serialized into committed golden
    /// reports); surfaced through the separate NUMA report section.
    pub replica_sync_cycles: AtomicU64,
    /// Cycles this core spent migrating blocks between home nodes. A
    /// component of `fault_cycles`; zero in single-node runs. Not part
    /// of [`CoreStatsSnapshot`] — see `replica_sync_cycles`.
    pub migration_cycles: AtomicU64,
}

impl CoreStats {
    /// Immutable copy of the current values.
    pub fn snapshot(&self) -> CoreStatsSnapshot {
        CoreStatsSnapshot {
            page_faults: self.page_faults.load(Relaxed),
            remote_inv_received: self.remote_inv_received.load(Relaxed),
            remote_inv_sent: self.remote_inv_sent.load(Relaxed),
            fault_cycles: self.fault_cycles.load(Relaxed),
            dma_wait_cycles: self.dma_wait_cycles.load(Relaxed),
            shootdown_cycles: self.shootdown_cycles.load(Relaxed),
            lock_wait_cycles: self.lock_wait_cycles.load(Relaxed),
            shard_lock_acquires: self.shard_lock_acquires.load(Relaxed),
            faults_injected: self.faults_injected.load(Relaxed),
            fault_retries: self.fault_retries.load(Relaxed),
            retry_backoff_cycles: self.retry_backoff_cycles.load(Relaxed),
            quarantines: self.quarantines.load(Relaxed),
            tier_penalty_cycles: self.tier_penalty_cycles.load(Relaxed),
            dtlb_misses: 0,
            dtlb_accesses: 0,
            cycles: 0,
        }
    }
}

/// Frozen per-core statistics; `dtlb_*` and `cycles` are filled in by the
/// engine, which owns the TLBs and clocks.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct CoreStatsSnapshot {
    /// Page faults taken by this core.
    pub page_faults: u64,
    /// Remote TLB invalidation requests received (Table 1).
    pub remote_inv_received: u64,
    /// Shootdown IPIs sent.
    pub remote_inv_sent: u64,
    /// Cycles inside the fault handler.
    pub fault_cycles: u64,
    /// Cycles waiting on DMA.
    pub dma_wait_cycles: u64,
    /// Cycles in shootdown send/ack.
    pub shootdown_cycles: u64,
    /// Cycles queueing on page-table locks.
    pub lock_wait_cycles: u64,
    /// Residency stripe-lock acquisitions (host-side, zero virtual cost).
    pub shard_lock_acquires: u64,
    /// Faults injected against this core.
    pub faults_injected: u64,
    /// Recovery retries performed.
    pub fault_retries: u64,
    /// Cycles spent in retry backoff.
    pub retry_backoff_cycles: u64,
    /// Frames quarantined by this core.
    pub quarantines: u64,
    /// Cycles spent on backing-tier penalties (zero when flat).
    pub tier_penalty_cycles: u64,
    /// Data TLB misses (page walks) — Table 1.
    pub dtlb_misses: u64,
    /// Translated accesses.
    pub dtlb_accesses: u64,
    /// Final virtual time of the core.
    pub cycles: u64,
}

/// Kernel-global live counters.
#[derive(Debug, Default)]
pub struct GlobalStats {
    /// Blocks evicted.
    pub evictions: AtomicU64,
    /// Evictions that required a dirty write-back.
    pub writebacks: AtomicU64,
    /// Accessed-bit scan timer ticks executed.
    pub scan_ticks: AtomicU64,
    /// PTEs examined by scans (timer + reclaim second chances).
    pub scan_ptes: AtomicU64,
    /// Blocks faulted in from the backing store (vs first-touch).
    pub refaults: AtomicU64,
    /// PSPT rebuild passes executed.
    pub rebuilds: AtomicU64,
    /// Injected DMA transfer errors (both directions).
    pub dma_errors: AtomicU64,
    /// Injected DMA latency spikes.
    pub latency_spikes: AtomicU64,
    /// Injected IKC message drops.
    pub ikc_drops: AtomicU64,
    /// Injected backing-store write failures (ENOSPC).
    pub enospc_events: AtomicU64,
    /// Write-backs that degraded from async offload to the synchronous
    /// path (≥1 retry, or issued after offload-engine death).
    pub sync_writebacks: AtomicU64,
    /// Syscalls served by the synchronous fallback after offload death.
    pub sync_syscalls: AtomicU64,
    /// Frames currently on the quarantine list.
    pub quarantined_frames: AtomicU64,
    /// Spans pushed down a tier by backing-capacity cascades.
    pub tier_demotions: AtomicU64,
    /// Spans pulled up a tier by page-in promotion.
    pub tier_promotions: AtomicU64,
    /// Oversized victims split one granularity level under pressure
    /// instead of being evicted whole (adaptive page-size mode).
    pub block_splits: AtomicU64,
    /// Page-table replica syncs: a node's first faulting core pulled a
    /// local replica of a block's mapping (replication on only). Not in
    /// [`GlobalStatsSnapshot`] (serialized into committed goldens);
    /// surfaced through the NUMA report section.
    pub replica_syncs: AtomicU64,
    /// Replica invalidations: eviction told a replica-holding node to
    /// drop its entry (or, replication off, updated the home node's
    /// master table remotely). Not in [`GlobalStatsSnapshot`].
    pub replica_invalidations: AtomicU64,
    /// Blocks whose home node migrated toward their map-count-weighted
    /// access center. Not in [`GlobalStatsSnapshot`].
    pub page_migrations: AtomicU64,
    /// First-touch allocations that could not land on the faulting
    /// core's node (its DRAM share was full) and spilled to another
    /// node. Not in [`GlobalStatsSnapshot`].
    pub remote_spills: AtomicU64,
}

impl GlobalStats {
    /// Immutable copy of the current values.
    pub fn snapshot(&self) -> GlobalStatsSnapshot {
        GlobalStatsSnapshot {
            evictions: self.evictions.load(Relaxed),
            writebacks: self.writebacks.load(Relaxed),
            scan_ticks: self.scan_ticks.load(Relaxed),
            scan_ptes: self.scan_ptes.load(Relaxed),
            refaults: self.refaults.load(Relaxed),
            rebuilds: self.rebuilds.load(Relaxed),
            dma_errors: self.dma_errors.load(Relaxed),
            latency_spikes: self.latency_spikes.load(Relaxed),
            ikc_drops: self.ikc_drops.load(Relaxed),
            enospc_events: self.enospc_events.load(Relaxed),
            sync_writebacks: self.sync_writebacks.load(Relaxed),
            sync_syscalls: self.sync_syscalls.load(Relaxed),
            quarantined_frames: self.quarantined_frames.load(Relaxed),
            tier_demotions: self.tier_demotions.load(Relaxed),
            tier_promotions: self.tier_promotions.load(Relaxed),
            block_splits: self.block_splits.load(Relaxed),
        }
    }
}

/// Frozen kernel-global statistics.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct GlobalStatsSnapshot {
    /// Blocks evicted.
    pub evictions: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
    /// Scan timer ticks.
    pub scan_ticks: u64,
    /// PTEs examined by statistics scans.
    pub scan_ptes: u64,
    /// Faults on blocks seen before (working-set refaults).
    pub refaults: u64,
    /// PSPT rebuild passes executed.
    pub rebuilds: u64,
    /// Injected DMA transfer errors.
    pub dma_errors: u64,
    /// Injected DMA latency spikes.
    pub latency_spikes: u64,
    /// Injected IKC message drops.
    pub ikc_drops: u64,
    /// Injected backing-store write failures.
    pub enospc_events: u64,
    /// Write-backs degraded to the synchronous path.
    pub sync_writebacks: u64,
    /// Syscalls served synchronously after offload death.
    pub sync_syscalls: u64,
    /// Frames held in quarantine at run end.
    pub quarantined_frames: u64,
    /// Spans demoted by backing-capacity cascades.
    pub tier_demotions: u64,
    /// Spans promoted by page-in accesses.
    pub tier_promotions: u64,
    /// Oversized victims split instead of evicted (adaptive mode).
    pub block_splits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = CoreStats::default();
        s.page_faults.fetch_add(3, Relaxed);
        s.remote_inv_received.fetch_add(7, Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.page_faults, 3);
        assert_eq!(snap.remote_inv_received, 7);
        assert_eq!(snap.dtlb_misses, 0, "engine fills TLB stats later");
    }

    #[test]
    fn global_snapshot() {
        let g = GlobalStats::default();
        g.evictions.fetch_add(2, Relaxed);
        g.writebacks.fetch_add(1, Relaxed);
        let snap = g.snapshot();
        assert_eq!(snap.evictions, 2);
        assert_eq!(snap.writebacks, 1);
        assert_eq!(snap.scan_ticks, 0);
    }
}
