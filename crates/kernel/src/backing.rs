//! The host-side backing hierarchy.
//!
//! Under the paper's model the application's whole virtual address space
//! conceptually lives in host memory; the device RAM holds the currently
//! resident subset. The store tracks which blocks have ever been
//! materialized so the kernel can distinguish first-touch faults (zero
//! fill, no transfer needed in from the host) from refaults (a real
//! host→device DMA), and it counts write-backs for the reports.
//!
//! Two representations share the [`TieredStore`] front:
//!
//! * [`BackingStore`] — the original flat host-DRAM set, used whenever
//!   the run has a single zero-cost tier *and* a fixed page size. It is
//!   bit-identical (and instruction-identical on the fault hot path) to
//!   the pre-tier kernel, which is what keeps the committed goldens and
//!   the perf-regression gate honest.
//! * [`TieredStore::Tiered`] — an N-tier hierarchy (HBM/DRAM/NVM/
//!   CXL-style, see [`cmcp_arch::tier`]) of byte ranges ("spans"). Each
//!   write-back lands on the tier chosen by the victim's core-map count
//!   (CMCP's signal decides *how far down* to demote, not just whether
//!   to evict); bounded tiers that overflow cascade their FIFO-oldest
//!   span one tier further; a page-in from tier *t* pays that tier's
//!   latency/bandwidth penalty and promotes the span one tier up when
//!   the tier above has room. Spans make the store correct for the
//!   adaptive page-size mode too, where a 2 MB write-back may later be
//!   refaulted — or partially overwritten — at 64 kB granularity.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

use parking_lot::Mutex;

use cmcp_arch::{FaultInjector, FaultSite, FxHashSet, TierConfig, VirtPage};

/// Host-side block store (content-free: the simulator tracks residency
/// and movement, not data bytes). The presence set is probed on every
/// major fault, so it hashes with the seed-free `FxHashSet`, and an
/// atomic mirror of its size lets the probe skip the lock entirely
/// while no write-back has happened yet (read-mostly workloads never
/// pay for the store they never use).
#[derive(Debug, Default)]
pub struct BackingStore {
    present: Mutex<FxHashSet<u64>>,
    /// `present.len()`, maintained under the lock, readable without it.
    count: AtomicUsize,
}

impl BackingStore {
    /// An empty store: every first touch is a zero-fill fault.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Whether `block` has been written back before (a fault on it needs
    /// a host→device transfer).
    pub fn contains(&self, block: VirtPage) -> bool {
        // An empty store can answer from the counter alone. A racing
        // first write-back is benign: the kernel only queries blocks it
        // holds non-resident, and a block cannot be written back while a
        // fault on it is in flight (residency transitions serialize on
        // the block's stripe lock).
        if self.count.load(Relaxed) == 0 {
            return false;
        }
        self.present.lock().contains(&block.0)
    }

    /// Records a write-back of `block` (device→host).
    pub fn store(&self, block: VirtPage) {
        let mut present = self.present.lock();
        present.insert(block.0);
        self.count.store(present.len(), Relaxed);
    }

    /// [`BackingStore::store`] with fault injection: returns `false`
    /// (and records nothing) when the plan injects a write failure
    /// (ENOSPC / transient I/O error) for this attempt. With
    /// `inj == None` this always stores and succeeds.
    pub fn try_store(&self, block: VirtPage, inj: Option<&FaultInjector>) -> bool {
        if let Some(inj) = inj {
            if inj.roll(FaultSite::Backing) {
                return false;
            }
        }
        self.store(block);
        true
    }

    /// Number of blocks currently held on the host.
    pub fn len(&self) -> usize {
        self.present.lock().len()
    }

    /// Whether nothing has been written back yet.
    pub fn is_empty(&self) -> bool {
        self.present.lock().is_empty()
    }
}

/// One stored byte range: `pages` 4 kB pages starting at the map key.
#[derive(Debug, Clone, Copy)]
struct Span {
    pages: u64,
    tier: u8,
    /// FIFO stamp within the tier (older = demoted first).
    seq: u64,
}

/// Per-tier occupancy and traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierCounters {
    /// 4 kB pages currently held by this tier.
    pub used_pages: u64,
    /// Spans currently held by this tier.
    pub spans: u64,
    /// Write-backs that landed on this tier (demotion-rank target).
    pub stores: u64,
    /// Page-ins served from this tier.
    pub loads: u64,
    /// Spans pushed into this tier by a capacity cascade from above.
    pub demoted_in: u64,
    /// Spans pulled into this tier by promotion from below.
    pub promoted_in: u64,
}

/// Result of a tiered store attempt.
#[derive(Debug, Clone, Copy)]
pub struct StoreOutcome {
    /// Whether the span was recorded (false: injected write failure).
    pub stored: bool,
    /// Tier the span landed on.
    pub tier: usize,
    /// Spans pushed down a tier by the resulting capacity cascade.
    pub demoted: u64,
}

/// Result of a tiered load (page-in) hit.
#[derive(Debug, Clone, Copy)]
pub struct LoadOutcome {
    /// Deepest tier holding any byte of the requested range — the tier
    /// whose latency/bandwidth penalty the transfer pays.
    pub tier: usize,
    /// Spans promoted one tier up by this access.
    pub promoted: u64,
}

#[derive(Debug)]
struct TieredInner {
    /// Non-overlapping spans, keyed by head page. The non-overlap
    /// invariant is what "no page resident in two tiers" reduces to.
    spans: BTreeMap<u64, Span>,
    /// Per-tier FIFO order: seq → head.
    fifo: Vec<BTreeMap<u64, u64>>,
    books: Vec<TierCounters>,
    next_seq: u64,
}

impl TieredInner {
    fn insert(&mut self, head: u64, pages: u64, tier: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spans.insert(
            head,
            Span {
                pages,
                tier: tier as u8,
                seq,
            },
        );
        self.fifo[tier].insert(seq, head);
        self.books[tier].used_pages += pages;
        self.books[tier].spans += 1;
    }

    fn remove(&mut self, head: u64) -> Span {
        let span = self.spans.remove(&head).expect("span tracked");
        let t = span.tier as usize;
        self.fifo[t].remove(&span.seq);
        self.books[t].used_pages -= span.pages;
        self.books[t].spans -= 1;
        span
    }

    /// Heads of every span overlapping `[head, head + pages)`.
    fn overlapping(&self, head: u64, pages: u64) -> Vec<u64> {
        let end = head + pages;
        let mut hits = Vec::new();
        // A span starting before `head` can still reach into the range.
        if let Some((&h, s)) = self.spans.range(..head).next_back() {
            if h + s.pages > head {
                hits.push(h);
            }
        }
        hits.extend(self.spans.range(head..end).map(|(&h, _)| h));
        hits
    }

    /// Moves bounded tiers back under capacity by demoting their oldest
    /// spans one tier down. The last tier is unbounded (validated at
    /// config parse), so the cascade always terminates.
    fn cascade(&mut self, caps: &[u64]) -> u64 {
        let mut demoted = 0;
        while let Some(t) =
            (0..caps.len()).find(|&t| caps[t] > 0 && self.books[t].used_pages > caps[t])
        {
            let (&seq, &head) = self.fifo[t].iter().next().expect("over-cap tier has spans");
            let _ = seq;
            let span = self.remove(head);
            self.insert(head, span.pages, t + 1);
            self.books[t + 1].demoted_in += 1;
            demoted += 1;
        }
        demoted
    }
}

/// The backing hierarchy behind the device RAM: a flat set for the
/// legacy single-tier fixed-page-size configuration, a span-tracking
/// tier stack for everything else. See the module docs.
#[derive(Debug)]
pub enum TieredStore {
    /// Single unbounded zero-cost tier, fixed page size: the original
    /// hash-set store, untouched.
    Flat(BackingStore),
    /// Real hierarchy and/or mixed page sizes: span bookkeeping.
    Tiered(Box<TieredState>),
}

/// The locked state plus the immutable capacity table of a tiered store.
#[derive(Debug)]
pub struct TieredState {
    inner: Mutex<TieredInner>,
    /// Per-tier capacity in 4 kB pages (0 = unbounded).
    caps: Vec<u64>,
}

impl TieredStore {
    /// Builds the store for `tiers`. `spans_required` forces the span
    /// representation even for a flat tier config — the adaptive
    /// page-size mode needs range coverage regardless of the hierarchy
    /// depth (a 2 MB write-back refaulted at 64 kB must still hit).
    pub fn new(tiers: &TierConfig, spans_required: bool) -> TieredStore {
        if tiers.is_flat() && !spans_required {
            return TieredStore::Flat(BackingStore::new());
        }
        let n = tiers.len();
        TieredStore::Tiered(Box::new(TieredState {
            inner: Mutex::new(TieredInner {
                spans: BTreeMap::new(),
                fifo: (0..n).map(|_| BTreeMap::new()).collect(),
                books: vec![TierCounters::default(); n],
                next_seq: 0,
            }),
            caps: tiers.tiers.iter().map(|t| t.capacity_pages).collect(),
        }))
    }

    /// Whether any stored span overlaps `[head, head + pages)` — i.e.
    /// whether a fault on this range needs a host→device transfer.
    pub fn contains(&self, head: VirtPage, pages: u64) -> bool {
        match self {
            TieredStore::Flat(b) => b.contains(head),
            TieredStore::Tiered(t) => !t.inner.lock().overlapping(head.0, pages).is_empty(),
        }
    }

    /// Page-in lookup: the deepest tier holding any byte of the range,
    /// or `None` for a first touch. Overlapping spans below tier 0 are
    /// promoted one tier up when the tier above has room (promotion
    /// never evicts — cold tiers drain upward only into slack).
    pub fn load(&self, head: VirtPage, pages: u64) -> Option<LoadOutcome> {
        match self {
            TieredStore::Flat(b) => b.contains(head).then_some(LoadOutcome {
                tier: 0,
                promoted: 0,
            }),
            TieredStore::Tiered(t) => {
                let mut inner = t.inner.lock();
                let hits = inner.overlapping(head.0, pages);
                if hits.is_empty() {
                    return None;
                }
                let deepest = hits
                    .iter()
                    .map(|h| inner.spans[h].tier as usize)
                    .max()
                    .expect("nonempty hits");
                let mut promoted = 0;
                for h in hits {
                    let span = inner.spans[&h];
                    let up = span.tier as usize;
                    if up == 0 {
                        continue;
                    }
                    let dst = up - 1;
                    let room =
                        t.caps[dst] == 0 || inner.books[dst].used_pages + span.pages <= t.caps[dst];
                    if room {
                        let span = inner.remove(h);
                        inner.insert(h, span.pages, dst);
                        inner.books[dst].promoted_in += 1;
                        promoted += 1;
                    }
                }
                inner.books[deepest].loads += 1;
                Some(LoadOutcome {
                    tier: deepest,
                    promoted,
                })
            }
        }
    }

    /// Records a write-back of `[head, head + pages)` onto the tier
    /// `rank` (clamped), riding the per-tier fault-injection sequence.
    /// Overwritten older spans are trimmed: fully covered ones vanish,
    /// partially covered ones keep their uncovered remainder on their
    /// original tier. Returns what happened; on an injected failure
    /// nothing is recorded.
    pub fn try_store(
        &self,
        head: VirtPage,
        pages: u64,
        rank: usize,
        inj: Option<&FaultInjector>,
    ) -> StoreOutcome {
        match self {
            TieredStore::Flat(b) => {
                let stored = b.try_store(head, inj);
                StoreOutcome {
                    stored,
                    tier: 0,
                    demoted: 0,
                }
            }
            TieredStore::Tiered(t) => {
                let tier = rank.min(t.caps.len() - 1);
                if let Some(inj) = inj {
                    if inj.roll_tiered(FaultSite::Backing, tier) {
                        return StoreOutcome {
                            stored: false,
                            tier,
                            demoted: 0,
                        };
                    }
                }
                let mut inner = t.inner.lock();
                let end = head.0 + pages;
                for h in inner.overlapping(head.0, pages) {
                    let old = inner.remove(h);
                    let old_end = h + old.pages;
                    if h < head.0 {
                        inner.insert(h, head.0 - h, old.tier as usize);
                    }
                    if old_end > end {
                        inner.insert(end, old_end - end, old.tier as usize);
                    }
                }
                inner.insert(head.0, pages, tier);
                inner.books[tier].stores += 1;
                let demoted = inner.cascade(&t.caps);
                StoreOutcome {
                    stored: true,
                    tier,
                    demoted,
                }
            }
        }
    }

    /// Number of spans (flat: blocks) currently held.
    pub fn len(&self) -> usize {
        match self {
            TieredStore::Flat(b) => b.len(),
            TieredStore::Tiered(t) => t.inner.lock().spans.len(),
        }
    }

    /// Whether nothing has been written back yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-tier counters, or `None` for the flat representation.
    pub fn tier_counters(&self) -> Option<Vec<TierCounters>> {
        match self {
            TieredStore::Flat(_) => None,
            TieredStore::Tiered(t) => Some(t.inner.lock().books.clone()),
        }
    }

    /// Consistency audit for the test oracles. Panics if spans overlap
    /// (a page held by two tiers at once), if any per-tier page book
    /// disagrees with the spans it claims, or if a bounded tier sits
    /// over its capacity at a quiescent point.
    pub fn audit(&self) {
        let TieredStore::Tiered(t) = self else {
            return;
        };
        let inner = t.inner.lock();
        let mut prev_end = 0u64;
        let mut used = vec![0u64; t.caps.len()];
        let mut spans = vec![0u64; t.caps.len()];
        for (&h, s) in &inner.spans {
            assert!(h >= prev_end, "spans overlap at page {h}");
            prev_end = h + s.pages;
            used[s.tier as usize] += s.pages;
            spans[s.tier as usize] += 1;
            assert_eq!(
                inner.fifo[s.tier as usize].get(&s.seq),
                Some(&h),
                "span {h} missing from its tier's FIFO"
            );
        }
        for (tier, book) in inner.books.iter().enumerate() {
            assert_eq!(book.used_pages, used[tier], "tier {tier} page book drifted");
            assert_eq!(book.spans, spans[tier], "tier {tier} span book drifted");
            assert_eq!(
                inner.fifo[tier].len() as u64,
                spans[tier],
                "tier {tier} FIFO size drifted"
            );
            assert!(
                t.caps[tier] == 0 || book.used_pages <= t.caps[tier],
                "tier {tier} over capacity at a quiescent point"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcp_arch::FaultPlan;

    #[test]
    fn first_touch_is_absent() {
        let b = BackingStore::new();
        assert!(!b.contains(VirtPage(1)));
        assert!(b.is_empty());
    }

    #[test]
    fn store_then_contains() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        assert!(b.contains(VirtPage(7)));
        assert!(!b.contains(VirtPage(8)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn try_store_injects_enospc() {
        let b = BackingStore::new();
        assert!(b.try_store(VirtPage(1), None), "no injector: always ok");
        let inj = FaultInjector::new(&FaultPlan::new(13).enospc(0.5));
        let mut failures = 0;
        for p in 0..64 {
            if !b.try_store(VirtPage(100 + p), Some(&inj)) {
                failures += 1;
                assert!(
                    !b.contains(VirtPage(100 + p)),
                    "failed store records nothing"
                );
            } else {
                assert!(b.contains(VirtPage(100 + p)));
            }
        }
        assert!(failures > 5, "50% over 64 stores: {failures}");
    }

    #[test]
    fn store_is_idempotent() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        b.store(VirtPage(7));
        assert_eq!(b.len(), 1);
    }

    fn two_tier() -> TierConfig {
        // 8-page hot tier over an unbounded cold tier.
        TierConfig::parse("hot:8@100/1000;cold:0@400/250").unwrap()
    }

    #[test]
    fn flat_config_uses_the_legacy_set() {
        let s = TieredStore::new(&TierConfig::flat(), false);
        assert!(matches!(s, TieredStore::Flat(_)));
        s.try_store(VirtPage(3), 1, 0, None);
        assert!(s.contains(VirtPage(3), 1));
        assert_eq!(s.load(VirtPage(3), 1).unwrap().tier, 0);
        assert!(s.tier_counters().is_none());
        s.audit();
    }

    #[test]
    fn adaptive_mode_forces_spans_even_when_flat() {
        let s = TieredStore::new(&TierConfig::flat(), true);
        assert!(matches!(s, TieredStore::Tiered(_)));
        // A 16-page store must be hit by a 1-page lookup inside it.
        s.try_store(VirtPage(32), 16, 0, None);
        assert!(s.contains(VirtPage(37), 1));
        assert!(!s.contains(VirtPage(48), 1));
        s.audit();
    }

    #[test]
    fn store_lands_on_the_demotion_rank() {
        let s = TieredStore::new(&two_tier(), false);
        let out = s.try_store(VirtPage(0), 4, 1, None);
        assert!(out.stored);
        assert_eq!(out.tier, 1);
        let books = s.tier_counters().unwrap();
        assert_eq!(books[1].used_pages, 4);
        assert_eq!(books[1].stores, 1);
        assert_eq!(books[0].used_pages, 0);
        // Rank beyond the last tier clamps.
        assert_eq!(s.try_store(VirtPage(100), 1, 9, None).tier, 1);
        s.audit();
    }

    #[test]
    fn overflow_cascades_fifo_oldest_down() {
        let s = TieredStore::new(&two_tier(), false);
        // Hot tier holds 8 pages: two 4-page spans fill it.
        s.try_store(VirtPage(0), 4, 0, None);
        s.try_store(VirtPage(10), 4, 0, None);
        // A third store overflows it: the OLDEST span (head 0) demotes.
        let out = s.try_store(VirtPage(20), 4, 0, None);
        assert_eq!(out.demoted, 1);
        let books = s.tier_counters().unwrap();
        assert_eq!(books[0].used_pages, 8);
        assert_eq!(books[1].used_pages, 4);
        assert_eq!(books[1].demoted_in, 1);
        assert_eq!(s.load(VirtPage(0), 4).unwrap().tier, 1, "span 0 demoted");
        s.audit();
    }

    #[test]
    fn load_promotes_into_slack_only() {
        let s = TieredStore::new(&two_tier(), false);
        s.try_store(VirtPage(0), 4, 1, None);
        // Hot tier is empty: the load promotes.
        let l = s.load(VirtPage(0), 4).unwrap();
        assert_eq!((l.tier, l.promoted), (1, 1));
        assert_eq!(s.load(VirtPage(0), 4).unwrap().tier, 0, "now hot");
        // Fill the hot tier; a cold span then stays cold on load.
        s.try_store(VirtPage(100), 8, 0, None);
        s.try_store(VirtPage(200), 4, 1, None);
        let l = s.load(VirtPage(200), 4).unwrap();
        assert_eq!((l.tier, l.promoted), (1, 0), "no room above");
        s.audit();
    }

    #[test]
    fn partial_overwrite_keeps_remainders_on_their_tier() {
        let s = TieredStore::new(&two_tier(), false);
        // A 16-page span on the cold tier...
        s.try_store(VirtPage(0), 16, 1, None);
        // ...partially overwritten in the middle at rank 0.
        s.try_store(VirtPage(4), 4, 0, None);
        let books = s.tier_counters().unwrap();
        assert_eq!(books[0].used_pages, 4);
        assert_eq!(books[1].used_pages, 12, "remainders stay cold");
        assert_eq!(s.len(), 3, "left remainder + new span + right remainder");
        assert_eq!(s.load(VirtPage(0), 2).unwrap().tier, 1);
        assert_eq!(s.load(VirtPage(9), 1).unwrap().tier, 1);
        s.audit();
    }

    #[test]
    fn tiered_enospc_rolls_the_target_tiers_sequence() {
        let inj = FaultInjector::new(&FaultPlan::new(13).enospc(0.5));
        let s = TieredStore::new(&two_tier(), false);
        let mut failures = 0;
        for p in 0..64u64 {
            let out = s.try_store(VirtPage(p * 100), 1, (p % 2) as usize, Some(&inj));
            if !out.stored {
                failures += 1;
                assert!(
                    !s.contains(VirtPage(p * 100), 1),
                    "failed store records nothing"
                );
            }
        }
        assert!(failures > 5, "50% over 64 stores: {failures}");
        s.audit();
    }

    #[test]
    fn audit_catches_a_clean_store() {
        let s = TieredStore::new(&two_tier(), true);
        for i in 0..32u64 {
            s.try_store(VirtPage(i * 16), 1 + i % 8, (i % 2) as usize, None);
        }
        for i in 0..32u64 {
            s.load(VirtPage(i * 16), 1);
        }
        s.audit();
    }
}
