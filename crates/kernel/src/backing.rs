//! The host-memory backing store.
//!
//! Under the paper's model the application's whole virtual address space
//! conceptually lives in host memory; the device RAM holds the currently
//! resident subset. The store tracks which blocks have ever been
//! materialized so the kernel can distinguish first-touch faults (zero
//! fill, no transfer needed in from the host) from refaults (a real
//! host→device DMA), and it counts write-backs for the reports.

use std::collections::HashSet;

use parking_lot::Mutex;

use cmcp_arch::{FaultInjector, FaultSite, VirtPage};

/// Host-side block store (content-free: the simulator tracks residency
/// and movement, not data bytes).
#[derive(Debug, Default)]
pub struct BackingStore {
    present: Mutex<HashSet<u64>>,
}

impl BackingStore {
    /// An empty store: every first touch is a zero-fill fault.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Whether `block` has been written back before (a fault on it needs
    /// a host→device transfer).
    pub fn contains(&self, block: VirtPage) -> bool {
        self.present.lock().contains(&block.0)
    }

    /// Records a write-back of `block` (device→host).
    pub fn store(&self, block: VirtPage) {
        self.present.lock().insert(block.0);
    }

    /// [`BackingStore::store`] with fault injection: returns `false`
    /// (and records nothing) when the plan injects a write failure
    /// (ENOSPC / transient I/O error) for this attempt. With
    /// `inj == None` this always stores and succeeds.
    pub fn try_store(&self, block: VirtPage, inj: Option<&FaultInjector>) -> bool {
        if let Some(inj) = inj {
            if inj.roll(FaultSite::Backing) {
                return false;
            }
        }
        self.store(block);
        true
    }

    /// Number of blocks currently held on the host.
    pub fn len(&self) -> usize {
        self.present.lock().len()
    }

    /// Whether nothing has been written back yet.
    pub fn is_empty(&self) -> bool {
        self.present.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_absent() {
        let b = BackingStore::new();
        assert!(!b.contains(VirtPage(1)));
        assert!(b.is_empty());
    }

    #[test]
    fn store_then_contains() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        assert!(b.contains(VirtPage(7)));
        assert!(!b.contains(VirtPage(8)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn try_store_injects_enospc() {
        use cmcp_arch::FaultPlan;
        let b = BackingStore::new();
        assert!(b.try_store(VirtPage(1), None), "no injector: always ok");
        let inj = FaultInjector::new(&FaultPlan::new(13).enospc(0.5));
        let mut failures = 0;
        for p in 0..64 {
            if !b.try_store(VirtPage(100 + p), Some(&inj)) {
                failures += 1;
                assert!(
                    !b.contains(VirtPage(100 + p)),
                    "failed store records nothing"
                );
            } else {
                assert!(b.contains(VirtPage(100 + p)));
            }
        }
        assert!(failures > 5, "50% over 64 stores: {failures}");
    }

    #[test]
    fn store_is_idempotent() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        b.store(VirtPage(7));
        assert_eq!(b.len(), 1);
    }
}
