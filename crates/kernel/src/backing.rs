//! The host-memory backing store.
//!
//! Under the paper's model the application's whole virtual address space
//! conceptually lives in host memory; the device RAM holds the currently
//! resident subset. The store tracks which blocks have ever been
//! materialized so the kernel can distinguish first-touch faults (zero
//! fill, no transfer needed in from the host) from refaults (a real
//! host→device DMA), and it counts write-backs for the reports.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

use parking_lot::Mutex;

use cmcp_arch::{FaultInjector, FaultSite, FxHashSet, VirtPage};

/// Host-side block store (content-free: the simulator tracks residency
/// and movement, not data bytes). The presence set is probed on every
/// major fault, so it hashes with the seed-free `FxHashSet`, and an
/// atomic mirror of its size lets the probe skip the lock entirely
/// while no write-back has happened yet (read-mostly workloads never
/// pay for the store they never use).
#[derive(Debug, Default)]
pub struct BackingStore {
    present: Mutex<FxHashSet<u64>>,
    /// `present.len()`, maintained under the lock, readable without it.
    count: AtomicUsize,
}

impl BackingStore {
    /// An empty store: every first touch is a zero-fill fault.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Whether `block` has been written back before (a fault on it needs
    /// a host→device transfer).
    pub fn contains(&self, block: VirtPage) -> bool {
        // An empty store can answer from the counter alone. A racing
        // first write-back is benign: the kernel only queries blocks it
        // holds non-resident, and a block cannot be written back while a
        // fault on it is in flight (residency transitions serialize on
        // the block's stripe lock).
        if self.count.load(Relaxed) == 0 {
            return false;
        }
        self.present.lock().contains(&block.0)
    }

    /// Records a write-back of `block` (device→host).
    pub fn store(&self, block: VirtPage) {
        let mut present = self.present.lock();
        present.insert(block.0);
        self.count.store(present.len(), Relaxed);
    }

    /// [`BackingStore::store`] with fault injection: returns `false`
    /// (and records nothing) when the plan injects a write failure
    /// (ENOSPC / transient I/O error) for this attempt. With
    /// `inj == None` this always stores and succeeds.
    pub fn try_store(&self, block: VirtPage, inj: Option<&FaultInjector>) -> bool {
        if let Some(inj) = inj {
            if inj.roll(FaultSite::Backing) {
                return false;
            }
        }
        self.store(block);
        true
    }

    /// Number of blocks currently held on the host.
    pub fn len(&self) -> usize {
        self.present.lock().len()
    }

    /// Whether nothing has been written back yet.
    pub fn is_empty(&self) -> bool {
        self.present.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_absent() {
        let b = BackingStore::new();
        assert!(!b.contains(VirtPage(1)));
        assert!(b.is_empty());
    }

    #[test]
    fn store_then_contains() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        assert!(b.contains(VirtPage(7)));
        assert!(!b.contains(VirtPage(8)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn try_store_injects_enospc() {
        use cmcp_arch::FaultPlan;
        let b = BackingStore::new();
        assert!(b.try_store(VirtPage(1), None), "no injector: always ok");
        let inj = FaultInjector::new(&FaultPlan::new(13).enospc(0.5));
        let mut failures = 0;
        for p in 0..64 {
            if !b.try_store(VirtPage(100 + p), Some(&inj)) {
                failures += 1;
                assert!(
                    !b.contains(VirtPage(100 + p)),
                    "failed store records nothing"
                );
            } else {
                assert!(b.contains(VirtPage(100 + p)));
            }
        }
        assert!(failures > 5, "50% over 64 stores: {failures}");
    }

    #[test]
    fn store_is_idempotent() {
        let b = BackingStore::new();
        b.store(VirtPage(7));
        b.store(VirtPage(7));
        assert_eq!(b.len(), 1);
    }
}
