//! Per-node accounting for multi-node NUMA runs: home-node placement,
//! page-table replica sets, and per-node frame budgets.
//!
//! The books are **accounting-level** on purpose. Physical frames still
//! come from the single device-wide [`crate::FramePool`] — which frame a
//! block lands in is opaque to every counter and report (the
//! frame-opacity invariant the determinism story rests on) — and the
//! NUMA layer only decides *which node's DRAM budget* the block is
//! charged against and *which nodes hold a page-table replica* of its
//! mapping. That keeps single-node runs bit-identical to the pre-NUMA
//! kernel: a [`NumaBooks`] is simply never constructed for them.
//!
//! ## The replica-coherence model (Mitosis / numaPTE, scaled down)
//!
//! * **Insert** (major fault): the block's home node is the faulting
//!   core's node when that node's budget has room, otherwise the block
//!   *spills* to the node with the most free budget (remote first-touch,
//!   charged one cross-node link crossing). The inserting node gets the
//!   first — local, free — replica of the mapping.
//! * **Map** (minor fault): with replication *on*, the first fault from
//!   a new node pulls a local replica of the block's mapping entry from
//!   the home node (one link crossing, once per node); later faults from
//!   that node walk their local replica for free. With replication
//!   *off*, every minor fault from a non-home node walks the home node's
//!   master table — the same link crossing, paid *every time*. That
//!   recurring cost is exactly the gap the `numa_sweep` bench measures.
//! * **Evict**: the teardown must reach every node holding a replica.
//!   PSPT's exact mapping sets make this precise — the replica set is
//!   the set of nodes with mapping cores, nothing more — and the
//!   per-node replica clears piggyback on the TLB-shootdown IPIs the
//!   eviction already sends to those same cores, so replication-on
//!   teardown costs counters only. Replication *off* has no remote
//!   handler to ride: the evictor synchronously updates the single
//!   master table, one link crossing when the home node is remote.
//! * **Migrate**: when a strict majority of a block's mapping cores sit
//!   on a node other than its home (the CMCP map-count-weighted access
//!   center has shifted) and that node has budget headroom, the block's
//!   home moves there: one [`cmcp_arch::NumaConfig::xfer_penalty`]
//!   charge covering the link crossing plus the block's bytes at the
//!   destination node's bandwidth.
//!
//! All cycle charges land on the acting core's clock inside its fault
//! window, paired with exact-cost `ReplicaSync` / `Migration` trace
//! events, so the validated breakdown stays exact.

use cmcp_arch::{FxHashMap, NumaConfig, VirtPage};
use parking_lot::Mutex;

/// Per-block NUMA state: the node whose DRAM budget holds the block and
/// the bitmask of nodes holding a page-table replica of its mapping
/// (bit `n` = node `n`; `MAX_NODES` is 8, so a `u8` covers it).
#[derive(Clone, Copy, Debug)]
pub struct BlockNuma {
    /// Home node index (budget owner).
    pub home: u8,
    /// Replica-holding nodes, as a bitmask.
    pub mask: u8,
}

/// Interior state, behind one leaf-level lock. Multi-node commits run
/// on the engine's sequential reconciliation tail, so the lock is
/// uncontended there; it exists so direct (engine-less) `Vmm` use from
/// tests stays safe.
#[derive(Debug, Default)]
struct BooksInner {
    /// Blocks charged to each node's budget.
    used: Vec<u64>,
    /// Per-resident-block NUMA state, keyed by block head page number.
    blocks: FxHashMap<u64, BlockNuma>,
}

/// The per-run NUMA ledger. Constructed only for multi-node configs.
#[derive(Debug)]
pub struct NumaBooks {
    /// Topology in force (validated at `Vmm` construction).
    pub config: NumaConfig,
    /// Core → node, precomputed for the run's core count.
    node_of_core: Vec<u8>,
    /// Per-node block budgets; sums to the device block count, so
    /// per-node conservation (`Σ used == resident blocks`) follows from
    /// the frame pool's own conservation.
    capacity: Vec<u64>,
    inner: Mutex<BooksInner>,
}

/// What a books operation decided, for the caller to charge and trace.
/// Cycle math stays in `vmm.rs` (it owns clocks, stats, and the
/// tracer); the books only do placement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MapDecision {
    /// A replica sync (replication on, first fault from a new node) or
    /// a remote master-table walk (replication off, every remote
    /// fault): `Some(home)` names the node the crossing reaches.
    pub sync_with: Option<u8>,
    /// `true` when the crossing is a counted replica sync (replication
    /// on) rather than an uncounted remote walk.
    pub counted_sync: bool,
    /// A home migration `(from, to)` the caller must charge at
    /// [`NumaConfig::xfer_penalty`].
    pub migrate: Option<(u8, u8)>,
}

impl NumaBooks {
    /// Builds the ledger for `cores` cores over `device_blocks` device
    /// blocks. `config` must be multi-node and already validated.
    pub fn new(config: NumaConfig, cores: usize, device_blocks: usize) -> NumaBooks {
        debug_assert!(!config.is_single());
        let nodes = config.nodes.len();
        NumaBooks {
            node_of_core: (0..cores)
                .map(|c| config.node_of_core(c, cores) as u8)
                .collect(),
            capacity: config
                .split_blocks(device_blocks)
                .into_iter()
                .map(|b| b as u64)
                .collect(),
            inner: Mutex::new(BooksInner {
                used: vec![0; nodes],
                blocks: FxHashMap::default(),
            }),
            config,
        }
    }

    /// The node owning `core`.
    #[inline]
    pub fn node_of(&self, core: usize) -> u8 {
        self.node_of_core[core.min(self.node_of_core.len() - 1)]
    }

    /// Per-node block budgets (sums to the device block count).
    pub fn capacity(&self) -> &[u64] {
        &self.capacity
    }

    /// Per-node used-block counts (exact at quiescence).
    pub fn used(&self) -> Vec<u64> {
        self.inner.lock().used.clone()
    }

    /// The `(home, replica mask)` of a tracked block, if resident.
    pub fn block_state(&self, head: VirtPage) -> Option<BlockNuma> {
        self.inner.lock().blocks.get(&head.0).copied()
    }

    /// Major-fault placement: charges the block to the faulting core's
    /// node when its budget has room, else spills to the node with the
    /// most free budget (ties to the lowest index — deterministic).
    /// Returns `Some(home)` when the block spilled to a remote node
    /// (the caller charges one link crossing), `None` for a local
    /// first touch.
    pub fn on_insert(&self, core: usize, head: VirtPage) -> Option<u8> {
        let node = self.node_of(core) as usize;
        let mut inner = self.inner.lock();
        let home = if inner.used[node] < self.capacity[node] {
            node
        } else {
            // Σ capacity == device blocks and a frame was just
            // allocated, so some node must have headroom.
            let spill = (0..self.capacity.len())
                .filter(|&n| inner.used[n] < self.capacity[n])
                .max_by_key(|&n| self.capacity[n] - inner.used[n])
                .expect("frame allocated but every node budget full");
            debug_assert_ne!(spill, node);
            spill
        };
        inner.used[home] += 1;
        let prev = inner.blocks.insert(
            head.0,
            BlockNuma {
                home: home as u8,
                mask: 1 << node,
            },
        );
        debug_assert!(prev.is_none(), "insert over tracked block {head}");
        (home != node).then_some(home as u8)
    }

    /// Minor-fault bookkeeping: replica sync / remote walk, then the
    /// migration check against the block's current mapping-node
    /// histogram (`node_counts[n]` = mapping cores on node `n`,
    /// *including* the faulting core's fresh mapping).
    pub fn on_map(&self, core: usize, head: VirtPage, node_counts: &[u32]) -> MapDecision {
        let node = self.node_of(core);
        let mut d = MapDecision::default();
        let mut inner = self.inner.lock();
        let Some(ent) = inner.blocks.get_mut(&head.0) else {
            // Raced with an eviction teardown; the re-fault will go
            // down the major path and re-place the block.
            return d;
        };
        if self.config.replicate {
            if ent.mask & (1 << node) == 0 {
                ent.mask |= 1 << node;
                if node != ent.home {
                    d.sync_with = Some(ent.home);
                    d.counted_sync = true;
                }
            }
        } else if node != ent.home {
            d.sync_with = Some(ent.home);
        }
        // Migration: strict majority of mapping cores on one foreign
        // node with budget headroom pulls the home over.
        let total: u32 = node_counts.iter().sum();
        let home = ent.home as usize;
        if let Some(best) = (0..node_counts.len())
            .find(|&n| n != home && u64::from(node_counts[n]) * 2 > u64::from(total))
        {
            if inner.used[best] < self.capacity[best] {
                let ent = *inner.blocks.get(&head.0).expect("checked above");
                inner.used[home] -= 1;
                inner.used[best] += 1;
                inner.blocks.get_mut(&head.0).expect("checked above").home = best as u8;
                d.migrate = Some((ent.home, best as u8));
            }
        }
        d
    }

    /// Eviction teardown: releases the block's budget and returns its
    /// final `(home, replica mask)` so the caller can charge the
    /// replica invalidations (replication on) or the remote master
    /// update (off).
    pub fn on_evict(&self, head: VirtPage) -> Option<BlockNuma> {
        let mut inner = self.inner.lock();
        let ent = inner.blocks.remove(&head.0)?;
        inner.used[ent.home as usize] -= 1;
        Some(ent)
    }

    /// PSPT rebuild teardown: the rebuild's global shootdown already
    /// tore down every PTE, so every replica is gone too. Clears each
    /// tracked block's mask down to an empty set (homes and budgets are
    /// untouched — the frames never moved). Returns the number of
    /// replica entries dropped, for the rebuild's invalidation count.
    pub fn on_rebuild(&self) -> u64 {
        let mut inner = self.inner.lock();
        let mut dropped = 0u64;
        for ent in inner.blocks.values_mut() {
            dropped += u64::from(ent.mask.count_ones());
            ent.mask = 0;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn books(nodes: &str, cores: usize, blocks: usize) -> NumaBooks {
        NumaBooks::new(NumaConfig::parse(nodes).unwrap(), cores, blocks)
    }

    #[test]
    fn insert_prefers_the_local_node_and_spills_when_full() {
        let b = books("a:2@100/0;b:2@100/0", 4, 4);
        // Cores 0–1 → node 0, cores 2–3 → node 1; two blocks each.
        assert_eq!(b.on_insert(0, VirtPage(0)), None);
        assert_eq!(b.on_insert(1, VirtPage(64)), None);
        // Node 0 full: the third local insert spills to node 1.
        assert_eq!(b.on_insert(0, VirtPage(128)), Some(1));
        assert_eq!(b.used(), vec![2, 1]);
        assert_eq!(b.block_state(VirtPage(128)).unwrap().home, 1);
        // The spilled block's first replica is still the inserter's.
        assert_eq!(b.block_state(VirtPage(128)).unwrap().mask, 0b01);
    }

    #[test]
    fn replica_sync_charges_once_per_node() {
        let b = books("a:4@100/0;b:4@100/0", 4, 8);
        b.on_insert(0, VirtPage(0));
        // First fault from node 1: counted sync with home 0.
        let d = b.on_map(2, VirtPage(0), &[1, 1]);
        assert_eq!(d.sync_with, Some(0));
        assert!(d.counted_sync);
        // Second fault from the same node: replica already local.
        let d = b.on_map(3, VirtPage(0), &[1, 2]);
        assert_eq!(d.sync_with, None);
        assert_eq!(b.block_state(VirtPage(0)).unwrap().mask, 0b11);
    }

    #[test]
    fn replication_off_pays_every_remote_walk() {
        let mut cfg = NumaConfig::parse("a:4@100/0;b:4@100/0").unwrap();
        cfg.replicate = false;
        let b = NumaBooks::new(cfg, 4, 8);
        b.on_insert(0, VirtPage(0));
        for _ in 0..3 {
            let d = b.on_map(2, VirtPage(0), &[1, 1]);
            assert_eq!(d.sync_with, Some(0));
            assert!(!d.counted_sync);
        }
    }

    #[test]
    fn majority_shift_migrates_home_within_budget() {
        let b = books("a:4@100/0;b:4@100/0", 4, 8);
        b.on_insert(0, VirtPage(0));
        // 1 core on node 0, 2 on node 1: strict majority abroad.
        let d = b.on_map(3, VirtPage(0), &[1, 2]);
        assert_eq!(d.migrate, Some((0, 1)));
        assert_eq!(b.block_state(VirtPage(0)).unwrap().home, 1);
        assert_eq!(b.used(), vec![0, 1]);
        // An even split is not a strict majority: no flapping back.
        let d = b.on_map(1, VirtPage(0), &[2, 2]);
        assert_eq!(d.migrate, None);
    }

    #[test]
    fn evict_returns_state_and_releases_budget() {
        let b = books("a:4@100/0;b:4@100/0", 4, 8);
        b.on_insert(0, VirtPage(0));
        b.on_map(2, VirtPage(0), &[1, 1]);
        let ent = b.on_evict(VirtPage(0)).unwrap();
        assert_eq!(ent.mask, 0b11);
        assert_eq!(b.used(), vec![0, 0]);
        assert!(b.on_evict(VirtPage(0)).is_none());
    }

    #[test]
    fn rebuild_clears_every_replica() {
        let b = books("a:4@100/0;b:4@100/0", 4, 8);
        b.on_insert(0, VirtPage(0));
        b.on_map(2, VirtPage(0), &[1, 1]);
        b.on_insert(2, VirtPage(64));
        assert_eq!(b.on_rebuild(), 3);
        assert_eq!(b.block_state(VirtPage(0)).unwrap().mask, 0);
        // Budgets untouched: frames never moved.
        assert_eq!(b.used(), vec![1, 1]);
    }
}
