//! The virtual memory manager: demand paging between device RAM and the
//! host backing store.
//!
//! This is the code path the whole paper is about. On a page fault the
//! kernel:
//!
//! 1. serializes on the page-table lock — address-space-wide for regular
//!    tables, sharded/fine-grained for PSPT (modeled as virtual-time
//!    reservation resources, so contention costs queueing delay);
//! 2. if the block is already resident (PSPT minor fault), copies a PTE
//!    from a sibling core's table and reports the new core-map count to
//!    the policy — CMCP's signal;
//! 3. otherwise allocates a block of device frames, evicting a victim
//!    chosen by the replacement policy when RAM is full: the victim is
//!    unmapped everywhere, the mapping cores' TLBs are shot down (a
//!    broadcast under regular tables, the precise set under PSPT), dirty
//!    blocks are written back over the DMA engine, and the new block is
//!    DMA'd in if it has real content on the host;
//! 4. charges every step's cycles to the faulting core, to the DMA and
//!    lock reservation clocks, and to the interrupted remote cores.
//!
//! The accessed-bit scan timer (10 ms of virtual time, dedicated
//! hyperthreads — paper §5.1) lives here too: policies that want recency
//! information get it through the kernel's `AccessBitOracle`
//! implementation, which performs real PTE scans and pays for the remote
//! TLB invalidations x86 requires.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use cmcp_arch::{
    dma::DmaDirection, CoreClock, CoreId, CoreSet, CostModel, Cycles, DmaModel, FaultInjector,
    FaultSite, FxHashMap, FxHashSet, PageSize, PhysFrame, RingModel, VirtPage, VirtualResource,
};
use cmcp_core::{AccessBitOracle, PolicyEvent, ReplacementPolicy};
use cmcp_pagetable::{MapOutcome, Pspt, RegularTables, TableScheme, Translation};
use cmcp_trace::{EventKind, NullTracer, Recorder, MAINTENANCE_CORE};

use crate::backing::{TierCounters, TieredStore};
use crate::buddy::BuddyPool;
use crate::config::{KernelConfig, SchemeChoice};
use crate::frames::FramePool;
use crate::numa::{BlockNuma, NumaBooks};
use crate::offload::{OffloadEngine, Syscall};
use crate::stats::{owner_add, CoreStats, GlobalStats};

const LOCK_SHARDS: usize = 64;

/// Lock stripes over the residency metadata. A fixed power of two keyed
/// by the same page hash as the virtual PSPT locks, so the mapping from
/// block to stripe is a pure function of the configuration — never of
/// host thread count — and deterministic runs stay bit-identical.
const RESIDENT_SHARDS: usize = 64;

/// Bounded back-off for the allocation loop: a dry pool with an empty
/// policy can only be a transient (another core holds the last frames
/// between `alloc` and publishing its insert); this many consecutive
/// failures means the configuration genuinely has fewer blocks than
/// in-flight faults.
const ALLOC_RETRY_LIMIT: u32 = 1 << 22;

/// Base delay of the exponential retry backoff after an injected fault:
/// ~2 µs at the KNC's 1.053 GHz. Doubles per attempt up to
/// `BACKOFF_CAP_SHIFT` doublings.
const BACKOFF_BASE: Cycles = 1 << 11;

/// Backoff stops doubling after this many attempts (caps the per-retry
/// delay at `BACKOFF_BASE << BACKOFF_CAP_SHIFT` ≈ 125 µs).
const BACKOFF_CAP_SHIFT: u32 = 6;

/// Hard cap on recovery attempts for one operation. Fault rates are
/// clamped to 50 % at plan construction, so 64 consecutive failures has
/// probability ≤ 2⁻⁶⁴ — reaching this cap means the injector is broken,
/// not unlucky, and the run aborts loudly instead of livelocking.
const MAX_RECOVERY_ATTEMPTS: u32 = 64;

/// Default number of policy events a core may buffer before `maybe_flush`
/// forces a drain. Buffering is invisible to policy decisions: every
/// consumer of the policy (victim selection, the scan timer, run-end
/// queries) flushes the buffers — in global stamp order — before reading
/// or deciding anything, so the event stream each policy observes is
/// identical at any limit. The limit only bounds buffer memory and, on
/// the fault hot path, how often the policy mutex is taken when no
/// eviction forces a flush anyway.
const DEFAULT_POLICY_BATCH: usize = 32;

/// Flush drains at or below this many events bypass the shared
/// `flush_events` vector (and its lock) and stage on the stack instead.
/// Sized for the steady eviction path — the events one core buffers
/// between two evictions — not for a full `DEFAULT_POLICY_BATCH`, so the
/// stack fill stays a couple of cache lines.
const FLUSH_STACK_EVENTS: usize = 8;

/// One lock stripe of the residency metadata: the resident blocks that
/// hash to this stripe and their deferred write-back debt. Keeping
/// `pending_dirty` in the same stripe as the map means every residency
/// transition touches exactly one host lock. Both containers hash with
/// the seed-free [`FxHashMap`]/[`FxHashSet`]: every fault performs a
/// lookup-or-insert here, and SipHash was measurable on the hot path.
#[derive(Debug, Default)]
struct ResidentShard {
    /// block head → residency entry for resident blocks of this stripe.
    map: FxHashMap<u64, Resident>,
    /// Blocks whose dirty bits were harvested by a PSPT rebuild before
    /// they could be written back: they still owe a write-back when
    /// eventually evicted.
    pending_dirty: FxHashSet<u64>,
    /// Adaptive page-size mode only: 2 MB region head → (granularity all
    /// blocks of the region use, number of resident blocks). A region's
    /// granularity is chosen by the pressure controller at its first
    /// fault and lowered by split-on-evict; it resets when the region
    /// empties. Keeping it in the stripe (adaptive stripes are keyed by
    /// the 2 MB head) means region and blocks share one lock.
    regions: FxHashMap<u64, (PageSize, u32)>,
}

/// One resident block: its device frame head and mapping granularity
/// (always `cfg.block_size` outside adaptive mode).
#[derive(Debug, Clone, Copy)]
struct Resident {
    frame: PhysFrame,
    size: PageSize,
}

/// Device-RAM allocator: the fixed-size lock-free pool for normal runs,
/// the mutex-guarded mixed-size buddy for adaptive page-size runs (whose
/// fault path the engine serializes anyway).
enum Frames {
    Pool(FramePool),
    Buddy(BuddyPool),
}

/// Classification of a handled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Block was not resident: allocated (and possibly evicted + DMA'd).
    Major,
    /// PSPT minor fault: block resident, PTE copied from a sibling.
    MinorCopy,
    /// Lost race (parallel engine): the block became mapped for this core
    /// between the TLB miss and the handler.
    Spurious,
}

/// The kernel memory manager for one simulated address space.
///
/// Generic over the trace [`Recorder`]: the default [`NullTracer`]
/// compiles every emission site down to nothing (`R::ENABLED` is a
/// constant `false`), so untraced runs pay no cost for the
/// instrumentation. Build a traced instance with
/// [`Vmm::with_tracer`].
pub struct Vmm<R: Recorder = NullTracer> {
    cfg: KernelConfig,
    scheme: SchemeObj,
    policy: Mutex<Box<dyn ReplacementPolicy>>,
    frames: Frames,
    backing: TieredStore,
    dma: DmaModel,
    ring: RingModel,
    /// Lock-striped residency metadata, indexed by block hash.
    resident: Vec<Mutex<ResidentShard>>,
    /// Per-stripe resident counts (relaxed), so stats reads never sweep
    /// the stripe locks.
    resident_len: Vec<AtomicUsize>,
    /// Per-core buffers of deferred policy events, flushed in one policy
    /// lock acquisition per `batch_limit` events.
    batch_bufs: Vec<Mutex<Vec<(u64, PolicyEvent)>>>,
    /// Per-core buffered-event counts, maintained under the buffer lock
    /// but readable without it — flushes skip empty buffers and
    /// `maybe_flush` decides without locking anything.
    batch_pending: Vec<AtomicUsize>,
    /// Global order stamp for deferred events, taken while the block's
    /// stripe lock is held so same-block events are totally ordered.
    batch_seq: AtomicU64,
    /// Events a core may buffer before forcing a flush
    /// ([`DEFAULT_POLICY_BATCH`] unless an engine overrides it). Any
    /// value yields the same policy decisions — see the constant's doc.
    batch_limit: AtomicUsize,
    /// Per-core policy-event sequence override for sharded commits:
    /// `u64::MAX` means inactive (stamps come from `batch_seq`); any
    /// other value is the next stamp this core's events take. An engine
    /// committing parked entries concurrently pre-assigns each entry a
    /// stamp window in global commit order, so the merged event stream
    /// sorts identically to a sequential fold no matter which host
    /// thread ran which entry. Each cell is only written by the engine
    /// (between barriers) and by the one worker committing that core's
    /// entry, so plain load/store suffices.
    policy_seq_override: Vec<AtomicU64>,
    /// Merge area for flushes; only touched under the policy lock.
    flush_scratch: Mutex<Vec<(u64, PolicyEvent)>>,
    /// Reused event slice handed to `record_batch`; only touched under
    /// the policy lock.
    flush_events: Mutex<Vec<PolicyEvent>>,
    /// Regular tables: one address-space-wide lock.
    pt_global_lock: VirtualResource,
    /// PSPT: sharded fine-grained locks.
    pt_shard_locks: Vec<VirtualResource>,
    clocks: Arc<Vec<CoreClock>>,
    /// Pending TLB invalidations per core, applied by the owning core:
    /// `(head, span_4k)` — flat runs always post the configured block
    /// span; adaptive runs post the victim's actual granularity.
    mailboxes: Vec<Mutex<Vec<(VirtPage, u32)>>>,
    mailbox_flags: Vec<AtomicBool>,
    core_stats: Vec<CoreStats>,
    global: GlobalStats,
    offload: OffloadEngine,
    /// NUMA ledger — home nodes, replica sets, per-node budgets. `None`
    /// for single-node topologies, which leaves every NUMA branch cold
    /// and the run bit-identical to the pre-NUMA kernel.
    numa: Option<NumaBooks>,
    /// Compiled fault plan; `None` leaves every fault-injection branch
    /// cold and the run bit-identical to a plan-free build.
    injector: Option<FaultInjector>,
    /// Offloaded syscalls issued so far (drives the offload-death rule).
    offload_calls: AtomicU64,
    /// Latched once the offload engine dies; all later syscalls take the
    /// synchronous fallback.
    offload_dead: AtomicBool,
    tracer: R,
}

/// Static dispatch over the two schemes (keeps the fault path free of a
/// per-call vtable and lets `sharing_histogram` stay PSPT-specific).
enum SchemeObj {
    Regular(RegularTables),
    Pspt(Pspt),
}

/// Monomorphized scheme call: expands the two-armed match at the call
/// site so each arm invokes the concrete scheme's method directly — no
/// `&dyn TableScheme` indirection, so the per-fault `translate`/`map`
/// calls inline across the crate boundary under LTO.
macro_rules! with_scheme {
    ($vmm:expr, $s:ident => $call:expr) => {
        match &$vmm.scheme {
            SchemeObj::Regular($s) => $call,
            SchemeObj::Pspt($s) => $call,
        }
    };
}

impl Vmm {
    /// Builds an untraced memory manager and its per-core clocks.
    pub fn new(cfg: KernelConfig) -> Vmm {
        Vmm::with_tracer(cfg, NullTracer)
    }
}

impl<R: Recorder> Vmm<R> {
    /// Builds the memory manager with an explicit trace recorder.
    pub fn with_tracer(cfg: KernelConfig, tracer: R) -> Vmm<R> {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(cfg.device_blocks > 0, "need at least one device block");
        if let Err(e) = cfg.cost.numa.validate() {
            panic!("invalid NUMA topology: {e}");
        }
        // The engine derives its determinism window once at build; a
        // cross-node link faster than the IPI window would silently
        // shrink it, so the combination is rejected loudly up front.
        if let Err(e) = cfg
            .cost
            .numa
            .check_window(cfg.cost.ipi_send + cfg.cost.ipi_handle)
        {
            panic!("{e}");
        }
        assert!(
            cfg.cost.numa.is_single() || !cfg.adaptive,
            "adaptive page sizes are not supported on multi-node NUMA topologies"
        );
        let scheme = match cfg.scheme {
            SchemeChoice::Regular => SchemeObj::Regular(RegularTables::new(cfg.cores)),
            SchemeChoice::Pspt => SchemeObj::Pspt(Pspt::new(cfg.cores)),
        };
        Vmm {
            scheme,
            policy: Mutex::new(cfg.policy.build(cfg.device_blocks)),
            frames: if cfg.adaptive {
                // Adaptive page sizes need mixed-granularity allocation:
                // the buddy pool spans the same device RAM, counted in
                // 2 MB regions.
                Frames::Buddy(BuddyPool::new(cfg.device_blocks))
            } else {
                // One freelist shard per core (capped): a pure function
                // of the config, so identical runs allocate identically.
                Frames::Pool(FramePool::with_shards(
                    cfg.block_size,
                    cfg.device_blocks,
                    cfg.cores.min(RESIDENT_SHARDS),
                ))
            },
            backing: TieredStore::new(cfg.tiers(), cfg.adaptive),
            dma: DmaModel::with_clients(&cfg.cost, cfg.cores),
            ring: RingModel::new(cfg.cores, &cfg.cost),
            resident: (0..RESIDENT_SHARDS)
                .map(|_| Mutex::new(ResidentShard::default()))
                .collect(),
            resident_len: (0..RESIDENT_SHARDS).map(|_| AtomicUsize::new(0)).collect(),
            batch_bufs: (0..cfg.cores).map(|_| Mutex::new(Vec::new())).collect(),
            batch_pending: (0..cfg.cores).map(|_| AtomicUsize::new(0)).collect(),
            batch_seq: AtomicU64::new(0),
            batch_limit: AtomicUsize::new(DEFAULT_POLICY_BATCH),
            policy_seq_override: (0..cfg.cores).map(|_| AtomicU64::new(u64::MAX)).collect(),
            flush_scratch: Mutex::new(Vec::new()),
            flush_events: Mutex::new(Vec::new()),
            pt_global_lock: VirtualResource::new(),
            pt_shard_locks: (0..LOCK_SHARDS).map(|_| VirtualResource::new()).collect(),
            clocks: Arc::new((0..cfg.cores).map(|_| CoreClock::new()).collect()),
            mailboxes: (0..cfg.cores).map(|_| Mutex::new(Vec::new())).collect(),
            mailbox_flags: (0..cfg.cores).map(|_| AtomicBool::new(false)).collect(),
            core_stats: (0..cfg.cores).map(|_| CoreStats::default()).collect(),
            global: GlobalStats::default(),
            offload: OffloadEngine::new(&cfg.cost, cfg.cores),
            numa: (!cfg.cost.numa.is_single())
                .then(|| NumaBooks::new(cfg.cost.numa.clone(), cfg.cores, cfg.device_blocks)),
            injector: cfg.fault_plan.as_ref().map(FaultInjector::new),
            offload_calls: AtomicU64::new(0),
            offload_dead: AtomicBool::new(false),
            tracer,
            cfg,
        }
    }

    /// The trace recorder (engines use it for barrier events; reporting
    /// drains it post-run).
    pub fn tracer(&self) -> &R {
        &self.tracer
    }

    /// Virtual "now" of the maintenance hyperthreads (scan timer, PSPT
    /// rebuilds): they react to the frontier of the application cores.
    fn maintenance_now(&self) -> Cycles {
        self.clocks.iter().map(CoreClock::now).max().unwrap_or(0)
    }

    /// The per-core virtual clocks (shared with the engine).
    pub fn clocks(&self) -> &Arc<Vec<CoreClock>> {
        &self.clocks
    }

    /// This run's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Cost table in force.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// Per-core statistics.
    pub fn core_stats(&self) -> &[CoreStats] {
        &self.core_stats
    }

    /// Kernel-global statistics.
    pub fn global_stats(&self) -> &GlobalStats {
        &self.global
    }

    /// The DMA engine (for occupancy reporting).
    pub fn dma(&self) -> &DmaModel {
        &self.dma
    }

    /// Total queueing delay observed on page-table locks.
    pub fn lock_queue_cycles(&self) -> Cycles {
        self.pt_global_lock.total_queued()
            + self
                .pt_shard_locks
                .iter()
                .map(|l| l.total_queued())
                .sum::<Cycles>()
    }

    /// Currently resident blocks. A relaxed sum over the per-stripe
    /// counters: exact when the kernel is quiescent (between faults, or
    /// post-run), approximate mid-race — never sweeps the stripe locks.
    pub fn resident_blocks(&self) -> usize {
        self.resident_len.iter().map(|n| n.load(Relaxed)).sum()
    }

    /// Sets how many policy events a core may buffer before a flush is
    /// forced. Decision-neutral at any value (every policy consumer
    /// flushes first, in stamp order — see [`DEFAULT_POLICY_BATCH`]);
    /// engines tune it purely for host-side lock traffic.
    pub fn set_policy_batch(&self, limit: usize) {
        self.batch_limit.store(limit.max(1), Relaxed);
    }

    /// Flushes every core's buffered policy events (one policy-lock
    /// acquisition). Engines call this at run end so post-run policy
    /// queries see a fully applied event stream.
    pub fn flush_policy_events(&self) {
        let mut policy = self.policy.lock();
        self.flush_locked(&mut policy);
    }

    /// Drains all per-core buffers into the policy, merged in global
    /// stamp order. Caller holds the policy lock. The pending counters
    /// let the common case — one core's buffer holds everything — skip
    /// the other buffers' locks and the merge sort entirely.
    fn flush_locked(&self, policy: &mut Box<dyn ReplacementPolicy>) {
        // Scan the counters before touching any lock: the evict-path
        // flush frequently finds everything already drained.
        let mut nonempty = 0usize;
        let mut only = 0usize;
        for (c, n) in self.batch_pending.iter().enumerate() {
            if n.load(Relaxed) > 0 {
                nonempty += 1;
                only = c;
            }
        }
        match nonempty {
            0 => {}
            1 => {
                // A single core's pushes are already in stamp order. The
                // common drain is the handful of events buffered since
                // the last eviction, so stage small batches on the stack
                // and skip the shared merge vector (and its lock).
                let mut buf = self.batch_bufs[only].lock();
                let n = buf.len();
                if n <= FLUSH_STACK_EVENTS {
                    let mut stack = [PolicyEvent::MapCount {
                        block: VirtPage(0),
                        map_count: 0,
                    }; FLUSH_STACK_EVENTS];
                    for (slot, (_, ev)) in stack.iter_mut().zip(buf.drain(..)) {
                        *slot = ev;
                    }
                    self.batch_pending[only].store(0, Relaxed);
                    drop(buf);
                    policy.record_batch(&stack[..n]);
                } else {
                    let mut events = self.flush_events.lock();
                    events.clear();
                    events.extend(buf.drain(..).map(|(_, ev)| ev));
                    self.batch_pending[only].store(0, Relaxed);
                    drop(buf);
                    policy.record_batch(&events);
                }
            }
            _ => {
                let mut events = self.flush_events.lock();
                events.clear();
                let mut scratch = self.flush_scratch.lock();
                scratch.clear();
                for (c, buf) in self.batch_bufs.iter().enumerate() {
                    if self.batch_pending[c].load(Relaxed) > 0 {
                        let mut b = buf.lock();
                        scratch.append(&mut b);
                        self.batch_pending[c].store(0, Relaxed);
                    }
                }
                scratch.sort_unstable_by_key(|&(seq, _)| seq);
                events.extend(scratch.iter().map(|&(_, ev)| ev));
                scratch.clear();
                if !events.is_empty() {
                    policy.record_batch(&events);
                }
            }
        }
    }

    /// Buffers a policy event for `core`. Must be called while holding
    /// the lock of the stripe the event's block lives in, so the global
    /// stamp orders same-block events correctly. When the core has an
    /// active sequence override (sharded commit), stamps come from the
    /// pre-reserved window instead of the shared counter — see
    /// [`Vmm::begin_policy_seq_override`].
    fn push_policy_event(&self, core: CoreId, ev: PolicyEvent) {
        let ov = &self.policy_seq_override[core.index()];
        let cur = ov.load(Relaxed);
        let seq = if cur != u64::MAX {
            ov.store(cur + 1, Relaxed);
            cur
        } else {
            self.batch_seq.fetch_add(1, Relaxed)
        };
        let mut buf = self.batch_bufs[core.index()].lock();
        buf.push((seq, ev));
        self.batch_pending[core.index()].store(buf.len(), Relaxed);
    }

    /// Current policy-event batch limit (so an engine can save and
    /// restore it around a suppressed-flush region).
    pub fn policy_batch_limit(&self) -> usize {
        self.batch_limit.load(Relaxed)
    }

    /// Reserves `count` consecutive policy-event sequence stamps and
    /// returns the first. Engine-side: called at a quiescent point
    /// (every worker parked at a barrier) to pre-assign stamp windows to
    /// entries that will commit concurrently.
    pub fn reserve_policy_seqs(&self, count: u64) -> u64 {
        self.batch_seq.fetch_add(count, Relaxed)
    }

    /// Routes `core`'s next policy events through the pre-reserved stamp
    /// window starting at `base` (see [`Vmm::reserve_policy_seqs`]).
    /// Must be paired with [`Vmm::end_policy_seq_override`]; only one
    /// host thread may drive a given core's fault path at a time.
    pub fn begin_policy_seq_override(&self, core: CoreId, base: u64) {
        debug_assert_ne!(base, u64::MAX, "u64::MAX is the inactive sentinel");
        self.policy_seq_override[core.index()].store(base, Relaxed);
    }

    /// Deactivates `core`'s stamp override and returns the next unused
    /// stamp (callers assert the entry stayed within its window).
    pub fn end_policy_seq_override(&self, core: CoreId) -> u64 {
        self.policy_seq_override[core.index()].swap(u64::MAX, Relaxed)
    }

    /// The deterministic commit shard of `page`'s block: the same
    /// multiply-shift hash that selects the residency stripe, the PSPT
    /// directory shard, and the virtual page-table lock shard, so two
    /// fixed-size-block faults in different commit shards touch disjoint
    /// stripe locks, disjoint directory shards, and disjoint virtual
    /// lock resources. Meaningful for non-adaptive runs only (adaptive
    /// runs share the buddy pool and never shard their commits).
    pub fn commit_shard_of(&self, page: VirtPage) -> usize {
        self.resident_shard_of(self.block_of(page))
    }

    /// Number of distinct commit shards ([`Vmm::commit_shard_of`]'s
    /// codomain size).
    pub fn commit_shard_count(&self) -> usize {
        RESIDENT_SHARDS
    }

    /// Free blocks in the fixed-size frame pool, exact at quiescent
    /// points; `None` for adaptive (buddy-pool) runs. The engine's
    /// sharded-commit budget: as long as at most this many fresh majors
    /// commit before any frame is freed, no allocation can fail and no
    /// eviction can fire.
    pub fn pool_free_blocks(&self) -> Option<usize> {
        match &self.frames {
            Frames::Pool(p) => Some(p.free_blocks()),
            Frames::Buddy(_) => None,
        }
    }

    /// Flushes if `core`'s buffer reached the batch limit. Called with
    /// no stripe lock held.
    fn maybe_flush(&self, core: CoreId) {
        if self.batch_pending[core.index()].load(Relaxed) >= self.batch_limit.load(Relaxed) {
            self.flush_policy_events();
        }
    }

    #[inline]
    fn resident_shard_of(&self, head: VirtPage) -> usize {
        // Same multiply-shift hash as the virtual PSPT locks: the stripe
        // is a function of the page alone.
        let h = (head.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize;
        h % RESIDENT_SHARDS
    }

    /// Takes a residency stripe lock on the fault path: counted per core
    /// and traced (zero virtual cycles — host locks cost no simulated
    /// time; the event exists so host-contention analyses line up with
    /// the kernel counters).
    fn lock_resident_shard(
        &self,
        core: CoreId,
        shard: usize,
    ) -> parking_lot::MutexGuard<'_, ResidentShard> {
        let guard = self.resident[shard].lock();
        owner_add(&self.core_stats[core.index()].shard_lock_acquires, 1);
        if R::ENABLED {
            self.tracer.record(
                core.0,
                self.clocks[core.index()].now(),
                EventKind::ShardLock,
                shard as u64,
                0,
            );
        }
        guard
    }

    /// The compiled fault injector, if a plan is active.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Whether the offload engine has died under the fault plan.
    pub fn offload_dead(&self) -> bool {
        self.offload_dead.load(Relaxed)
    }

    /// Whether `page` is currently resident in device RAM (any block
    /// granularity). Quiescent-state query for the test oracles.
    pub fn block_resident(&self, page: VirtPage) -> bool {
        if self.cfg.adaptive {
            let m2 = page.align_down(PageSize::M2);
            let shard = self.resident[self.resident_shard_of(m2)].lock();
            return PageSize::ALL.iter().any(|&s| {
                let head = page.align_down(s);
                shard.map.get(&head.0).is_some_and(|ent| ent.size == s)
            });
        }
        let head = self.block_of(page);
        let idx = self.resident_shard_of(head);
        self.resident[idx].lock().map.contains_key(&head.0)
    }

    /// Whether the backing store holds a written-back copy of `page`.
    /// Quiescent-state query for the test oracles.
    pub fn backing_contains(&self, page: VirtPage) -> bool {
        if self.cfg.adaptive {
            self.backing.contains(page, 1)
        } else {
            self.backing.contains(self.block_of(page), 1)
        }
    }

    /// Per-tier backing-store occupancy and traffic counters; `None` for
    /// the flat single-tier store.
    pub fn tier_counters(&self) -> Option<Vec<TierCounters>> {
        self.backing.tier_counters()
    }

    /// The NUMA ledger; `None` for single-node topologies.
    pub fn numa_books(&self) -> Option<&NumaBooks> {
        self.numa.as_ref()
    }

    /// The `(home node, replica mask)` of a resident block on a
    /// multi-node run. Test-oracle hook.
    pub fn numa_block_state(&self, head: VirtPage) -> Option<BlockNuma> {
        self.numa.as_ref()?.block_state(head)
    }

    /// Bitmask of nodes with at least one core currently mapping
    /// `head`. Test-oracle hook for the replica-subset invariant;
    /// always 0 on single-node runs.
    pub fn mapping_node_mask(&self, head: VirtPage) -> u8 {
        let Some(books) = &self.numa else { return 0 };
        let mut mask = 0u8;
        for c in with_scheme!(self, s => s.mapping_cores(head)).iter() {
            mask |= 1 << books.node_of(c.index());
        }
        mask
    }

    /// Backing-store invariant audit: panics on span overlap, per-tier
    /// book drift, or a bounded tier over capacity. Test-oracle hook.
    pub fn backing_audit(&self) {
        self.backing.audit();
    }

    /// Frame-conservation audit: `(free, resident, quarantined, total)`
    /// blocks. At any quiescent point `free + resident + quarantined ==
    /// total` — a lost or doubly-freed frame breaks the equality.
    /// Fixed-size runs only; adaptive runs audit in pages via
    /// [`Vmm::frame_audit_pages`].
    pub fn frame_audit(&self) -> (usize, usize, u64, usize) {
        (
            self.pool().free_blocks(),
            self.resident_blocks(),
            self.pool().quarantined_blocks(),
            self.pool().total_blocks(),
        )
    }

    /// Frame-conservation audit in 4 kB pages, valid for both allocator
    /// shapes: `(free, resident, quarantined, total)` with the same
    /// conservation equality as [`Vmm::frame_audit`].
    pub fn frame_audit_pages(&self) -> (u64, u64, u64, u64) {
        let resident: u64 = self
            .resident
            .iter()
            .map(|s| {
                s.lock()
                    .map
                    .values()
                    .map(|ent| ent.size.pages_4k() as u64)
                    .sum::<u64>()
            })
            .sum();
        match &self.frames {
            Frames::Buddy(b) => (
                b.free_pages(),
                resident,
                b.quarantined_pages(),
                b.total_pages(),
            ),
            Frames::Pool(p) => {
                let bp = self.cfg.block_size.pages_4k() as u64;
                (
                    p.free_blocks() as u64 * bp,
                    resident,
                    p.quarantined_blocks() * bp,
                    p.total_blocks() as u64 * bp,
                )
            }
        }
    }

    /// Records one injected fault against `core`: bumps the per-core
    /// counter and emits the paired `FaultInjected` event (zero cycles —
    /// the recovery events carry the time).
    fn note_injected(&self, core: CoreId, site: FaultSite, attempt: u64) {
        owner_add(&self.core_stats[core.index()].faults_injected, 1);
        if R::ENABLED {
            self.tracer.record(
                core.0,
                self.clocks[core.index()].now(),
                EventKind::FaultInjected,
                site.code(),
                attempt,
            );
        }
    }

    /// Charges one bounded-exponential-backoff delay to `core` before it
    /// retries a failed operation at `site`. Only called inside a fault
    /// window, so the delay is a `fault_cycles` component — the emitted
    /// `Retry` event carries the exact increment for the breakdown.
    fn charge_backoff(&self, core: CoreId, attempt: u32, site: FaultSite) {
        let delay = BACKOFF_BASE << attempt.min(BACKOFF_CAP_SHIFT);
        let clock = &self.clocks[core.index()];
        clock.advance(delay);
        let st = &self.core_stats[core.index()];
        owner_add(&st.fault_retries, 1);
        owner_add(&st.retry_backoff_cycles, delay);
        if R::ENABLED {
            self.tracer
                .record(core.0, clock.now(), EventKind::Retry, delay, site.code());
        }
    }

    /// Figure 6's histogram (PSPT only): blocks by mapping-core count.
    pub fn sharing_histogram(&self) -> Option<Vec<usize>> {
        match &self.scheme {
            SchemeObj::Pspt(p) => Some(p.sharing_histogram()),
            SchemeObj::Regular(_) => None,
        }
    }

    /// Hardware page walk on behalf of `core`.
    pub fn translate(&self, core: CoreId, page: VirtPage) -> Option<Translation> {
        with_scheme!(self, s => s.translate(core, page))
    }

    /// Hardware accessed/dirty-bit update after a successful walk or a
    /// first write to a clean TLB entry.
    pub fn mark_accessed(&self, core: CoreId, page: VirtPage, write: bool) {
        with_scheme!(self, s => s.mark_accessed(core, page, write));
    }

    /// Whether `core` has pending TLB invalidations (lock-free check).
    #[inline]
    pub fn has_pending_invalidations(&self, core: CoreId) -> bool {
        self.mailbox_flags[core.index()].load(Relaxed)
    }

    /// Drains `core`'s pending invalidations — `(head, span_4k)` pairs —
    /// into `out` (the engine applies them to the core's TLB; the
    /// interrupt cost was already charged by the shootdown).
    pub fn drain_invalidations(&self, core: CoreId, out: &mut Vec<(VirtPage, u32)>) {
        if !self.has_pending_invalidations(core) {
            return;
        }
        let mut mb = self.mailboxes[core.index()].lock();
        out.append(&mut mb);
        self.mailbox_flags[core.index()].store(false, Relaxed);
    }

    /// Virtual-time period of the statistics scan timer.
    pub fn scan_period(&self) -> Cycles {
        self.cfg.cost.scan_period
    }

    /// The syscall-offload engine (IKC to the host).
    pub fn offload(&self) -> &OffloadEngine {
        &self.offload
    }

    /// Executes a host-offloaded system call on behalf of `core`.
    ///
    /// Under an active fault plan the call rides the checked IKC path
    /// (dropped messages cost resend timeouts, folded into the wait) and
    /// the engine may die outright after the plan's call threshold —
    /// from then on every syscall degrades to the synchronous fallback.
    pub fn offload_syscall(&self, core: CoreId, call: Syscall) -> Cycles {
        let clock = &self.clocks[core.index()];
        let inj = self.injector.as_ref();
        if let Some(threshold) = inj.and_then(|i| i.offload_death_after()) {
            let n = self.offload_calls.fetch_add(1, Relaxed);
            if n >= threshold && !self.offload_dead.swap(true, Relaxed) {
                self.note_injected(core, FaultSite::Offload, n);
            }
        }
        if self.offload_dead.load(Relaxed) {
            let wait = self.offload.sync_syscall(core, clock, call);
            self.global.sync_syscalls.fetch_add(1, Relaxed);
            return wait;
        }
        let (wait, drops) = self.offload.syscall_with_faults(core, clock, call, inj);
        if drops > 0 {
            // Drop timeouts happen outside fault windows, so they are
            // *not* retry-backoff cycles — each drop is surfaced as an
            // injected fault only, and the timeout itself is already in
            // the offload wait.
            self.global.ikc_drops.fetch_add(drops as u64, Relaxed);
            for k in 0..drops as u64 {
                self.note_injected(core, FaultSite::Ikc, k);
            }
        }
        wait
    }

    /// Periodic PSPT rebuild (paper §5.6: "a more dynamic solution with
    /// periodically rebuilding PSPT"): every resident block is unmapped
    /// from every core's private table — TLBs included — so the core-map
    /// counts re-form from the *current* access pattern as cores
    /// re-fault their PTEs (minor faults: the frames stay resident).
    ///
    /// Returns the number of blocks torn down, or `None` under regular
    /// tables (nothing to rebuild).
    pub fn rebuild_pspt(&self) -> Option<usize> {
        if !matches!(self.cfg.scheme, SchemeChoice::Pspt) {
            return None;
        }
        // Stripe by stripe, under that stripe's lock: no snapshot of the
        // whole resident set is ever materialized (the old code cloned
        // every key into a fresh Vec on each pass), and faults on the
        // other 63 stripes proceed concurrently.
        let mut torn = 0;
        for (idx, shard) in self.resident.iter().enumerate() {
            let mut guard = shard.lock();
            if R::ENABLED && !guard.map.is_empty() {
                self.tracer.record(
                    MAINTENANCE_CORE,
                    self.maintenance_now(),
                    EventKind::ShardLock,
                    idx as u64,
                    0,
                );
            }
            let ResidentShard {
                map, pending_dirty, ..
            } = &mut *guard;
            for (&head, ent) in map.iter() {
                let head = VirtPage(head);
                if let Some(out) = with_scheme!(self, s => s.unmap_all(head, ent.size)) {
                    torn += 1;
                    // The rebuild runs on the dedicated maintenance
                    // hyperthreads (like the scan timer); targets still pay
                    // their interrupt cost.
                    self.shootdown(None, head, ent.size.pages_4k() as u32, &out.mappers);
                    // Unmapping discards the PTE dirty bits; remember the
                    // write-back debt for the eventual eviction.
                    if out.dirty {
                        pending_dirty.insert(head.0);
                    }
                }
            }
        }
        // The rebuild's global shootdown tore down every PTE, so every
        // node-local replica is gone with it: clear the masks and count
        // the drops (the maintenance hyperthreads' own time is free,
        // like the scan timer's).
        if let Some(books) = &self.numa {
            let dropped = books.on_rebuild();
            self.global
                .replica_invalidations
                .fetch_add(dropped, Relaxed);
        }
        self.global.rebuilds.fetch_add(1, Relaxed);
        if R::ENABLED {
            self.tracer.record(
                MAINTENANCE_CORE,
                self.maintenance_now(),
                EventKind::Rebuild,
                torn as u64,
                0,
            );
        }
        Some(torn)
    }

    /// Virtual-time period for PSPT rebuilding (0 = disabled).
    pub fn rebuild_period(&self) -> Cycles {
        self.cfg.pspt_rebuild_period
    }

    /// Whether the configured policy uses the scan timer at all.
    pub fn wants_periodic_scan(&self) -> bool {
        self.policy.lock().wants_periodic_scan()
    }

    #[inline]
    fn block_of(&self, page: VirtPage) -> VirtPage {
        page.align_down(self.cfg.block_size)
    }

    #[inline]
    fn block_bytes(&self) -> u64 {
        self.cfg.block_size.bytes()
    }

    /// The fixed-size frame pool (every non-adaptive run).
    #[inline]
    fn pool(&self) -> &FramePool {
        match &self.frames {
            Frames::Pool(p) => p,
            Frames::Buddy(_) => unreachable!("fixed-size path in adaptive mode"),
        }
    }

    /// The buddy allocator (adaptive page-size runs only).
    #[inline]
    fn buddy(&self) -> &BuddyPool {
        match &self.frames {
            Frames::Buddy(b) => b,
            Frames::Pool(_) => unreachable!("adaptive path without buddy pool"),
        }
    }

    /// PTE writes needed to (un)map one `size` block on one core.
    #[inline]
    fn subentries_of(size: PageSize) -> u64 {
        match size {
            PageSize::M2 => 1,
            s => s.pages_4k() as u64,
        }
    }

    /// PTE writes needed to (un)map one configured block on one core.
    #[inline]
    fn subentries(&self) -> u64 {
        Self::subentries_of(self.cfg.block_size)
    }

    fn lock_for(&self, head: VirtPage) -> (&VirtualResource, Cycles) {
        match self.cfg.scheme {
            SchemeChoice::Regular => (&self.pt_global_lock, self.cfg.cost.regular_pt_lock),
            SchemeChoice::Pspt => {
                let h = (head.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize;
                (
                    &self.pt_shard_locks[h % LOCK_SHARDS],
                    self.cfg.cost.pspt_lock,
                )
            }
        }
    }

    /// Sends TLB shootdowns for the `span` 4 kB pages at `page` to
    /// `targets`.
    ///
    /// `requester = Some(core)` charges the serialized send loop and ack
    /// wait to that core (and counts it as sender); `None` models the
    /// dedicated statistics hyperthreads, whose own time is free but whose
    /// IPIs still interrupt every target.
    fn shootdown(&self, requester: Option<CoreId>, page: VirtPage, span: u32, targets: &CoreSet) {
        let source = requester.unwrap_or(CoreId(0));
        let cost = self.ring.shootdown(source, targets);
        if cost.targets > 0 {
            if let Some(req) = requester {
                self.clocks[req.index()].advance(cost.requester);
                let st = &self.core_stats[req.index()];
                owner_add(&st.shootdown_cycles, cost.requester);
                owner_add(&st.remote_inv_sent, cost.targets as u64);
                if R::ENABLED {
                    self.tracer.record(
                        req.0,
                        self.clocks[req.index()].now(),
                        EventKind::ShootdownSend,
                        cost.requester,
                        cost.targets as u64,
                    );
                }
            }
            for t in targets.iter() {
                if Some(t) == requester {
                    continue;
                }
                self.clocks[t.index()].charge_remote(cost.per_target);
                self.core_stats[t.index()]
                    .remote_inv_received
                    .fetch_add(1, Relaxed);
                self.mailboxes[t.index()].lock().push((page, span));
                self.mailbox_flags[t.index()].store(true, Relaxed);
                if R::ENABLED {
                    self.tracer.record(
                        t.0,
                        self.clocks[t.index()].now(),
                        EventKind::ShootdownAck,
                        page.0,
                        cost.per_target,
                    );
                }
            }
        }
        // Local invalidation on the requester, if it maps the page too.
        if let Some(req) = requester {
            if targets.contains(req) {
                self.clocks[req.index()].advance(self.cfg.cost.tlb_invlpg);
                self.mailboxes[req.index()].lock().push((page, span));
                self.mailbox_flags[req.index()].store(true, Relaxed);
            }
        }
    }

    /// Acquires a free frame for `requester`, evicting under the policy
    /// lock while the pool is dry. The policy lock is *not* held while
    /// allocating, so concurrent fault handlers only serialize when
    /// reclaim is actually needed.
    fn alloc_frame(&self, requester: CoreId) -> PhysFrame {
        let mut dry_spins = 0u32;
        loop {
            if let Some(frame) = self.pool().alloc_for(requester.index()) {
                return frame;
            }
            if let Some(frame) = self.try_evict_one(requester) {
                // The victim's frame transfers to the requester directly,
                // skipping a free-list round trip through the pool. Same
                // frame either way: with the pool dry, a free would be
                // the only frame the subsequent alloc could pop.
                return frame;
            }
            // Pool dry but the policy tracks nothing: every frame is in
            // flight on some other core between its `alloc` and its
            // resident-map publish. Back off and retry; if this persists
            // the device RAM is genuinely too small for the core count.
            dry_spins += 1;
            assert!(
                dry_spins < ALLOC_RETRY_LIMIT,
                "device RAM exhausted but policy tracks no blocks"
            );
            std::thread::yield_now();
        }
    }

    /// Evicts one victim block and hands its freed frame to the caller.
    /// Returns `None` when the policy has nothing to offer (transiently
    /// possible mid-race).
    fn try_evict_one(&self, requester: CoreId) -> Option<PhysFrame> {
        let mut policy = self.policy.lock();
        // The victim decision must see every insert that already
        // happened, so the buffers flush first.
        self.flush_locked(&mut policy);
        let mut oracle = KernelOracle {
            vmm: self,
            requester: Some(requester),
        };
        let victim = policy.select_victim(&mut oracle)?;
        if R::ENABLED {
            let count = with_scheme!(self, s => s.mapping_cores(victim)).count() as u64;
            let group = policy.victim_group(victim) as u64;
            self.tracer.record(
                requester.0,
                self.clocks[requester.index()].now(),
                EventKind::VictimSelect,
                victim.0,
                (count << 8) | group,
            );
        }
        // Take the victim's stripe for the whole teardown and remove it
        // from the resident map *first*: a concurrent minor fault on the
        // victim must go down the major path rather than re-map a frame
        // that is about to be recycled. (Lock order policy → stripe is
        // safe: the fault path never waits for the policy while holding
        // a stripe lock — events are buffered instead.)
        let shard_idx = self.resident_shard_of(victim);
        let mut shard = self.lock_resident_shard(requester, shard_idx);
        let ent = shard
            .map
            .remove(&victim.0)
            .expect("victim tracked in resident map");
        // Only mutated under this stripe's lock (single writer at a
        // time), so a load + store beats the atomic RMW.
        let len = &self.resident_len[shard_idx];
        len.store(len.load(Relaxed) - 1, Relaxed);
        // Write-back debt only exists after a PSPT rebuild; the length
        // check spares the common eviction a pointless hash probe.
        let mut dirty = !shard.pending_dirty.is_empty() && shard.pending_dirty.remove(&victim.0);
        // A victim with no mappings is possible right after a PSPT
        // rebuild: resident, but every PTE already torn down.
        let out = with_scheme!(self, s => s.unmap_all(victim, self.cfg.block_size));
        let clock = &self.clocks[requester.index()];
        let mut map_count = 0u32;
        if let Some(out) = &out {
            clock.advance(self.cfg.cost.pte_update * out.ptes_removed as u64);
            self.shootdown(
                Some(requester),
                victim,
                self.cfg.block_size.pages_4k() as u32,
                &out.mappers,
            );
            dirty |= out.dirty;
            map_count = out.mappers.count() as u32;
        }
        if dirty {
            // CMCP's priority signal also drives *how far down* the
            // hierarchy a victim goes: widely shared blocks land in the
            // fastest tier that can take them, private blocks sink.
            let rank = self.cfg.tiers().demotion_rank(map_count);
            self.write_back(
                requester,
                victim,
                self.cfg.block_size.pages_4k() as u64,
                rank,
            );
        }
        self.numa_on_evict(requester, victim);
        drop(shard);
        policy.on_evict(victim);
        self.global.evictions.fetch_add(1, Relaxed);
        Some(ent.frame)
    }

    /// Charges `core` the extra virtual-time cost of touching backing
    /// tier `tier` with `bytes` of traffic, on top of the DMA link time.
    /// Tier 0 of the flat hierarchy has zero latency and unmetered
    /// bandwidth, so flat runs take the early return and stay
    /// byte-identical to the pre-tier code (no clock advance, no
    /// counter, no event).
    fn charge_tier_penalty(&self, core: CoreId, tier: usize, bytes: u64) {
        let pen = self.cfg.tiers().tiers[tier].penalty(bytes);
        if pen == 0 {
            return;
        }
        let clock = &self.clocks[core.index()];
        clock.advance(pen);
        owner_add(&self.core_stats[core.index()].tier_penalty_cycles, pen);
        if R::ENABLED {
            self.tracer.record(
                core.0,
                clock.now(),
                EventKind::TierPenalty,
                pen,
                tier as u64,
            );
        }
    }

    /// Charges `core` one cross-node page-table crossing of `cycles` —
    /// a replica sync or remote master walk (`op` 0) or a replica
    /// invalidation (`op` 1) reaching `node` — with the paired
    /// exact-cost event. Zero charges are silent, like every other
    /// conditional cost layer.
    fn charge_replica(&self, core: CoreId, cycles: Cycles, op: u64, node: u8) {
        if cycles == 0 {
            return;
        }
        let clock = &self.clocks[core.index()];
        clock.advance(cycles);
        owner_add(&self.core_stats[core.index()].replica_sync_cycles, cycles);
        if R::ENABLED {
            self.tracer.record(
                core.0,
                clock.now(),
                EventKind::ReplicaSync,
                cycles,
                (op << 8) | u64::from(node),
            );
        }
    }

    /// NUMA bookkeeping for a major fault: places `head` on a home node
    /// (spilling — one link crossing — when the faulting core's node is
    /// full). Caller holds the block's stripe lock, so the books stay
    /// consistent with the resident map. No-op on single-node runs.
    fn numa_on_insert(&self, core: CoreId, head: VirtPage) {
        let Some(books) = &self.numa else { return };
        if let Some(home) = books.on_insert(core.index(), head) {
            self.global.remote_spills.fetch_add(1, Relaxed);
            let cost = books
                .config
                .cross_latency(books.node_of(core.index()) as usize, home as usize);
            self.charge_replica(core, cost, 0, home);
        }
    }

    /// NUMA bookkeeping for a minor fault: replica sync (replication
    /// on, first fault from a new node) or remote master walk
    /// (replication off, every remote fault), then the home-migration
    /// check against the block's current mapping-node histogram — the
    /// CMCP map-count-weighted access center. Caller holds the block's
    /// stripe lock. No-op on single-node runs.
    fn numa_on_map(&self, core: CoreId, head: VirtPage) {
        let Some(books) = &self.numa else { return };
        let nodes = books.config.len();
        let mut counts = [0u32; cmcp_arch::MAX_NODES];
        let mappers = with_scheme!(self, s => s.mapping_cores(head));
        for c in mappers.iter() {
            counts[books.node_of(c.index()) as usize] += 1;
        }
        let d = books.on_map(core.index(), head, &counts[..nodes]);
        if let Some(home) = d.sync_with {
            if d.counted_sync {
                self.global.replica_syncs.fetch_add(1, Relaxed);
            }
            let cost = books
                .config
                .cross_latency(books.node_of(core.index()) as usize, home as usize);
            self.charge_replica(core, cost, 0, home);
        }
        if let Some((from, to)) = d.migrate {
            self.global.page_migrations.fetch_add(1, Relaxed);
            let pen = books
                .config
                .xfer_penalty(from as usize, to as usize, self.block_bytes());
            if pen > 0 {
                let clock = &self.clocks[core.index()];
                clock.advance(pen);
                owner_add(&self.core_stats[core.index()].migration_cycles, pen);
                if R::ENABLED {
                    self.tracer.record(
                        core.0,
                        clock.now(),
                        EventKind::Migration,
                        pen,
                        (u64::from(from) << 8) | u64::from(to),
                    );
                }
            }
        }
    }

    /// NUMA bookkeeping for an eviction: releases the victim's budget
    /// and tears down the page-table state. With replication *on* the
    /// per-node replica clears piggyback on the TLB-shootdown IPIs the
    /// eviction already sends to every mapping core — the clear runs
    /// inside the shootdown handler on the remote node and the ack
    /// barrier the evictor already waits on orders it before frame
    /// reuse, so replicas cost counters, not extra critical-path
    /// cycles. With replication *off* there is nothing on the remote
    /// nodes for a handler to clear; the evictor itself must write the
    /// single master table before handing the frame out, and when the
    /// home is remote that is one synchronous link crossing. Caller
    /// holds the victim's stripe lock. No-op on single-node runs.
    fn numa_on_evict(&self, requester: CoreId, victim: VirtPage) {
        let Some(books) = &self.numa else { return };
        let Some(ent) = books.on_evict(victim) else {
            return;
        };
        let req_node = books.node_of(requester.index());
        if books.config.replicate {
            let dropped = u64::from(ent.mask.count_ones());
            self.global
                .replica_invalidations
                .fetch_add(dropped, Relaxed);
        } else if ent.home != req_node {
            self.global.replica_invalidations.fetch_add(1, Relaxed);
            let cost = books
                .config
                .cross_latency(req_node as usize, ent.home as usize);
            self.charge_replica(requester, cost, 1, ent.home);
        }
    }

    /// Writes a dirty victim of `pages` 4 kB pages back to the tier the
    /// demotion `rank` selects, riding out injected DMA errors and
    /// backing-store write failures.
    ///
    /// The happy path (no injector, or no fault rolled) is a single
    /// transfer plus the store — byte-identical to the pre-fault-layer
    /// code. Each injected DMA error burns a real engine slot (the data
    /// crossed the link before the abort), charges the full wait, then
    /// backs off exponentially and retries; each injected ENOSPC backs
    /// off and re-submits the store. A write-back that needed any
    /// retry — or that ran after offload-engine death — has lost the
    /// async offload pipeline and is counted as degraded to the
    /// synchronous path (`GlobalStats::sync_writebacks`). The victim's
    /// data is never dropped: this returns only once the host store
    /// accepted the block.
    fn write_back(&self, requester: CoreId, victim: VirtPage, pages: u64, rank: usize) {
        let clock = &self.clocks[requester.index()];
        let st = &self.core_stats[requester.index()];
        let inj = self.injector.as_ref();
        let bytes = pages * PageSize::K4.bytes();
        let tier = rank.min(self.cfg.tiers().tiers.len() - 1);
        let mut attempt = 0u32;
        loop {
            let c = self.dma.transfer_checked_tiered(
                clock.now(),
                bytes,
                DmaDirection::DeviceToHost,
                inj,
                &self.tracer,
                requester.0,
                tier,
            );
            let wait = c.reservation.end.saturating_sub(clock.now());
            clock.advance(wait);
            owner_add(&st.dma_wait_cycles, wait);
            if R::ENABLED {
                self.tracer.record(
                    requester.0,
                    clock.now(),
                    EventKind::DmaComplete,
                    wait,
                    DmaDirection::DeviceToHost.code(),
                );
            }
            if c.spike_cycles > 0 {
                self.global.latency_spikes.fetch_add(1, Relaxed);
                self.note_injected(requester, FaultSite::DmaLatency, attempt as u64);
            }
            if !c.failed {
                break;
            }
            self.global.dma_errors.fetch_add(1, Relaxed);
            self.note_injected(requester, FaultSite::DmaOut, attempt as u64);
            self.charge_backoff(requester, attempt, FaultSite::DmaOut);
            attempt += 1;
            assert!(
                attempt < MAX_RECOVERY_ATTEMPTS,
                "{MAX_RECOVERY_ATTEMPTS} consecutive write-back DMA errors on {victim}"
            );
        }
        let mut store_attempt = 0u32;
        loop {
            let out = self.backing.try_store(victim, pages, rank, inj);
            if out.stored {
                self.charge_tier_penalty(requester, out.tier, bytes);
                if out.demoted > 0 {
                    self.global.tier_demotions.fetch_add(out.demoted, Relaxed);
                }
                break;
            }
            self.global.enospc_events.fetch_add(1, Relaxed);
            self.note_injected(requester, FaultSite::Backing, store_attempt as u64);
            self.charge_backoff(requester, store_attempt, FaultSite::Backing);
            store_attempt += 1;
            assert!(
                store_attempt < MAX_RECOVERY_ATTEMPTS,
                "{MAX_RECOVERY_ATTEMPTS} consecutive ENOSPC failures storing {victim}"
            );
        }
        if attempt > 0 || store_attempt > 0 || self.offload_dead.load(Relaxed) {
            self.global.sync_writebacks.fetch_add(1, Relaxed);
        }
        self.global.writebacks.fetch_add(1, Relaxed);
    }

    /// Handles a page fault raised by `core` on the 4 kB page `page`.
    pub fn handle_fault(&self, core: CoreId, page: VirtPage, _write: bool) -> FaultKind {
        if self.cfg.adaptive {
            return self.handle_fault_adaptive(core, page);
        }
        let head = self.block_of(page);
        let clock = &self.clocks[core.index()];
        let st = &self.core_stats[core.index()];
        owner_add(&st.page_faults, 1);
        let t0 = clock.now();
        if R::ENABLED {
            self.tracer
                .record(core.0, t0, EventKind::FaultStart, page.0, 0);
        }
        clock.advance(self.cfg.cost.fault_base);

        // Page-table lock (virtual-time serialization). The queue bound
        // is the genuine worst case — every core convoying on one lock —
        // with headroom; it only binds against parallel-engine clock skew.
        let (lock, hold) = self.lock_for(head);
        let t_req = clock.now();
        let res = lock.acquire_bounded(t_req, hold, 4 * self.cfg.cores as u64 * hold);
        if res.queue_delay > 0 {
            owner_add(&st.lock_wait_cycles, res.queue_delay);
        }
        clock.advance_to(res.end);
        if R::ENABLED {
            self.tracer
                .record(core.0, t_req, EventKind::LockAcquire, res.queue_delay, hold);
            self.tracer
                .record(core.0, res.end, EventKind::LockRelease, head.0, 0);
        }

        // Residency transitions serialize on the block's stripe lock;
        // policy notifications are deferred into the per-core batch
        // buffer and applied under one policy-lock acquisition per
        // `batch_limit` events.
        let shard_idx = self.resident_shard_of(head);
        let kind = 'fault: loop {
            let mut shard = self.lock_resident_shard(core, shard_idx);
            if let Some(ent) = shard.map.get(&head.0).copied() {
                // Resident: PSPT minor fault (copy a sibling's PTE).
                match with_scheme!(self, s => s.map(core, head, ent.frame, self.cfg.block_size, true))
                {
                    Ok(MapOutcome::Copied { probes, map_count }) => {
                        clock.advance(
                            self.cfg.cost.pspt_probe * probes as u64
                                + self.cfg.cost.pte_update * self.subentries(),
                        );
                        // The new core-map count rides in the outcome
                        // (read from the directory entry `map` already
                        // locked), so the minor path never takes the
                        // directory lock a second time.
                        self.push_policy_event(
                            core,
                            PolicyEvent::MapCount {
                                block: head,
                                map_count,
                            },
                        );
                        self.numa_on_map(core, head);
                        break FaultKind::MinorCopy;
                    }
                    Ok(MapOutcome::Fresh) => {
                        // Resident but unmapped everywhere: the PTEs were
                        // torn down by a PSPT rebuild; re-establish this
                        // core's mapping (the frame never moved).
                        clock.advance(self.cfg.cost.pte_update * self.subentries());
                        self.push_policy_event(
                            core,
                            PolicyEvent::MapCount {
                                block: head,
                                map_count: 1,
                            },
                        );
                        self.numa_on_map(core, head);
                        break FaultKind::MinorCopy;
                    }
                    Err(_) => break FaultKind::Spurious,
                }
            }
            // Not resident: allocate (evicting when dry) with the stripe
            // lock released, then re-check — another core may have
            // faulted the same block in meanwhile.
            drop(shard);
            let mut frame = self.alloc_frame(core);
            shard = self.lock_resident_shard(core, shard_idx);
            if shard.map.contains_key(&head.0) {
                // Lost the race: hand the frame back and retry as minor.
                drop(shard);
                self.pool().free_for(frame, core.index());
                continue 'fault;
            }
            let block_pages = self.cfg.block_size.pages_4k() as u64;
            if let Some(tin) = self.backing.load(head, block_pages) {
                // Real content on the host: DMA it in, riding out
                // injected transfer errors. A failed attempt may have
                // torn a partial block into the frame, so the frame is
                // quarantined (while the pool has headroom) and the
                // retry lands in a fresh one; when frames are scarce the
                // same frame is reused — the retried DMA overwrites the
                // torn data in full.
                let inj = self.injector.as_ref();
                let mut attempt = 0u32;
                loop {
                    let c = self.dma.transfer_checked_tiered(
                        clock.now(),
                        self.block_bytes(),
                        DmaDirection::HostToDevice,
                        inj,
                        &self.tracer,
                        core.0,
                        tin.tier,
                    );
                    let wait = c.reservation.end.saturating_sub(clock.now());
                    clock.advance(wait);
                    owner_add(&st.dma_wait_cycles, wait);
                    if R::ENABLED {
                        self.tracer.record(
                            core.0,
                            clock.now(),
                            EventKind::DmaComplete,
                            wait,
                            DmaDirection::HostToDevice.code(),
                        );
                    }
                    if c.spike_cycles > 0 {
                        self.global.latency_spikes.fetch_add(1, Relaxed);
                        self.note_injected(core, FaultSite::DmaLatency, attempt as u64);
                    }
                    if !c.failed {
                        break;
                    }
                    self.global.dma_errors.fetch_add(1, Relaxed);
                    self.note_injected(core, FaultSite::DmaIn, attempt as u64);
                    self.charge_backoff(core, attempt, FaultSite::DmaIn);
                    attempt += 1;
                    assert!(
                        attempt < MAX_RECOVERY_ATTEMPTS,
                        "{MAX_RECOVERY_ATTEMPTS} consecutive page-in DMA errors on {head}"
                    );
                    if self.pool().usable_blocks() > self.cfg.cores {
                        // Quarantine the poisoned frame and retry into a
                        // fresh one. Allocation may need to evict, which
                        // takes the policy lock and a victim stripe —
                        // never while holding this block's stripe.
                        drop(shard);
                        self.pool().quarantine(frame);
                        owner_add(&st.quarantines, 1);
                        self.global.quarantined_frames.fetch_add(1, Relaxed);
                        if R::ENABLED {
                            self.tracer.record(
                                core.0,
                                clock.now(),
                                EventKind::Quarantine,
                                frame.0 as u64,
                                head.0,
                            );
                        }
                        frame = self.alloc_frame(core);
                        shard = self.lock_resident_shard(core, shard_idx);
                        if shard.map.contains_key(&head.0) {
                            // Another core faulted the block in while the
                            // stripe was unlocked: retry as minor.
                            drop(shard);
                            self.pool().free_for(frame, core.index());
                            continue 'fault;
                        }
                    }
                }
                self.charge_tier_penalty(core, tin.tier, self.block_bytes());
                if tin.promoted > 0 {
                    self.global.tier_promotions.fetch_add(tin.promoted, Relaxed);
                }
                self.global.refaults.fetch_add(1, Relaxed);
            }
            with_scheme!(self, s => s.map(core, head, frame, self.cfg.block_size, true))
                .expect("fresh block maps cleanly");
            clock.advance(self.cfg.cost.pte_update * self.subentries());
            shard.map.insert(
                head.0,
                Resident {
                    frame,
                    size: self.cfg.block_size,
                },
            );
            // Mutated under the stripe lock only — see the eviction path.
            let len = &self.resident_len[shard_idx];
            len.store(len.load(Relaxed) + 1, Relaxed);
            self.numa_on_insert(core, head);
            self.push_policy_event(
                core,
                PolicyEvent::Insert {
                    block: head,
                    map_count: 1,
                },
            );
            break FaultKind::Major;
        };
        self.maybe_flush(core);
        let spent = clock.now() - t0;
        owner_add(&st.fault_cycles, spent);
        if R::ENABLED {
            let resolution = match kind {
                FaultKind::Major => 0,
                FaultKind::MinorCopy => 1,
                FaultKind::Spurious => 2,
            };
            self.tracer
                .record(core.0, clock.now(), EventKind::FaultEnd, resolution, spent);
        }
        kind
    }

    /// Pressure controller: the mapping granularity for the next fresh
    /// region, from the buddy pool's free ratio. Plenty of headroom →
    /// 2 MB mappings (fewest faults, fewest PTEs); moderate pressure →
    /// 64 kB; a nearly full pool → 4 kB so eviction displaces the least
    /// data. Thresholds are in 1/256ths of the pool.
    fn adaptive_target(&self) -> PageSize {
        let b = self.buddy();
        let ratio = b.free_pages() * 256 / b.total_pages().max(1);
        if ratio >= 128 {
            PageSize::M2
        } else if ratio >= 32 {
            PageSize::K64
        } else {
            PageSize::K4
        }
    }

    /// The resident entry covering `page` at any granularity, with its
    /// head. Caller holds the stripe lock of `page`'s 2 MB region (all
    /// candidate heads share it — adaptive stripes hash the region head).
    fn covering_entry(shard: &ResidentShard, page: VirtPage) -> Option<(VirtPage, Resident)> {
        PageSize::ALL.iter().find_map(|&s| {
            let head = page.align_down(s);
            shard
                .map
                .get(&head.0)
                .filter(|ent| ent.size == s)
                .map(|&ent| (head, ent))
        })
    }

    /// Adaptive-mode allocation: a `size` block from the buddy pool,
    /// evicting (or splitting oversized victims) while it is dry or too
    /// fragmented. Mirrors [`Vmm::alloc_frame`], without the direct
    /// frame handoff — buddy coalescing decides what the freed pages can
    /// satisfy.
    fn alloc_block_adaptive(&self, requester: CoreId, size: PageSize) -> PhysFrame {
        let mut dry_spins = 0u32;
        loop {
            if let Some(frame) = self.buddy().alloc(size) {
                return frame;
            }
            if self.try_evict_one_adaptive(requester, size) {
                continue;
            }
            dry_spins += 1;
            assert!(
                dry_spins < ALLOC_RETRY_LIMIT,
                "device RAM exhausted but policy tracks no blocks"
            );
            std::thread::yield_now();
        }
    }

    /// Evicts one victim (or splits an oversized one and retries) to
    /// make progress toward a free block of `want` pages. Returns `false`
    /// when the policy has nothing to offer.
    ///
    /// This is where page-size adaptation meets CMCP: when the policy
    /// picks a victim *larger* than the granularity pressure currently
    /// wants, the victim is split in place — a radix-node rewrite, no
    /// shootdown, no DMA — and its children re-enter the policy with the
    /// parent's map count. Only blocks already at (or below) the wanted
    /// size are actually evicted, so high pressure sheds small amounts
    /// of data at a time.
    fn try_evict_one_adaptive(&self, requester: CoreId, want: PageSize) -> bool {
        let mut policy = self.policy.lock();
        // The victim decision must see every insert that already
        // happened, so the buffers flush first.
        self.flush_locked(&mut policy);
        let clock = &self.clocks[requester.index()];
        loop {
            let mut oracle = KernelOracle {
                vmm: self,
                requester: Some(requester),
            };
            let Some(victim) = policy.select_victim(&mut oracle) else {
                return false;
            };
            if R::ENABLED {
                let count = with_scheme!(self, s => s.mapping_cores(victim)).count() as u64;
                let group = policy.victim_group(victim) as u64;
                self.tracer.record(
                    requester.0,
                    clock.now(),
                    EventKind::VictimSelect,
                    victim.0,
                    (count << 8) | group,
                );
            }
            let m2 = victim.align_down(PageSize::M2);
            let shard_idx = self.resident_shard_of(m2);
            let mut shard = self.lock_resident_shard(requester, shard_idx);
            let ent = shard
                .map
                .get(&victim.0)
                .copied()
                .expect("victim tracked in resident map");
            if ent.size > want {
                // Split instead of evicting: the policy re-decides over
                // the children, each inheriting the parent's map count
                // (the CMCP signal survives the granularity change).
                let mc = with_scheme!(self, s => s.mapping_cores(victim)).count();
                let child = with_scheme!(self, s => s.split_block(victim, ent.size))
                    .unwrap_or_else(|| {
                        // Resident but unmapped everywhere (post-rebuild):
                        // nothing to rewrite in the tables, the residency
                        // metadata still splits.
                        ent.size.split_child().expect("split of a >4 kB block")
                    });
                let cspan = child.pages_4k() as u64;
                let children = ent.size.pages_4k() / child.pages_4k();
                shard.map.remove(&victim.0);
                let owed = shard.pending_dirty.remove(&victim.0);
                for k in 0..children as u64 {
                    let chead = VirtPage(victim.0 + k * cspan);
                    shard.map.insert(
                        chead.0,
                        Resident {
                            frame: ent.frame.add((k * cspan) as u32),
                            size: child,
                        },
                    );
                    if owed {
                        // The parent's write-back debt covers every byte;
                        // each child now owes its share.
                        shard.pending_dirty.insert(chead.0);
                    }
                }
                let len = &self.resident_len[shard_idx];
                len.store(len.load(Relaxed) + children - 1, Relaxed);
                let r = shard.regions.entry(m2.0).or_insert((ent.size, 1));
                r.0 = child;
                r.1 += children as u32 - 1;
                drop(shard);
                // One PTE rewrite per new head (the radix rewrite touched
                // every sub-entry, but those writes displace the unmap +
                // remap a whole-block eviction would have cost).
                clock.advance(self.cfg.cost.pte_update * children as u64);
                self.global.block_splits.fetch_add(1, Relaxed);
                // Under the held policy lock (buffers already flushed):
                // the parent leaves, the children enter with its count.
                policy.on_evict(victim);
                for k in 0..children as u64 {
                    policy.on_insert(VirtPage(victim.0 + k * cspan), mc);
                }
                continue;
            }
            // Victim is at (or below) the wanted granularity: evict it.
            shard.map.remove(&victim.0);
            let len = &self.resident_len[shard_idx];
            len.store(len.load(Relaxed) - 1, Relaxed);
            let region_empty = if let Some(r) = shard.regions.get_mut(&m2.0) {
                r.1 -= 1;
                r.1 == 0
            } else {
                false
            };
            if region_empty {
                // The next fault in this region re-consults the pressure
                // controller from scratch.
                shard.regions.remove(&m2.0);
            }
            let mut dirty =
                !shard.pending_dirty.is_empty() && shard.pending_dirty.remove(&victim.0);
            let out = with_scheme!(self, s => s.unmap_all(victim, ent.size));
            let mut map_count = 0u32;
            if let Some(out) = &out {
                clock.advance(self.cfg.cost.pte_update * out.ptes_removed as u64);
                self.shootdown(
                    Some(requester),
                    victim,
                    ent.size.pages_4k() as u32,
                    &out.mappers,
                );
                dirty |= out.dirty;
                map_count = out.mappers.count() as u32;
            }
            if dirty {
                let rank = self.cfg.tiers().demotion_rank(map_count);
                self.write_back(requester, victim, ent.size.pages_4k() as u64, rank);
            }
            drop(shard);
            self.buddy().free(ent.frame, ent.size);
            policy.on_evict(victim);
            self.global.evictions.fetch_add(1, Relaxed);
            return true;
        }
    }

    /// Adaptive-mode fault handler: like [`Vmm::handle_fault`], but the
    /// mapping granularity is chosen per 2 MB region by the pressure
    /// controller instead of fixed by the configuration, and device RAM
    /// comes from the buddy pool.
    fn handle_fault_adaptive(&self, core: CoreId, page: VirtPage) -> FaultKind {
        let m2 = page.align_down(PageSize::M2);
        let clock = &self.clocks[core.index()];
        let st = &self.core_stats[core.index()];
        owner_add(&st.page_faults, 1);
        let t0 = clock.now();
        if R::ENABLED {
            self.tracer
                .record(core.0, t0, EventKind::FaultStart, page.0, 0);
        }
        clock.advance(self.cfg.cost.fault_base);

        // Page-table lock, keyed by the region head so every granularity
        // of the same region serializes on one virtual resource.
        let (lock, hold) = self.lock_for(m2);
        let t_req = clock.now();
        let res = lock.acquire_bounded(t_req, hold, 4 * self.cfg.cores as u64 * hold);
        if res.queue_delay > 0 {
            owner_add(&st.lock_wait_cycles, res.queue_delay);
        }
        clock.advance_to(res.end);
        if R::ENABLED {
            self.tracer
                .record(core.0, t_req, EventKind::LockAcquire, res.queue_delay, hold);
            self.tracer
                .record(core.0, res.end, EventKind::LockRelease, m2.0, 0);
        }

        let shard_idx = self.resident_shard_of(m2);
        let kind = 'fault: loop {
            let mut shard = self.lock_resident_shard(core, shard_idx);
            if let Some((head, ent)) = Self::covering_entry(&shard, page) {
                // Resident at some granularity: PSPT minor fault.
                match with_scheme!(self, s => s.map(core, head, ent.frame, ent.size, true)) {
                    Ok(MapOutcome::Copied { probes, map_count }) => {
                        clock.advance(
                            self.cfg.cost.pspt_probe * probes as u64
                                + self.cfg.cost.pte_update * Self::subentries_of(ent.size),
                        );
                        self.push_policy_event(
                            core,
                            PolicyEvent::MapCount {
                                block: head,
                                map_count,
                            },
                        );
                        break FaultKind::MinorCopy;
                    }
                    Ok(MapOutcome::Fresh) => {
                        clock.advance(self.cfg.cost.pte_update * Self::subentries_of(ent.size));
                        self.push_policy_event(
                            core,
                            PolicyEvent::MapCount {
                                block: head,
                                map_count: 1,
                            },
                        );
                        break FaultKind::MinorCopy;
                    }
                    Err(_) => break FaultKind::Spurious,
                }
            }
            // Not resident: pick the region's granularity (the pressure
            // controller decides for a fresh region) and allocate with
            // the stripe released.
            let size = shard
                .regions
                .get(&m2.0)
                .map(|r| r.0)
                .unwrap_or_else(|| self.adaptive_target());
            let head = page.align_down(size);
            drop(shard);
            let mut frame = self.alloc_block_adaptive(core, size);
            shard = self.lock_resident_shard(core, shard_idx);
            // Re-check both races: the block may have been faulted in by
            // another core, and the region's granularity may have been
            // lowered by a split while the stripe was unlocked.
            if Self::covering_entry(&shard, page).is_some()
                || shard.regions.get(&m2.0).map(|r| r.0).unwrap_or(size) != size
            {
                drop(shard);
                self.buddy().free(frame, size);
                continue 'fault;
            }
            if let Some(tin) = self.backing.load(head, size.pages_4k() as u64) {
                let inj = self.injector.as_ref();
                let mut attempt = 0u32;
                loop {
                    let c = self.dma.transfer_checked_tiered(
                        clock.now(),
                        size.bytes(),
                        DmaDirection::HostToDevice,
                        inj,
                        &self.tracer,
                        core.0,
                        tin.tier,
                    );
                    let wait = c.reservation.end.saturating_sub(clock.now());
                    clock.advance(wait);
                    owner_add(&st.dma_wait_cycles, wait);
                    if R::ENABLED {
                        self.tracer.record(
                            core.0,
                            clock.now(),
                            EventKind::DmaComplete,
                            wait,
                            DmaDirection::HostToDevice.code(),
                        );
                    }
                    if c.spike_cycles > 0 {
                        self.global.latency_spikes.fetch_add(1, Relaxed);
                        self.note_injected(core, FaultSite::DmaLatency, attempt as u64);
                    }
                    if !c.failed {
                        break;
                    }
                    self.global.dma_errors.fetch_add(1, Relaxed);
                    self.note_injected(core, FaultSite::DmaIn, attempt as u64);
                    self.charge_backoff(core, attempt, FaultSite::DmaIn);
                    attempt += 1;
                    assert!(
                        attempt < MAX_RECOVERY_ATTEMPTS,
                        "{MAX_RECOVERY_ATTEMPTS} consecutive page-in DMA errors on {head}"
                    );
                    if self.buddy().usable_pages() > (self.cfg.cores * size.pages_4k()) as u64 {
                        // Quarantine the poisoned block and retry into a
                        // fresh one (see the fixed-size path).
                        drop(shard);
                        self.buddy().quarantine(frame, size);
                        owner_add(&st.quarantines, 1);
                        self.global.quarantined_frames.fetch_add(1, Relaxed);
                        if R::ENABLED {
                            self.tracer.record(
                                core.0,
                                clock.now(),
                                EventKind::Quarantine,
                                frame.0 as u64,
                                head.0,
                            );
                        }
                        frame = self.alloc_block_adaptive(core, size);
                        shard = self.lock_resident_shard(core, shard_idx);
                        if Self::covering_entry(&shard, page).is_some()
                            || shard.regions.get(&m2.0).map(|r| r.0).unwrap_or(size) != size
                        {
                            drop(shard);
                            self.buddy().free(frame, size);
                            continue 'fault;
                        }
                    }
                }
                self.charge_tier_penalty(core, tin.tier, size.bytes());
                if tin.promoted > 0 {
                    self.global.tier_promotions.fetch_add(tin.promoted, Relaxed);
                }
                self.global.refaults.fetch_add(1, Relaxed);
            }
            with_scheme!(self, s => s.map(core, head, frame, size, true))
                .expect("fresh block maps cleanly");
            clock.advance(self.cfg.cost.pte_update * Self::subentries_of(size));
            shard.map.insert(head.0, Resident { frame, size });
            let len = &self.resident_len[shard_idx];
            len.store(len.load(Relaxed) + 1, Relaxed);
            shard.regions.entry(m2.0).or_insert((size, 0)).1 += 1;
            self.push_policy_event(
                core,
                PolicyEvent::Insert {
                    block: head,
                    map_count: 1,
                },
            );
            break FaultKind::Major;
        };
        self.maybe_flush(core);
        let spent = clock.now() - t0;
        owner_add(&st.fault_cycles, spent);
        if R::ENABLED {
            let resolution = match kind {
                FaultKind::Major => 0,
                FaultKind::MinorCopy => 1,
                FaultKind::Spurious => 2,
            };
            self.tracer
                .record(core.0, clock.now(), EventKind::FaultEnd, resolution, spent);
        }
        kind
    }

    /// One statistics-scan timer tick (every `scan_period` cycles of
    /// virtual time, run by dedicated hyperthreads in the paper's setup).
    pub fn scan_tick(&self) {
        let mut policy = self.policy.lock();
        if !policy.wants_periodic_scan() {
            return;
        }
        // The scan must see every insert that already happened.
        self.flush_locked(&mut policy);
        let budget = if self.cfg.scan_budget > 0 {
            self.cfg.scan_budget
        } else {
            (policy.resident() / 8).max(32)
        };
        let mut oracle = KernelOracle {
            vmm: self,
            requester: None,
        };
        policy.scan_tick(budget, &mut oracle);
        self.global.scan_ticks.fetch_add(1, Relaxed);
    }
}

/// The kernel-side implementation of [`AccessBitOracle`]: every query is
/// a real PTE scan with real shootdowns.
struct KernelOracle<'a, R: Recorder> {
    vmm: &'a Vmm<R>,
    /// `Some(core)`: reclaim path, costs charged to the faulting core.
    /// `None`: the scan timer's dedicated hyperthreads.
    requester: Option<CoreId>,
}

impl<R: Recorder> AccessBitOracle for KernelOracle<'_, R> {
    fn test_and_clear(&mut self, block: VirtPage) -> bool {
        // Adaptive mode: the policy tracks mixed-size blocks, so look up
        // the victim candidate's actual granularity. Safe to take the
        // stripe here — the oracle is only consulted with no stripe lock
        // held (victim selection precedes the stripe acquisition, and
        // the scan timer holds none).
        let size = if self.vmm.cfg.adaptive {
            let m2 = block.align_down(PageSize::M2);
            let shard = self.vmm.resident[self.vmm.resident_shard_of(m2)].lock();
            shard
                .map
                .get(&block.0)
                .map(|ent| ent.size)
                .unwrap_or(self.vmm.cfg.block_size)
        } else {
            self.vmm.cfg.block_size
        };
        let scan = with_scheme!(self.vmm, s => s.test_and_clear_accessed(block, size));
        self.vmm
            .global
            .scan_ptes
            .fetch_add(scan.ptes_examined as u64, Relaxed);
        if let Some(core) = self.requester {
            self.vmm.clocks[core.index()]
                .advance(self.vmm.cfg.cost.scan_pte * scan.ptes_examined as u64);
        }
        if R::ENABLED {
            let (core, ts, charged) = match self.requester {
                Some(c) => (
                    c.0,
                    self.vmm.clocks[c.index()].now(),
                    self.vmm.cfg.cost.scan_pte * scan.ptes_examined as u64,
                ),
                None => (MAINTENANCE_CORE, self.vmm.maintenance_now(), 0),
            };
            self.vmm.tracer.record(
                core,
                ts,
                EventKind::PolicyScan,
                scan.ptes_examined as u64,
                charged,
            );
        }
        if scan.accessed && !scan.invalidate.is_empty() {
            // x86 requirement: a cleared accessed bit forces the cached
            // translation out of every affected TLB (paper §3).
            self.vmm.shootdown(
                self.requester,
                block,
                size.pages_4k() as u32,
                &scan.invalidate,
            );
        }
        scan.accessed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcp_core::PolicyKind;
    use std::sync::atomic::Ordering::Relaxed;

    fn vmm(cores: usize, blocks: usize) -> Vmm {
        Vmm::new(KernelConfig::new(cores, blocks))
    }

    #[test]
    fn first_touch_fault_maps_block() {
        let v = vmm(2, 4);
        let k = v.handle_fault(CoreId(0), VirtPage(100), false);
        assert_eq!(k, FaultKind::Major);
        assert!(v.translate(CoreId(0), VirtPage(100)).is_some());
        assert_eq!(v.resident_blocks(), 1);
        assert_eq!(v.core_stats()[0].page_faults.load(Relaxed), 1);
        // First touch: no DMA (zero-fill), no eviction.
        assert_eq!(v.dma().bytes_in(), 0);
        assert_eq!(v.global_stats().snapshot().evictions, 0);
    }

    #[test]
    fn pspt_minor_fault_copies_pte() {
        let v = vmm(2, 4);
        v.handle_fault(CoreId(0), VirtPage(100), false);
        let k = v.handle_fault(CoreId(1), VirtPage(100), false);
        assert_eq!(k, FaultKind::MinorCopy);
        assert!(v.translate(CoreId(1), VirtPage(100)).is_some());
        assert_eq!(v.resident_blocks(), 1, "still one resident block");
        let hist = v.sharing_histogram().unwrap();
        assert_eq!(hist[1], 1, "one block mapped by exactly 2 cores");
    }

    #[test]
    fn eviction_when_pool_exhausted() {
        let v = vmm(1, 2);
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.handle_fault(CoreId(0), VirtPage(1), false);
        assert_eq!(v.pool_free(), 0);
        v.handle_fault(CoreId(0), VirtPage(2), false);
        assert_eq!(v.resident_blocks(), 2);
        assert_eq!(v.global_stats().snapshot().evictions, 1);
        // FIFO: block 0 was evicted.
        assert!(v.translate(CoreId(0), VirtPage(0)).is_none());
        assert!(v.translate(CoreId(0), VirtPage(2)).is_some());
    }

    #[test]
    fn clean_eviction_skips_writeback_dirty_pays_it() {
        let v = vmm(1, 1);
        v.handle_fault(CoreId(0), VirtPage(0), false); // read only
        v.handle_fault(CoreId(0), VirtPage(1), false); // evicts clean block 0
        assert_eq!(v.global_stats().snapshot().writebacks, 0);
        assert_eq!(v.dma().bytes_out(), 0);
        // Dirty the resident block, then evict it.
        v.mark_accessed(CoreId(0), VirtPage(1), true);
        v.handle_fault(CoreId(0), VirtPage(2), false);
        assert_eq!(v.global_stats().snapshot().writebacks, 1);
        assert_eq!(v.dma().bytes_out(), 4096);
    }

    #[test]
    fn refault_of_written_back_block_costs_dma_in() {
        let v = vmm(1, 1);
        v.handle_fault(CoreId(0), VirtPage(0), true);
        v.mark_accessed(CoreId(0), VirtPage(0), true); // dirty
        v.handle_fault(CoreId(0), VirtPage(1), false); // evict + write back 0
        assert_eq!(v.dma().bytes_in(), 0);
        v.handle_fault(CoreId(0), VirtPage(0), false); // refault 0 from host
        assert_eq!(v.dma().bytes_in(), 4096);
        assert_eq!(v.global_stats().snapshot().refaults, 1);
    }

    #[test]
    fn eviction_shoots_down_mapping_cores_only_under_pspt() {
        let v = Vmm::new(KernelConfig::new(8, 2));
        // Block 0 mapped by cores 0 and 1; block 1 by core 2.
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.handle_fault(CoreId(1), VirtPage(0), false);
        v.handle_fault(CoreId(2), VirtPage(1), false);
        // Core 3 faults a new block: FIFO evicts block 0 → shootdown to
        // cores 0 and 1 only.
        v.handle_fault(CoreId(3), VirtPage(2), false);
        let recv: Vec<u64> = (0..8)
            .map(|c| v.core_stats()[c].remote_inv_received.load(Relaxed))
            .collect();
        assert_eq!(recv[0], 1);
        assert_eq!(recv[1], 1);
        assert_eq!(recv[2], 0, "core2 does not map block 0");
        assert_eq!(recv[3..].iter().sum::<u64>(), 0);
        // Their mailboxes hold the invalidation.
        let mut out = Vec::new();
        v.drain_invalidations(CoreId(0), &mut out);
        assert_eq!(out, vec![(VirtPage(0), 1)]);
    }

    #[test]
    fn regular_tables_broadcast_on_eviction() {
        let v = Vmm::new(KernelConfig::new(8, 2).with_scheme(SchemeChoice::Regular));
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.handle_fault(CoreId(0), VirtPage(1), false);
        v.handle_fault(CoreId(0), VirtPage(2), false); // evicts block 0
        let recv: u64 = (1..8)
            .map(|c| v.core_stats()[c].remote_inv_received.load(Relaxed))
            .sum();
        assert_eq!(recv, 7, "all other cores interrupted");
        assert!(v.core_stats()[0].remote_inv_sent.load(Relaxed) >= 7);
    }

    #[test]
    fn remote_charges_land_on_target_clocks() {
        let v = Vmm::new(KernelConfig::new(4, 1));
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.handle_fault(CoreId(1), VirtPage(0), false);
        let before = v.clocks()[1].now();
        // Core 2 faults; eviction of block 0 interrupts cores 0 and 1.
        v.handle_fault(CoreId(2), VirtPage(1), false);
        assert!(v.clocks()[1].now() > before, "target clock charged");
    }

    #[test]
    fn lru_scan_tick_causes_remote_invalidations_cmcp_does_not() {
        let run = |policy: PolicyKind| -> u64 {
            let v = Vmm::new(KernelConfig::new(4, 8).with_policy(policy));
            for b in 0..4u64 {
                v.handle_fault(CoreId(0), VirtPage(b), false);
                v.handle_fault(CoreId(1), VirtPage(b), false);
                // Hardware sets the accessed bit when the cores touch the
                // freshly mapped pages.
                v.mark_accessed(CoreId(0), VirtPage(b), false);
                v.mark_accessed(CoreId(1), VirtPage(b), false);
            }
            v.scan_tick();
            (0..4)
                .map(|c| v.core_stats()[c].remote_inv_received.load(Relaxed))
                .sum()
        };
        assert!(
            run(PolicyKind::Lru) > 0,
            "LRU scanning must shoot down TLBs"
        );
        assert_eq!(run(PolicyKind::Cmcp { p: 0.75 }), 0, "CMCP never scans");
        assert_eq!(run(PolicyKind::Fifo), 0, "FIFO never scans");
    }

    #[test]
    fn cmcp_uses_map_counts_from_pspt() {
        // Three blocks: one private, one mapped by all 4 cores, capacity
        // 2. With p=0.5 (priority target 1), the shared block must
        // survive the private ones.
        let v = Vmm::new(KernelConfig::new(4, 2).with_policy(PolicyKind::Cmcp { p: 0.5 }));
        v.handle_fault(CoreId(0), VirtPage(0), false); // becomes shared
        for c in 1..4u16 {
            v.handle_fault(CoreId(c), VirtPage(0), false);
        }
        v.handle_fault(CoreId(0), VirtPage(1), false); // private
                                                       // Fault a third block: victim must be the private block 1, not
                                                       // the 4-core block 0.
        v.handle_fault(CoreId(1), VirtPage(2), false);
        assert!(
            v.translate(CoreId(0), VirtPage(0)).is_some(),
            "shared block survives"
        );
        assert!(
            v.translate(CoreId(0), VirtPage(1)).is_none(),
            "private block evicted"
        );
    }

    #[test]
    fn lock_contention_is_recorded_for_regular_tables() {
        let v = Vmm::new(KernelConfig::new(2, 4).with_scheme(SchemeChoice::Regular));
        // Two cores fault at the same virtual time: the second queues.
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.handle_fault(CoreId(1), VirtPage(1), false);
        assert!(v.lock_queue_cycles() > 0, "global PT lock must serialize");
    }

    #[test]
    fn spurious_fault_under_regular_tables() {
        let v = Vmm::new(KernelConfig::new(2, 4).with_scheme(SchemeChoice::Regular));
        v.handle_fault(CoreId(0), VirtPage(0), false);
        // Core 1 faults the same (already mapped) block — e.g. a stale
        // TLB-miss race in the parallel engine.
        let k = v.handle_fault(CoreId(1), VirtPage(0), false);
        assert_eq!(k, FaultKind::Spurious);
        assert_eq!(v.resident_blocks(), 1);
    }

    #[test]
    fn block_size_64k_moves_64k_per_transfer() {
        let v = Vmm::new(KernelConfig::new(1, 1).with_block_size(PageSize::K64));
        v.handle_fault(CoreId(0), VirtPage(0), false);
        v.mark_accessed(CoreId(0), VirtPage(3), true); // dirty a sub-page
        v.handle_fault(CoreId(0), VirtPage(16), false); // evict block 0
        assert_eq!(v.dma().bytes_out(), 65536);
        // Any sub-page of block 0 faults again → 64 kB DMA in.
        v.handle_fault(CoreId(0), VirtPage(5), false);
        assert_eq!(v.dma().bytes_in(), 65536);
    }

    #[test]
    fn fault_on_any_subpage_maps_whole_block() {
        let v = Vmm::new(KernelConfig::new(1, 2).with_block_size(PageSize::K64));
        v.handle_fault(CoreId(0), VirtPage(0x4a), false);
        for p in 0x40..0x50u64 {
            assert!(v.translate(CoreId(0), VirtPage(p)).is_some(), "page {p:#x}");
        }
    }

    impl Vmm {
        fn pool_free(&self) -> usize {
            self.pool().free_blocks()
        }
    }
}
