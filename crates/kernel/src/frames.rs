//! The device-RAM frame pool.
//!
//! Physical memory on the co-processor is handed out in *blocks*: aligned
//! runs of 4 kB frames matching the experiment's page size (1, 16 or 512
//! frames). Each experiment fixes one block size, so the pool is a free
//! stack of block-aligned runs — mirroring how the paper's kernel
//! dedicates a physically contiguous region to the PSPT computation area.
//!
//! For the parallel engine the free stack is *sharded*: each shard is a
//! lock-free Treiber stack threaded through a preallocated `next` array
//! (one slot per block), so concurrent fault handlers allocate from
//! their home shard without ever taking a host lock, stealing from the
//! other shards round-robin only when their own runs dry. The stack head
//! packs a 32-bit version tag next to the slot index in one `AtomicU64`,
//! which defeats the ABA problem without unsafe code or allocation.
//!
//! Frame numbers are opaque to the simulation — no counter, report, or
//! trace payload depends on *which* block a page lands in — so the
//! allocation order changing across shard layouts does not perturb
//! virtual-time results.

use std::sync::atomic::{AtomicIsize, AtomicU32, AtomicU64, Ordering};

use cmcp_arch::{PageSize, PhysFrame};

/// Sentinel: an empty stack / end of the free list (slot indices are
/// stored +1 so 0 can mean "none").
const NIL: u32 = 0;

/// One lock-free LIFO of free blocks (head only; the links live in the
/// pool-wide `next` array).
#[derive(Debug, Default)]
struct Shard {
    /// `(version << 32) | (slot + 1)`; slot part [`NIL`] when empty.
    head: AtomicU64,
    /// Blocks currently on this shard's stack (relaxed, for stats and
    /// steal targeting; the stack itself is the source of truth). Signed:
    /// the counter updates trail the head CAS, so a pop racing a push on
    /// a near-empty shard can observe -1 for an instant.
    len: AtomicIsize,
}

#[inline]
fn pack(version: u32, slot_plus_one: u32) -> u64 {
    ((version as u64) << 32) | slot_plus_one as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Fixed-block-size frame allocator over the device RAM.
#[derive(Debug)]
pub struct FramePool {
    block_size: PageSize,
    /// Per-slot successor link: `next[slot]` is the `slot + 1` of the
    /// block below it on its shard's stack, or [`NIL`]. A slot is only
    /// written by the thread that currently owns the block (it is off
    /// every stack while owned), so plain stores with the CAS on the
    /// shard head publishing them are sufficient.
    next: Vec<AtomicU32>,
    shards: Vec<Shard>,
    total_blocks: usize,
    /// Poisoned-frame quarantine: a dedicated Treiber stack that
    /// [`FramePool::alloc_for`] never pops, so a frame whose page-in DMA
    /// failed unrecoverably can be parked without ever re-entering
    /// circulation. Excluded from [`FramePool::free_blocks`].
    quarantine: Shard,
    /// Signed count of blocks still in circulation (free or allocated):
    /// `total_blocks` minus completed quarantines. Signed for the same
    /// reason as [`Shard::len`] — a racing reader must never observe a
    /// transient underflow as a huge unsigned value.
    usable: AtomicIsize,
    /// Blocks ever quarantined (monotone).
    quarantined: AtomicU64,
    /// Double-free detector, debug builds only: one flag per slot.
    #[cfg(debug_assertions)]
    on_free_list: Vec<std::sync::atomic::AtomicBool>,
}

impl FramePool {
    /// A pool of `blocks` blocks of `block_size` each, starting at
    /// physical frame 0, with a single freelist shard (the layout the
    /// deterministic engine and unit tests use).
    pub fn new(block_size: PageSize, blocks: usize) -> FramePool {
        FramePool::with_shards(block_size, blocks, 1)
    }

    /// A pool striped over `shards` lock-free freelists. Blocks are
    /// dealt round-robin (block *i* starts on shard `i % shards`) and
    /// pushed in reverse so every shard allocates in ascending order.
    pub fn with_shards(block_size: PageSize, blocks: usize, shards: usize) -> FramePool {
        let shards = shards.clamp(1, blocks.max(1));
        let pool = FramePool {
            block_size,
            next: (0..blocks).map(|_| AtomicU32::new(NIL)).collect(),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            total_blocks: blocks,
            quarantine: Shard::default(),
            usable: AtomicIsize::new(blocks as isize),
            quarantined: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            on_free_list: (0..blocks)
                .map(|_| std::sync::atomic::AtomicBool::new(true))
                .collect(),
        };
        for slot in (0..blocks as u32).rev() {
            let shard = &pool.shards[slot as usize % shards];
            let (version, top) = unpack(shard.head.load(Ordering::Relaxed));
            pool.next[slot as usize].store(top, Ordering::Relaxed);
            shard.head.store(pack(version, slot + 1), Ordering::Relaxed);
            shard.len.fetch_add(1, Ordering::Relaxed);
        }
        pool
    }

    /// Block size served by this pool.
    pub fn block_size(&self) -> PageSize {
        self.block_size
    }

    /// Total capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of freelist shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently free blocks (relaxed sum over the shard counters —
    /// exact when the pool is quiescent, approximate mid-race: counter
    /// updates trail the stack CAS, so the sum is clamped at zero).
    pub fn free_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum::<isize>()
            .max(0) as usize
    }

    #[inline]
    fn slot_of(&self, frame: PhysFrame) -> u32 {
        frame.0 / self.block_size.pages_4k() as u32
    }

    /// Pops from one shard's Treiber stack.
    fn pop_shard(&self, shard: &Shard) -> Option<PhysFrame> {
        let mut observed = shard.head.load(Ordering::Acquire);
        loop {
            let (version, top) = unpack(observed);
            if top == NIL {
                return None;
            }
            let slot = top - 1;
            let below = self.next[slot as usize].load(Ordering::Acquire);
            let replacement = pack(version.wrapping_add(1), below);
            match shard.head.compare_exchange_weak(
                observed,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    shard.len.fetch_sub(1, Ordering::Relaxed);
                    #[cfg(debug_assertions)]
                    self.on_free_list[slot as usize].store(false, Ordering::Relaxed);
                    let span = self.block_size.pages_4k() as u32;
                    return Some(PhysFrame(slot * span));
                }
                Err(actual) => observed = actual,
            }
        }
    }

    /// Pushes onto one shard's Treiber stack.
    fn push_shard(&self, shard: &Shard, frame: PhysFrame) {
        let slot = self.slot_of(frame);
        #[cfg(debug_assertions)]
        {
            let was = self.on_free_list[slot as usize].swap(true, Ordering::Relaxed);
            debug_assert!(!was, "double free of {frame}");
        }
        let mut observed = shard.head.load(Ordering::Acquire);
        loop {
            let (version, top) = unpack(observed);
            self.next[slot as usize].store(top, Ordering::Relaxed);
            let replacement = pack(version.wrapping_add(1), slot + 1);
            match shard.head.compare_exchange_weak(
                observed,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    shard.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => observed = actual,
            }
        }
    }

    /// Takes a block, or `None` when device RAM is exhausted (the caller
    /// must evict first). Equivalent to [`FramePool::alloc_for`] with
    /// home shard 0.
    pub fn alloc(&self) -> Option<PhysFrame> {
        self.alloc_for(0)
    }

    /// Takes a block, preferring the home shard `hint % shards` and
    /// work-stealing round-robin from the remaining shards when it is
    /// dry. Returns `None` only when *every* shard is empty.
    pub fn alloc_for(&self, hint: usize) -> Option<PhysFrame> {
        let n = self.shards.len();
        let home = hint % n;
        for probe in 0..n {
            let shard = &self.shards[(home + probe) % n];
            if let Some(frame) = self.pop_shard(shard) {
                return Some(frame);
            }
        }
        None
    }

    /// Returns a block to the pool (shard 0).
    ///
    /// Panics if the frame is not block-aligned — catching double frees
    /// of mis-sized runs early.
    pub fn free(&self, frame: PhysFrame) {
        self.free_for(frame, 0);
    }

    /// Returns a block to the shard `hint % shards`, keeping frames near
    /// the core that releases them.
    ///
    /// Panics if the frame is not block-aligned — catching double frees
    /// of mis-sized runs early.
    pub fn free_for(&self, frame: PhysFrame, hint: usize) {
        let span = self.block_size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "freeing unaligned block head {frame}"
        );
        debug_assert!(
            (self.slot_of(frame) as usize) < self.total_blocks,
            "freeing {frame} beyond the pool"
        );
        // No pool-level occupancy assert here: `free_blocks()` is a racy
        // relaxed sum that can transiently over-read mid-race, so it is
        // not a sound oracle. The per-slot `on_free_list` flags catch
        // genuine double frees exactly.
        self.push_shard(&self.shards[hint % self.shards.len()], frame);
    }

    /// Permanently parks an *owned* block on the quarantine stack after
    /// an unrecoverable page-in error: it never returns from
    /// [`FramePool::alloc_for`] again. The signed `usable` counter is
    /// decremented exactly once, here, before the frame becomes visible
    /// on any stack — a steal racing this call can only miss the frame
    /// (it is on no allocatable shard), never double-count it, so
    /// `usable_blocks() == total_blocks() - quarantined_blocks()` holds
    /// at every quiescent point. The caller must own the frame (the
    /// debug double-free flags enforce this), which also rules out a
    /// concurrent `free_for` of the same block.
    pub fn quarantine(&self, frame: PhysFrame) {
        let span = self.block_size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "quarantining unaligned block head {frame}"
        );
        self.usable.fetch_sub(1, Ordering::Relaxed);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.push_shard(&self.quarantine, frame);
    }

    /// Blocks still in circulation (free or allocated): total minus
    /// quarantined. Clamped at zero like [`FramePool::free_blocks`].
    pub fn usable_blocks(&self) -> usize {
        self.usable.load(Ordering::Relaxed).max(0) as usize
    }

    /// Blocks ever quarantined.
    pub fn quarantined_blocks(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_blocks() {
        let pool = FramePool::new(PageSize::K64, 4);
        for _ in 0..4 {
            let f = pool.alloc().unwrap();
            assert_eq!(f.0 % 16, 0, "64kB block must be 16-frame aligned");
        }
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn free_recycles() {
        let pool = FramePool::new(PageSize::K4, 2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert_eq!(pool.free_blocks(), 0);
        pool.free(a);
        assert_eq!(pool.free_blocks(), 1);
        assert_eq!(pool.alloc(), Some(a));
    }

    #[test]
    fn distinct_blocks_never_overlap() {
        let pool = FramePool::new(PageSize::M2, 8);
        let mut heads: Vec<u32> = (0..8).map(|_| pool.alloc().unwrap().0).collect();
        heads.sort_unstable();
        for w in heads.windows(2) {
            assert!(w[1] - w[0] >= 512, "2MB blocks are 512 frames apart");
        }
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_free_is_rejected() {
        let pool = FramePool::new(PageSize::K64, 2);
        pool.free(PhysFrame(3));
    }

    #[test]
    fn capacity_accounting() {
        let pool = FramePool::new(PageSize::K4, 100);
        assert_eq!(pool.total_blocks(), 100);
        assert_eq!(pool.free_blocks(), 100);
        assert_eq!(pool.block_size(), PageSize::K4);
        assert_eq!(pool.shard_count(), 1);
    }

    #[test]
    fn single_shard_allocates_ascending() {
        let pool = FramePool::new(PageSize::K4, 8);
        let heads: Vec<u32> = (0..8).map(|_| pool.alloc().unwrap().0).collect();
        assert_eq!(heads, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn sharded_pool_serves_every_block_exactly_once() {
        let pool = FramePool::with_shards(PageSize::K64, 10, 4);
        assert_eq!(pool.shard_count(), 4);
        let mut heads: Vec<u32> = (0..10).map(|i| pool.alloc_for(i).unwrap().0).collect();
        assert!(pool.alloc_for(0).is_none());
        heads.sort_unstable();
        assert_eq!(heads, (0..10u32).map(|i| i * 16).collect::<Vec<u32>>());
    }

    #[test]
    fn home_shard_is_preferred() {
        let pool = FramePool::with_shards(PageSize::K4, 8, 4);
        // Shard 2 initially holds blocks 2 and 6; it pops ascending.
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(2)));
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(6)));
        // Dry home shard steals from the next shard round-robin.
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(3)));
    }

    #[test]
    fn free_for_lands_on_the_hinted_shard() {
        let pool = FramePool::with_shards(PageSize::K4, 4, 2);
        let f = pool.alloc_for(0).unwrap();
        pool.free_for(f, 1);
        // Drain shard 1: the freed frame must come back from there
        // (shard 1 started with blocks 1 and 3; the freed block 0 is on
        // top of its LIFO).
        assert_eq!(pool.alloc_for(1), Some(f));
    }

    #[test]
    fn shards_clamp_to_block_count() {
        let pool = FramePool::with_shards(PageSize::K4, 2, 64);
        assert_eq!(pool.shard_count(), 2);
        assert!(pool.alloc_for(17).is_some());
    }

    #[test]
    fn near_empty_shard_races_never_over_read_occupancy() {
        // Regression: a pop racing a push on an empty shard used to drive
        // the unsigned shard counter to usize::MAX for an instant, so a
        // concurrent occupancy read claimed the pool held ~2^64 free
        // blocks (and a debug assert built on that read panicked a
        // parallel-engine worker). Hammer tiny shards and check the sum
        // never exceeds capacity.
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 4, 2));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..20_000usize {
                        if let Some(f) = pool.alloc_for(w) {
                            assert!(pool.free_blocks() <= pool.total_blocks());
                            pool.free_for(f, w + 1);
                        }
                        assert!(pool.free_blocks() <= pool.total_blocks());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn quarantine_under_steal_races_decrements_usable_exactly_once() {
        // Extension of the PR 2 underflow regression for the fault
        // layer: while workers hammer alloc/free across shards (every
        // alloc_for here steals once its home shard dries), others
        // quarantine what they win. The signed usable counter must drop
        // by exactly one per quarantine — never zero (leak), never two
        // (double decrement via a racing steal) — and must never be
        // observed above capacity mid-race.
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 64, 4));
        let quarantines = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let pool = Arc::clone(&pool);
                let quarantines = Arc::clone(&quarantines);
                std::thread::spawn(move || {
                    for round in 0..10_000usize {
                        let Some(f) = pool.alloc_for(w) else { continue };
                        assert!(pool.usable_blocks() <= pool.total_blocks());
                        assert!(pool.free_blocks() <= pool.total_blocks());
                        // Each worker quarantines 4 of its wins, spread
                        // over the run so steals are in flight.
                        if round % 2500 == 1 {
                            pool.quarantine(f);
                            quarantines.fetch_add(1, Ordering::Relaxed);
                        } else {
                            pool.free_for(f, w + round);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let q = quarantines.load(Ordering::Relaxed);
        assert_eq!(q, 16, "4 workers × 4 quarantines");
        assert_eq!(pool.quarantined_blocks(), q);
        assert_eq!(pool.usable_blocks(), 64 - q as usize);
        assert_eq!(pool.free_blocks(), 64 - q as usize);
        // Quarantined blocks are really out of circulation: draining the
        // pool yields exactly the usable count, all distinct.
        let mut heads: Vec<u32> = std::iter::from_fn(|| pool.alloc_for(0).map(|f| f.0)).collect();
        heads.sort_unstable();
        heads.dedup();
        assert_eq!(heads.len(), 64 - q as usize);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn freeing_a_quarantined_block_is_caught() {
        let pool = FramePool::new(PageSize::K4, 2);
        let f = pool.alloc().unwrap();
        pool.quarantine(f);
        pool.free(f);
    }

    #[test]
    fn concurrent_alloc_free_conserves_blocks() {
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 64, 8));
        let workers = 8;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..2_000usize {
                        if let Some(f) = pool.alloc_for(w) {
                            held.push(f);
                        }
                        if round % 3 == 0 || held.len() > 4 {
                            if let Some(f) = held.pop() {
                                pool.free_for(f, w + round);
                            }
                        }
                    }
                    for f in held {
                        pool.free_for(f, w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_blocks(), 64, "every block returned exactly once");
        // And they are all still distinct, alloc-able blocks.
        let mut heads: Vec<u32> = (0..64).map(|i| pool.alloc_for(i).unwrap().0).collect();
        heads.sort_unstable();
        heads.dedup();
        assert_eq!(heads.len(), 64);
    }
}
