//! The device-RAM frame pool.
//!
//! Physical memory on the co-processor is handed out in *blocks*: aligned
//! runs of 4 kB frames matching the experiment's page size (1, 16 or 512
//! frames). Each experiment fixes one block size, so the pool is a simple
//! free stack of block-aligned runs — mirroring how the paper's kernel
//! dedicates a physically contiguous region to the PSPT computation area.

use parking_lot::Mutex;

use cmcp_arch::{PageSize, PhysFrame};

/// Fixed-block-size frame allocator over the device RAM.
#[derive(Debug)]
pub struct FramePool {
    block_size: PageSize,
    free: Mutex<Vec<PhysFrame>>,
    total_blocks: usize,
}

impl FramePool {
    /// A pool of `blocks` blocks of `block_size` each, starting at
    /// physical frame 0.
    pub fn new(block_size: PageSize, blocks: usize) -> FramePool {
        let span = block_size.pages_4k() as u32;
        // Stack is popped from the back; push in reverse so allocation
        // order is ascending (nicer to debug, irrelevant to correctness).
        let free = (0..blocks as u32)
            .rev()
            .map(|i| PhysFrame(i * span))
            .collect();
        FramePool {
            block_size,
            free: Mutex::new(free),
            total_blocks: blocks,
        }
    }

    /// Block size served by this pool.
    pub fn block_size(&self) -> PageSize {
        self.block_size
    }

    /// Total capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free.lock().len()
    }

    /// Takes a block, or `None` when device RAM is exhausted (the caller
    /// must evict first).
    pub fn alloc(&self) -> Option<PhysFrame> {
        self.free.lock().pop()
    }

    /// Returns a block to the pool.
    ///
    /// Panics if the frame is not block-aligned — catching double frees
    /// of mis-sized runs early.
    pub fn free(&self, frame: PhysFrame) {
        let span = self.block_size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "freeing unaligned block head {frame}"
        );
        let mut free = self.free.lock();
        debug_assert!(!free.contains(&frame), "double free of {frame}");
        debug_assert!(free.len() < self.total_blocks, "pool overfull");
        free.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_blocks() {
        let pool = FramePool::new(PageSize::K64, 4);
        for _ in 0..4 {
            let f = pool.alloc().unwrap();
            assert_eq!(f.0 % 16, 0, "64kB block must be 16-frame aligned");
        }
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn free_recycles() {
        let pool = FramePool::new(PageSize::K4, 2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert_eq!(pool.free_blocks(), 0);
        pool.free(a);
        assert_eq!(pool.free_blocks(), 1);
        assert_eq!(pool.alloc(), Some(a));
    }

    #[test]
    fn distinct_blocks_never_overlap() {
        let pool = FramePool::new(PageSize::M2, 8);
        let mut heads: Vec<u32> = (0..8).map(|_| pool.alloc().unwrap().0).collect();
        heads.sort_unstable();
        for w in heads.windows(2) {
            assert!(w[1] - w[0] >= 512, "2MB blocks are 512 frames apart");
        }
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_free_is_rejected() {
        let pool = FramePool::new(PageSize::K64, 2);
        pool.free(PhysFrame(3));
    }

    #[test]
    fn capacity_accounting() {
        let pool = FramePool::new(PageSize::K4, 100);
        assert_eq!(pool.total_blocks(), 100);
        assert_eq!(pool.free_blocks(), 100);
        assert_eq!(pool.block_size(), PageSize::K4);
    }
}
